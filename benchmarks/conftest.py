"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, prints
the rows/series it reproduces, asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall) and saves the raw data as
JSON under ``benchmarks/results/`` for EXPERIMENTS.md.

Scale note: campaigns run at reduced rank/input scale so the suite
finishes in minutes; the shape claims are scale-invariant (see
EXPERIMENTS.md for the scaling argument per experiment).
"""

import json
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _to_jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


@pytest.fixture
def save_results():
    """Persist a benchmark's reproduced rows for the experiment log."""

    def _save(name: str, payload) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(_to_jsonable(payload), indent=2))

    return _save


def print_overhead_rows(title: str, rows: list) -> None:
    print(f"\n=== {title} ===")
    print(f"{'config':<26} {'fs':<7} {'msgs':>8} {'rate/s':>7} "
          f"{'Darshan(s)':>11} {'dC(s)':>9} {'overhead':>9}")
    for r in rows:
        print(f"{r['config']:<26} {r['filesystem']:<7} {r['avg_messages']:>8} "
              f"{r['rate_msgs_per_s']:>7.1f} {r['darshan_runtime_s']:>11.2f} "
              f"{r['dC_runtime_s']:>9.2f} {r['overhead_percent']:>8.2f}%")
