"""Ablation A3: DSOS joint-index choice vs query performance.

Paper (Section IV-D): "combinations of the job ID, rank and timestamp
are used to create joint indices where each index provided a different
query performance.  An example of this is using job_rank_time which
will order the data by job, rank then timestamp and then search the
data by a specific rank within a specific job over time."

Shape claims: the matched index scans only the rows it returns; the
partially-matched index scans the whole job; the mismatched (pure time)
index scans the whole corpus — with correspondingly ordered latency
estimates.
"""

from repro.experiments import ablation_dsos_index


def test_ablation_dsos_index(benchmark, save_results):
    rows = benchmark.pedantic(
        lambda: ablation_dsos_index(n_jobs=10, ranks=16, events_per_rank=200),
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation A3: index choice for 'one rank of one job over time' ===")
    print(f"{'index':<32} {'scanned':>9} {'returned':>9} {'est latency':>12}")
    for r in rows:
        print(f"{r['index']:<32} {r['rows_scanned']:>9} {r['rows_returned']:>9} "
              f"{r['est_latency_s'] * 1e6:>10.0f}us")
    save_results("ablation_dsos_index", rows)

    matched, partial, mismatched = rows
    n = matched["rows_returned"]
    assert partial["rows_returned"] == n
    assert mismatched["rows_returned"] == n
    # Work ordering: matched << partial << full scan.
    assert matched["rows_scanned"] == n
    assert partial["rows_scanned"] >= 8 * n
    assert mismatched["rows_scanned"] >= 8 * partial["rows_scanned"]
    assert (
        matched["est_latency_s"]
        < partial["est_latency_s"]
        < mismatched["est_latency_s"]
    )
