"""Ablation A4: push vs pull event collection (Section IV-B).

Paper: the integration "requires a push-based method to reduce the
amount of memory consumed and data loss on the node as well as reduce
the latency between the time in which the event occurs and when it is
recorded.  A pull-based method would require a buffering to hold an
unknown number of events between pulls."

Shape claims: at HMMER-like event rates, the pull design fills its
node-side buffer (memory cost), drops events once full (data loss), and
records events seconds after they happened (latency) — push does none
of that.
"""

from repro.experiments import ablation_push_pull


def test_ablation_push_pull(benchmark, save_results):
    rows = benchmark.pedantic(
        lambda: ablation_push_pull(
            event_rate_per_s=2000.0, duration_s=60.0, pull_interval_s=5.0,
            buffer_capacity=4096,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation A4: push vs pull at 2k events/s ===")
    print(f"{'mode':<6} {'events':>8} {'peak buffered':>14} {'lost':>8} "
          f"{'mean latency':>13} {'max latency':>12}")
    for r in rows:
        print(f"{r['mode']:<6} {r['events']:>8} {r['peak_buffered']:>14} "
              f"{r['lost']:>8} {r['mean_latency_s']:>12.2f}s "
              f"{r['max_latency_s']:>11.2f}s")
    save_results("ablation_push_pull", rows)

    push, pull = rows
    assert push["mode"] == "push"
    assert push["peak_buffered"] == 0
    assert push["lost"] == 0
    assert push["mean_latency_s"] == 0.0
    # Pull: buffer saturates, events are lost, latency ~ half the
    # polling interval for survivors.
    assert pull["peak_buffered"] == 4096
    assert pull["lost"] > 0
    assert pull["mean_latency_s"] > 1.0
    assert pull["max_latency_s"] <= 5.0 + 1e-6
