"""Ablation A2: n-th-event sampling (the paper's future-work fix).

Paper (Section VIII): "we will include an option for users to decide
the rate of I/O events that the Darshan-LDMS Connector will collect and
format into a json message ... without concern of the runtime
performance."

Shape claims: overhead decreases monotonically (within noise) as the
stride grows; fidelity (fraction of events kept) decreases ~1/n; a
stride around 100 brings HMMER's overhead to noise level.
"""

from repro.experiments import ablation_sampling


def test_ablation_sampling(benchmark, save_results):
    rows = benchmark.pedantic(
        lambda: ablation_sampling(
            sample_every=(1, 2, 5, 10, 50, 100), n_families=200
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Ablation A2: n-th-event sampling (HMMER, Lustre) ===")
    print(f"{'n':>5} {'overhead':>10} {'fidelity':>9} {'msgs':>8}")
    for r in rows:
        print(f"{r['sample_every']:>5} {r['overhead_percent']:>9.1f}% "
              f"{r['fidelity']:>8.1%} {r['avg_messages']:>8}")
    save_results("ablation_sampling", rows)

    overheads = [r["overhead_percent"] for r in rows]
    fidelities = [r["fidelity"] for r in rows]
    assert overheads[0] > 100.0
    assert overheads[-1] < 25.0
    # Broadly monotone decline in both series.
    assert overheads[-1] < overheads[0] / 10
    assert all(f2 <= f1 + 1e-9 for f1, f2 in zip(fidelities, fidelities[1:]))
    # Fidelity tracks ~1/n for data-op-dominated workloads.
    assert fidelities[2] < 0.35  # n=5
