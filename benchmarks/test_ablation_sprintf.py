"""Ablation A1: the sprintf tax (Section VI-A's diagnostic experiment).

Paper: "Additional tests have been performed without the sprintf()
function to generate the json message (i.e. only LDMS Streams API is
enabled and the Darshan-LDMS Connector send function is called) and the
average overhead was 0.37%."

Shape claims: with formatting the overhead is in the hundreds of
percent; without it, low single digits — the overhead is the
formatting, not LDMS.
"""

from repro.experiments import ablation_sprintf

from benchmarks.conftest import print_overhead_rows


def test_ablation_sprintf(benchmark, save_results):
    rows = benchmark.pedantic(
        lambda: ablation_sprintf(n_families=250, reps=2), rounds=1, iterations=1
    )
    print_overhead_rows("Ablation A1: JSON formatting on/off (HMMER)", rows)
    save_results("ablation_sprintf", rows)

    by_mode = {r["config"].split("=")[1]: r for r in rows}
    assert by_mode["json"]["overhead_percent"] > 100.0
    assert abs(by_mode["none"]["overhead_percent"]) < 10.0
    # Two orders of magnitude between the modes.
    assert by_mode["json"]["overhead_percent"] > 40 * max(
        abs(by_mode["none"]["overhead_percent"]), 1.0
    )
