"""Extra experiment: I/O-vs-system-load correlation (paper's §I promise).

Not a numbered figure, but the capability the introduction motivates:
"identify any correlations between the file system, network congestion
or resource contentions and the I/O performance."  Both data paths —
connector events and LDMS load telemetry — share absolute timestamps in
DSOS, so the join is one bucketing away.

Shape claims: the loaded file system's telemetry correlates strongly
and significantly with the victim jobs' op durations; the idle file
system's telemetry does not reach the same significance/strength.
"""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.figures import ANOMALY_SEED, FIGURE_LOAD_KWARGS
from repro.webservices import correlate_durations_with_metric, rows_to_dataframe


def _campaign():
    world = World(WorldConfig(seed=ANOMALY_SEED, load_kwargs=dict(FIGURE_LOAD_KWARGS)))
    world.start_samplers(interval_s=5.0)
    job_ids = []
    for _ in range(5):
        result = run_job(
            world,
            MpiIoTest(n_nodes=4, ranks_per_node=4, iterations=10,
                      block_size=2 * 2**20, collective=False),
            "nfs",
            connector_config=ConnectorConfig(),
        )
        job_ids.append(result.job_id)
    world.stop_samplers()

    rows = []
    for j in job_ids:
        rows.extend(r for r in world.query_job(j).rows if r["module"] == "POSIX")
    io_df = rows_to_dataframe(rows)
    metric_rows = world.query_metrics("load_factor").rows
    out = {}
    for source in ("fsload_nfs", "fsload_lustre"):
        samples = [r for r in metric_rows if r["source"] == source]
        out[source] = correlate_durations_with_metric(io_df, samples, bucket_s=20.0)
    return out


def test_extra_correlation(benchmark, save_results):
    out = benchmark.pedantic(_campaign, rounds=1, iterations=1)
    print("\n=== Extra: correlating I/O durations with sampled FS load ===")
    for source, result in out.items():
        print(f"{source:<16} r={result['pearson_r']:+.3f} "
              f"p={result['p_value']:.2g} buckets={result['n_buckets']}")
    save_results(
        "extra_correlation",
        {
            s: {"pearson_r": r["pearson_r"], "p_value": r["p_value"],
                "n_buckets": r["n_buckets"]}
            for s, r in out.items()
        },
    )

    nfs = out["fsload_nfs"]
    lustre = out["fsload_lustre"]
    assert nfs["pearson_r"] > 0.6
    assert nfs["p_value"] < 0.01
    # The idle FS's load is a weaker explanation than the loaded one's.
    assert abs(lustre["pearson_r"]) < nfs["pearson_r"]
