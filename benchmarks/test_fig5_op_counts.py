"""Figure 5: mean I/O operation counts per HACC configuration, 95% CI.

Paper's claim: "The same application can perform different amount of
I/O operations during execution" — identical configurations produce
different op counts across the five jobs, so the bars carry error bars.

Shape claims: opens/closes are deterministic (one per rank), reads and
writes vary across jobs (non-zero CI) because file-system pressure
splits transfers; counts are identical *in expectation structure*
across configurations of the same rank count.
"""

from repro.experiments import fig5_op_counts

SCALE = dict(seed=42, reps=5, n_nodes=4, ranks_per_node=4,
             particles_per_rank=(200_000, 400_000))


def test_fig5_op_counts(benchmark, save_results):
    out = benchmark.pedantic(
        lambda: fig5_op_counts(**SCALE), rounds=1, iterations=1
    )
    print("\n=== Figure 5: mean op occurrences per HACC config (95% CI) ===")
    for label, counts in out.items():
        line = "  ".join(
            f"{op}={counts[op]['mean']:.0f}±{counts[op]['ci']:.1f}"
            for op in ("open", "close", "read", "write")
        )
        print(f"{label:<16} {line}")
    save_results("fig5_op_counts", out)

    n_ranks = SCALE["n_nodes"] * SCALE["ranks_per_node"]
    varying_configs = 0
    for counts in out.values():
        # One open/close per rank, always.
        assert counts["open"]["mean"] == n_ranks
        assert counts["close"]["mean"] == n_ranks
        assert counts["open"]["ci"] == 0.0
        # Data ops: at least one per variable per rank.
        assert counts["write"]["mean"] >= 9 * n_ranks
        assert counts["read"]["mean"] >= 9 * n_ranks
        if counts["write"]["ci"] > 0 or counts["read"]["ci"] > 0:
            varying_configs += 1
    # The figure's point: run-to-run variation exists.
    assert varying_configs >= 2
