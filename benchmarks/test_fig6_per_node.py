"""Figure 6: I/O requests per node (open/close) for two HACC jobs.

Paper's claim: "The same application can perform different amount of
I/O operations per node" — the per-node breakdown of two jobs of the
same configuration on Lustre (10M particles) differs.

Shape claims: every allocated node appears; open/close counts equal the
ranks placed on the node; the two jobs ran on disjoint allocations
(exclusive scheduling), which is itself per-node variation the
dashboard exposes.
"""

from repro.experiments import fig6_per_node

SCALE = dict(seed=42, n_jobs=2, n_nodes=4, ranks_per_node=4,
             particles_per_rank=400_000)


def test_fig6_per_node(benchmark, save_results):
    out = benchmark.pedantic(
        lambda: fig6_per_node(**SCALE), rounds=1, iterations=1
    )
    print("\n=== Figure 6: open/close requests per node, two HACC jobs ===")
    for job_id, nodes in out.items():
        print(f"job {job_id}:")
        for node, ops in sorted(nodes.items()):
            print(f"  {node}: open={ops.get('open', 0)} close={ops.get('close', 0)}")
    save_results("fig6_per_node", out)

    assert len(out) == 2
    job_nodes = [set(nodes) for nodes in out.values()]
    # Exclusive allocations: the jobs ran on different nodes.
    assert job_nodes[0].isdisjoint(job_nodes[1])
    for nodes in out.values():
        assert len(nodes) == SCALE["n_nodes"]
        for ops in nodes.values():
            assert ops["open"] == SCALE["ranks_per_node"]
            assert ops["close"] == SCALE["ranks_per_node"]
