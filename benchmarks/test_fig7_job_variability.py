"""Figure 7: read/write duration variability across identical jobs.

Paper's finding: of five identical MPI-IO-TEST (independent) jobs, one
("job_id 2") had mean read duration 6.75s vs 0.05s for the others
(135x) while writes were 78s vs 54s (1.4x) — reads suffered far more
than writes.

Shape claims: exactly one of five jobs is anomalous; its read slowdown
factor is much larger than its write slowdown factor; the others
cluster tightly.
"""

import numpy as np

from repro.experiments import fig7_duration_variability


def test_fig7_job_variability(benchmark, save_results):
    out = benchmark.pedantic(
        fig7_duration_variability, rounds=1, iterations=1
    )
    stats, anomalous = out["stats"], out["anomalous"]
    print("\n=== Figure 7: per-job mean op durations (s) ===")
    print(f"{'job':>8} {'reads':>10} {'writes':>10}")
    for job in out["job_ids"]:
        s = stats[job]
        marker = "  <-- anomalous" if job in anomalous else ""
        print(f"{job:>8} {s['read']['mean']:>10.3f} {s['write']['mean']:>10.3f}{marker}")
    save_results(
        "fig7_job_variability",
        {
            "anomalous": anomalous,
            "means": {
                j: {op: stats[j][op]["mean"] for op in ("read", "write")}
                for j in out["job_ids"]
            },
        },
    )

    assert len(anomalous) == 1
    bad = anomalous[0]
    others_read = [stats[j]["read"]["mean"] for j in out["job_ids"] if j != bad]
    others_write = [stats[j]["write"]["mean"] for j in out["job_ids"] if j != bad]
    read_factor = stats[bad]["read"]["mean"] / np.median(others_read)
    write_factor = stats[bad]["write"]["mean"] / np.median(others_write)
    # The anomaly is read-dominant, like the paper's job 2.
    assert read_factor > 5.0
    assert read_factor > write_factor
