"""Figure 8: distribution of reads/writes through the anomalous job.

Paper's reading of the figure: "the application I/O pattern of
performing writings during ten phases, and then reads at the end.
Also, this application run faster writes at the beginning and slower
at the end, with the slowest writting after 250 seconds."

Shape claims: ten write phases; reads strictly after the writes; the
slowest operations cluster in the late part of the run (where the
congestion incident sits).
"""

import numpy as np

from repro.experiments import fig8_timeline


def test_fig8_timeline(benchmark, save_results):
    tl = benchmark.pedantic(fig8_timeline, rounds=1, iterations=1)
    writes = tl["op"] == "write"
    reads = tl["op"] == "read"
    print(f"\n=== Figure 8: job {tl['job_id']} timeline ===")
    print(f"events: {len(tl['t'])}  write phases: {tl['write_phases']}")
    print(f"writes span [{tl['t'][writes].min():.0f}, {tl['t'][writes].max():.0f}]s, "
          f"reads span [{tl['t'][reads].min():.0f}, {tl['t'][reads].max():.0f}]s")
    # Coarse phase print: mean duration per decile of the run.
    deciles = np.linspace(0, tl["t"].max(), 11)
    means = []
    for lo, hi in zip(deciles, deciles[1:]):
        m = (tl["t"] >= lo) & (tl["t"] < hi)
        means.append(float(tl["duration"][m].mean()) if m.any() else 0.0)
    print("mean op duration per run-decile:",
          " ".join(f"{m:.2f}" for m in means))
    save_results(
        "fig8_timeline",
        {"job_id": tl["job_id"], "write_phases": tl["write_phases"],
         "decile_mean_durations": means},
    )

    assert tl["write_phases"] == 10
    assert tl["t"][reads].min() >= tl["t"][writes].max() * 0.95
    # Slower late than early (the incident hits the tail of the run).
    early = tl["duration"][tl["t"] < tl["t"].max() / 3]
    late = tl["duration"][tl["t"] > 2 * tl["t"].max() / 3]
    assert late.mean() > early.mean() * 2.0
