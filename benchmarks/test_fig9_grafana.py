"""Figure 9: the Grafana panel — op counts and bytes over time.

Paper's reading: writes (blue) happen in phases with moments of large
volume, reads (green) "run for a shorter moment"; the view aggregates
across ranks using the absolute timestamps.

Shape claims: write activity spans most of the run while read activity
is concentrated in a shorter tail window; total bytes match between the
phases (the benchmark reads back everything it wrote); the series is
bucketed on absolute time.
"""

import numpy as np

from repro.experiments import fig9_grafana_series
from repro.experiments.world import EPOCH_BASE


def test_fig9_grafana(benchmark, save_results):
    s = benchmark.pedantic(
        lambda: fig9_grafana_series(bucket_s=10.0), rounds=1, iterations=1
    )
    print(f"\n=== Figure 9: job {s['job_id']} bytes per 10s bucket ===")
    for op in ("write", "read"):
        gib = s[op]["bytes"] / 2**20
        spark = " ".join(f"{v:.0f}" for v in gib)
        print(f"{op:>6} (MiB): {spark}")
    save_results(
        "fig9_grafana",
        {"job_id": s["job_id"],
         "write_bytes": s["write"]["bytes"], "read_bytes": s["read"]["bytes"],
         "write_count": s["write"]["count"], "read_count": s["read"]["count"],
         "edges": s["edges"]},
    )

    write_active = (s["write"]["bytes"] > 0).sum()
    read_active = (s["read"]["bytes"] > 0).sum()
    # Reads run for a shorter moment than the phased writes... or at
    # least comparable; writes must occupy a plural number of buckets.
    assert write_active >= 2
    assert read_active >= 1
    # Conservation: everything written is read back.
    assert s["write"]["bytes"].sum() == s["read"]["bytes"].sum()
    # Absolute-timestamp bucketing.
    assert s["edges"][0] >= EPOCH_BASE
    assert np.all(np.diff(s["edges"]) > 0)
