"""Pipeline lane benchmark: host throughput, tracked over time.

Not a paper figure — this one measures the *reproduction itself*: the
host-side cost of driving one simulated event through Darshan runtime →
connector → aggregation fabric → DSOS ingest, once per lane:

* ``slow`` — the per-message reference path;
* ``fast`` — template formatting, coalesced publish, batched forward
  delivery and batched ingest;
* ``columnar`` — the record-batch spine: bursts move as columnar
  RecordBatches and, with the express spine armed, publish→forward→
  ingest is virtualized so engine events scale with application I/O.

Shape claims: every lane is strictly a host optimization — simulated
results are identical across lanes (asserted inside
``pipeline_benchmark`` and, adversarially, by
``tests/property/test_fastlane_properties.py`` and
``tests/property/test_columnar_properties.py``) — and each lane is
substantially faster than the previous.  The speedup floors here are
deliberately below the measured ratios so CI machine noise cannot flake
them; ``repro bench --check`` does the tighter regression tracking
against ``benchmarks/BENCH_pipeline.json``.
"""

from repro.experiments.bench import LANES, pipeline_benchmark


def test_pipeline_lanes(benchmark, save_results):
    result = benchmark.pedantic(
        lambda: pipeline_benchmark(quick=True), rounds=1, iterations=1
    )
    print("\n=== Pipeline lanes (quick) ===")
    for lane in LANES:
        r = result[lane]
        print(f"  {lane:<8} wall={r['wall_s']:>6.2f}s "
              f"events/s={r['events_per_sec']:>8.1f} "
              f"engine_events={r['engine_events']}")
    print(f"  fast/slow:     {result['speedup_events_per_sec']:.2f}x")
    print(f"  columnar/fast: {result['speedup_columnar_vs_fast']:.2f}x")
    save_results("perf_pipeline", result)

    slow, fast, columnar = result["slow"], result["fast"], result["columnar"]
    # Fidelity was asserted inside pipeline_benchmark (identical
    # simulated stats, rows, runtime across all three lanes); here we
    # hold the performance shape.  Engine-event counts are
    # deterministic — immune to machine noise.
    assert fast["engine_events"] < slow["engine_events"] * 0.6
    # The express spine virtualizes the monitoring pipeline outright:
    # engine events collapse to the application-I/O scale.
    assert columnar["engine_events"] < fast["engine_events"] * 0.2
    # And the lanes are faster in wall-clock terms.  Generous floors:
    # anything under them means a lane stopped paying.
    assert result["speedup_events_per_sec"] > 1.15
    assert result["speedup_columnar_vs_fast"] > 1.3
    # The spine stayed armed and carried every published message.
    spine = columnar["spine"]
    assert spine["armed"] and spine["dearms"] == 0
    assert spine["rows"] == result["simulated"]["messages_published"]
    # Every lane processed the same non-trivial campaign.
    sim = result["simulated"]
    assert sim["events_seen"] > 5_000
    assert sim["objects_stored"] > 5_000
