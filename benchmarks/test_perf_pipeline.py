"""Pipeline fast-lane benchmark: host throughput, tracked over time.

Not a paper figure — this one measures the *reproduction itself*: the
host-side cost of driving one simulated event through Darshan runtime →
connector → aggregation fabric → DSOS ingest, with the fast lane off
(the per-message reference path) and on (template-compiled formatting,
coalesced publish, batched forward delivery and batched ingest).

Shape claims: the fast lane is strictly a host optimization — simulated
results are identical in both modes (asserted inside
``pipeline_benchmark`` and, adversarially, by
``tests/property/test_fastlane_properties.py``) — and it is
substantially faster: fewer engine events and higher events/sec.  The
speedup floor here is deliberately below the measured ~1.3–2.3x so CI
machine noise cannot flake it; ``repro bench --check`` does the tighter
regression tracking against ``benchmarks/BENCH_pipeline.json``.
"""

from repro.experiments.bench import pipeline_benchmark


def test_pipeline_fast_lane(benchmark, save_results):
    result = benchmark.pedantic(
        lambda: pipeline_benchmark(quick=True), rounds=1, iterations=1
    )
    slow, fast = result["slow"], result["fast"]
    print(f"\n=== Pipeline fast lane (quick) ===")
    for label, r in (("slow", slow), ("fast", fast)):
        print(f"  {label:<5} wall={r['wall_s']:>6.2f}s "
              f"events/s={r['events_per_sec']:>8.1f} "
              f"engine_events={r['engine_events']}")
    print(f"  speedup: {result['speedup_events_per_sec']:.2f}x")
    save_results("perf_pipeline", result)

    # Fidelity was asserted inside pipeline_benchmark (identical stats,
    # rows, simulated runtime); here we hold the performance shape.
    # The fast lane removes engine events outright (coalesced publish,
    # fused transfers, callback-driven forwarding) — a deterministic
    # count, immune to machine noise.
    assert fast["engine_events"] < slow["engine_events"] * 0.6
    # And it is faster in wall-clock terms.  Generous floor: measured
    # 1.3-2.3x; anything under 1.15x means the lane stopped paying.
    assert result["speedup_events_per_sec"] > 1.15
    # Both modes processed a non-trivial campaign.
    assert fast["events_seen"] > 5_000
    assert fast["objects_stored"] > 5_000
