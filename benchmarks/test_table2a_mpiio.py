"""Table IIa: MPI-IO-TEST overhead, NFS/Lustre x collective/independent.

Paper's numbers (22 nodes, 16 MiB blocks, 10 iterations, 5 reps):

=========== ========== =========== ========== ===========
            NFS coll   NFS indep   LFS coll   LFS indep
Darshan (s)  1376.67     880.46     249.97     428.18
dC (s)       1355.35     858.68     270.98     414.35
overhead      -1.55%     -2.47%      8.41%     -3.23%
=========== ========== =========== ========== ===========

Shape claims checked: NFS is several-fold slower than Lustre; on NFS
collective is slower than independent (data sieving), on Lustre the
opposite (seek-free aggregation); every |overhead| stays small compared
to HMMER's (Table IIc), because the message rate is low.
"""

from repro.experiments import table2a_mpiio

from benchmarks.conftest import print_overhead_rows

# Reduced scale: 8 ranks/node -> 4, 3 reps; shape is scale-invariant.
SCALE = dict(seed=42, reps=3, n_nodes=22, ranks_per_node=4, iterations=10,
             block_size=16 * 2**20)


def test_table2a_mpiio(benchmark, save_results):
    cells = benchmark.pedantic(
        lambda: table2a_mpiio(**SCALE), rounds=1, iterations=1
    )
    rows = [c.as_row() for c in cells]
    print_overhead_rows("Table IIa: MPI-IO-TEST", rows)
    save_results("table2a_mpiio", rows)

    by_key = {(r["filesystem"], r["config"].split("/")[1]): r for r in rows}
    nfs_coll = by_key[("nfs", "collective")]["dC_runtime_s"]
    nfs_indep = by_key[("nfs", "independent")]["dC_runtime_s"]
    lfs_coll = by_key[("lustre", "collective")]["dC_runtime_s"]
    lfs_indep = by_key[("lustre", "independent")]["dC_runtime_s"]

    # Crossover: collective loses on NFS, wins on Lustre.
    assert nfs_coll > nfs_indep * 1.15
    assert lfs_coll < lfs_indep
    # File-system ordering.
    assert lfs_coll < nfs_coll / 2
    assert lfs_indep < nfs_indep
    # Overheads are noise-scale (the paper's range is -3.2%..+8.4%).
    for r in rows:
        assert abs(r["overhead_percent"]) < 40.0
    # Low message rates (paper: 7..95 msg/s).
    for r in rows:
        assert r["rate_msgs_per_s"] < 500.0
