"""Table IIb: HACC-IO overhead, NFS/Lustre x {5M, 10M} particles/rank.

Paper's numbers (16 nodes, 5 reps):

=========== ========= ========== ========= ==========
            NFS 5M    NFS 10M    LFS 5M    LFS 10M
Darshan (s)  882.46    1353.87    417.14    1616.87
dC (s)       775.24    1365.24    467.24    1027.44
overhead    -12.15%      0.84%    12.01%    -36.45%
=========== ========= ========== ========= ==========

Shape claims: runtime roughly doubles from 5M to 10M particles;
message counts are low thousands at single-digit rates; overheads are
noise (the paper's own vary from -36% to +12% because the two
campaigns ran weeks apart — our campaign-drift model reproduces that
spread).
"""

from repro.experiments import table2b_haccio

from benchmarks.conftest import print_overhead_rows

# Reduced scale: 500k/1M particles per rank instead of 5M/10M, 4
# ranks/node instead of 8 — byte volumes shrink 20x, ratios survive.
SCALE = dict(
    seed=43, reps=3, n_nodes=16, ranks_per_node=4,
    particle_counts=(500_000, 1_000_000),
)


def test_table2b_haccio(benchmark, save_results):
    cells = benchmark.pedantic(
        lambda: table2b_haccio(**SCALE), rounds=1, iterations=1
    )
    rows = [c.as_row() for c in cells]
    print_overhead_rows("Table IIb: HACC-IO", rows)
    save_results("table2b_haccio", rows)

    by_key = {(r["filesystem"], r["config"].split("/")[1]): r for r in rows}
    small, big = "0M", "1M"  # labels from particles//1e6 at reduced scale

    # Doubling the checkpoint roughly doubles the runtime.
    for fs in ("nfs", "lustre"):
        ratio = by_key[(fs, big)]["dC_runtime_s"] / by_key[(fs, small)]["dC_runtime_s"]
        assert 1.5 < ratio < 3.0
    # Lustre beats NFS for this large-sequential-write workload.
    for size in (small, big):
        assert by_key[("lustre", size)]["dC_runtime_s"] < by_key[("nfs", size)]["dC_runtime_s"]
    # Single-digit-to-low message rates, noise-scale overheads.
    for r in rows:
        assert r["rate_msgs_per_s"] < 300.0
        assert abs(r["overhead_percent"]) < 40.0
