"""Table IIc: HMMER hmmbuild overhead — the paper's headline result.

Paper's numbers (1 node, 32 ranks, Pfam-A.seed, 5 reps):

=========== =========== ============
            NFS         Lustre
messages     3,117,342   4,461,738
rate (/s)        1,483       2,396
Darshan (s)     749.88      135.40
dC (s)         2826.01     1863.98
overhead       276.86%    1276.67%
=========== =========== ============

Shape claims: overhead far beyond 100% on both file systems; *larger*
on the faster file system (the fixed per-event formatting tax dominates
a smaller base); event rates in the low thousands per second; the
Darshan-only baseline is several-fold faster on Lustre.

Scaling: we run a reduced Pfam input (n_families).  Both the baseline
runtime and the event count scale linearly with the input, so the
overhead percentage and the message *rate* are preserved (EXPERIMENTS.md
details the argument).
"""

from repro.experiments import table2c_hmmer

from benchmarks.conftest import print_overhead_rows

SCALE = dict(seed=44, reps=2, n_families=400, ranks_per_node=32)


def test_table2c_hmmer(benchmark, save_results):
    cells = benchmark.pedantic(
        lambda: table2c_hmmer(**SCALE), rounds=1, iterations=1
    )
    rows = [c.as_row() for c in cells]
    print_overhead_rows("Table IIc: HMMER", rows)
    save_results("table2c_hmmer", rows)

    by_fs = {r["filesystem"]: r for r in rows}
    nfs, lustre = by_fs["nfs"], by_fs["lustre"]

    # The headline: enormous overhead on both file systems.
    assert nfs["overhead_percent"] > 100.0
    assert lustre["overhead_percent"] > 100.0
    # Larger on the faster FS (paper: 1277% vs 277%).
    assert lustre["overhead_percent"] > nfs["overhead_percent"] * 1.5
    # Baseline ordering: Lustre several-fold faster (paper: 5.5x).
    assert nfs["darshan_runtime_s"] > lustre["darshan_runtime_s"] * 2.0
    # Event rates in the paper's regime (1.5k-2.4k msg/s).
    for r in rows:
        assert 500.0 < r["rate_msgs_per_s"] < 5000.0
