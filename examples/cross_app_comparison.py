#!/usr/bin/env python3
"""Comparing I/O behaviour across applications from one database.

All four of the paper's applications run through the same monitored
cluster; their events land in the same DSOS schema; and one query per
job is enough to fingerprint and compare them — including predicting
which ones the connector will hurt (Table II's lesson: overhead follows
event rate).

Run:  python examples/cross_app_comparison.py      (~1 minute)
"""

from repro.apps import HaccIO, Hmmer, MpiIoTest, Sw4
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.webservices import compare_signatures, io_signature, rows_to_dataframe


def main() -> None:
    world = World(WorldConfig(seed=42, quiet=True))
    apps = [
        ("hacc-io", HaccIO(n_nodes=4, ranks_per_node=4, particles_per_rank=500_000), "lustre"),
        ("mpi-io-test", MpiIoTest(n_nodes=4, ranks_per_node=4, iterations=10,
                                  block_size=4 * 2**20, collective=True), "lustre"),
        ("hmmer", Hmmer(ranks_per_node=16, n_families=120), "lustre"),
        ("sw4", Sw4(n_nodes=4, ranks_per_node=4, grid=(128, 128, 128),
                    timesteps=10, snapshot_every=5, compute_per_step_s=1.0), "lustre"),
    ]

    signatures = {}
    for label, app, fs in apps:
        result = run_job(world, app, fs, connector_config=ConnectorConfig())
        rows = [r for r in world.query_job(result.job_id).rows
                if r["module"] in ("POSIX", "STDIO")]
        df = rows_to_dataframe(rows)
        signatures[label] = io_signature(df)

    print(f"{'application':<14} {'class':<22} {'events/s':>9} {'GiB total':>10} "
          f"{'mean op':>10} {'connector risk':>15}")
    for row in compare_signatures(signatures):
        print(f"{row['label']:<14} {row['class']:<22} "
              f"{row['event_rate_per_s']:>9.0f} "
              f"{row['bytes_total'] / 2**30:>10.2f} "
              f"{_fmt_size(row['mean_op_size']):>10} "
              f"{row['overhead_risk']:>15}")

    print("\n(the 'high' risk row is exactly the workload Table IIc measures "
          "at 277-1277% overhead; the paper's n-th-event sampling is the fix)")


def _fmt_size(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024:
            return f"{n:.0f}{unit}"
        n /= 1024
    return f"{n:.0f}TiB"


if __name__ == "__main__":
    main()
