#!/usr/bin/env python3
"""Vanilla Darshan still works: write a log, parse it, inspect DXT.

The connector *adds* run-time streaming; the classic post-mortem path —
darshan-runtime writes a compressed log at shutdown, darshan-util parses
it — is intact.  This example runs the sw4 seismic code (HDF5 output),
writes the log to disk and reads it back.

Run:  python examples/darshan_logs.py
"""

import tempfile
from pathlib import Path

from repro.apps import Sw4
from repro.darshan import parse_log, write_log
from repro.experiments import World, WorldConfig, run_job


def main() -> None:
    world = World(WorldConfig(seed=7, quiet=True))
    app = Sw4(
        n_nodes=4, ranks_per_node=4, grid=(128, 128, 128),
        timesteps=10, snapshot_every=5, compute_per_step_s=1.0,
    )
    # No connector this time: a plain "Darshan only" run.
    result = run_job(world, app, "lustre")
    log = result.darshan_log

    path = Path(tempfile.gettempdir()) / f"sw4_{log.job_id}.darshan"
    write_log(log, path)
    print(f"wrote {path} ({path.stat().st_size:,} bytes compressed)")

    parsed = parse_log(path)
    print(f"\njob header: id={parsed.job_id} nprocs={parsed.nprocs} "
          f"runtime={parsed.runtime_seconds:.1f}s")
    print(f"modules: {', '.join(parsed.modules())}")

    summary = parsed.summary()
    print("\nper-module totals:")
    for module in parsed.modules():
        agg = summary[module]
        written = agg.get(f"{module}_BYTES_WRITTEN", 0)
        opens = agg.get(f"{module}_OPENS", 0)
        print(f"  {module:<7} opens={opens:<5} bytes_written={written:,}")

    h5d = parsed.records_for("H5D")
    print(f"\nH5D records: {len(h5d)} (one per dataset per rank)")
    rec = h5d[0]
    print(f"  example: rank {rec.rank}, "
          f"{rec.get('DATASPACE_NDIMS')}-d dataspace, "
          f"{rec.get('REGULAR_HYPERSLAB_SELECTS')} hyperslab selects, "
          f"{rec.get('BYTES_WRITTEN'):,} bytes")

    dxt = [(k, len(v)) for k, v in parsed.dxt_segments.items()][:3]
    print("\nDXT segment traces (module, rank, record) -> segments:")
    for (module, rank, rid), n in dxt:
        print(f"  ({module}, rank {rank}, {rid % 10**6}...) -> {n} segments")


if __name__ == "__main__":
    main()
