#!/usr/bin/env python3
"""Explain my slow job: evidence-linked bottleneck verdicts, scored.

A four-class chaos campaign (aggregation-trunk degrade, store stall,
L1 daemon crash, replicated-store crash — in disjoint windows) runs
against an MPI-IO job while the diagnosis engine samples the pipeline.
Afterwards the explain layer distills the job's stored evidence into a
feature vector, runs its interpretable weighted strategies, and emits
ranked :class:`BottleneckVerdict`\\ s — each naming a class, citing the
incidents and rules that convinced it, and attaching actionable
recommendations.  The verdict classes are then scored against the
injector's ground truth, and a clean rerun is the healthy-verdict
control.  The same verdicts ride the flight recorder as the
``verdicts`` evidence stream for post-incident forensics.

Run:  python examples/explain_bottleneck.py
"""

from repro.diagnosis.explain import explain_campaign


def main() -> None:
    campaign = explain_campaign(seed=42, fast=False)
    epoch = campaign.epoch

    # What actually went wrong, and when — the ground truth.
    print("== applied faults (ground truth) ==")
    for fault in campaign.applied:
        print(f"  t={fault.t - epoch:7.3f}s {fault.kind:<16} {fault.detail}")

    # The distilled evidence the classifier is allowed to see.
    fv = campaign.report.features
    print()
    print("== feature vector (highlights) ==")
    print(f"  workload          {fv.workload_class} "
          f"({fv.n_events} events over {fv.n_ranks} ranks)")
    print(f"  queue depth peak  {fv.queue_depth_peak:.0f}")
    print(f"  slow pending peak {fv.slow_pending_peak:.0f}")
    print(f"  daemons failed    {fv.daemons_failed_peak:.0f}")
    print(f"  replicas down     {fv.store_replicas_down_peak:.0f}")
    print(f"  slowest trace     {fv.slowest_trace_id} "
          f"({fv.slowest_trace_e2e_s * 1e3:.1f} ms end-to-end)")

    # The verdicts: ranked, evidence-linked, with recommendations.
    print()
    print(campaign.report.render_text(epoch))

    # Scored against the injected ground truth, class by class.
    print()
    print(campaign.score.render_text())

    # Clean control: the same campaign with no faults must say healthy.
    clean = explain_campaign(seed=42, fast=False, faults=None)
    print(f"\nclean-run control: primary verdict "
          f"{clean.report.primary.cls!r} "
          f"({'OK' if clean.report.healthy else 'NOT HEALTHY'})")

    # The verdicts also landed in the flight recorder's evidence ring.
    ring = campaign.world.flight_recorder.rings["verdicts"]
    print(f"flight-recorder verdicts stream: "
          f"{len(ring.all())} records captured")


if __name__ == "__main__":
    main()
