#!/usr/bin/env python3
"""Fleet health console: probe the fleet before work lands on it.

Scans the demo fleet — two clean clusters plus one with an injected L1
crash and a slow-store episode — with the proactive probe scanner and
the streaming diagnosis engine armed.  Each cluster gets a 0–100
readiness scorecard whose component deductions reconcile *exactly*
(Σ deductions == 100 − score), and the whole scan renders as the fleet
console: the readiness table, per-cluster drill-downs, the signal
catalog, plus an OpenMetrics exposition for external scrapers.

Run:  python examples/fleet_console.py      (~half a minute)
"""

from repro.diagnosis import default_catalog
from repro.fleet import scan_fleet
from repro.telemetry import render_openmetrics
from repro.webservices import FleetConsole


def main() -> None:
    report = scan_fleet()
    catalog = default_catalog()
    console = FleetConsole(report, catalog)

    # The console pages: overview, drill-downs, signal catalog.
    print(console.render_text())

    # Every scorecard must reconcile exactly — this is the contract the
    # closed-loop scheduling layer will trust.
    for cluster in report:
        assert cluster.score.reconciles(), cluster.name
    worst = report.worst()
    print(f"\nfleet ready: {report.all_ready}  "
          f"(worst: {worst.name} at {worst.score.score}/100, "
          f"grade {worst.score.grade})")

    # The same scan, as the OpenMetrics text scrapers consume.
    exposition = render_openmetrics(report, catalog)
    print(f"\nOpenMetrics exposition: {len(exposition.splitlines())} lines, "
          f"catalog {'complete' if catalog.complete() else 'INCOMPLETE'}; "
          f"first samples:")
    for line in exposition.splitlines()[:5]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
