#!/usr/bin/env python3
"""Declaring a monitoring fleet as configuration text.

Real LDMS deployments are driven by ldmsd configuration files; the
reproduction has the equivalent: one text blob wires daemons, stream
forwards, samplers and stores across the whole cluster, validated with
line numbers before anything starts.

Run:  python examples/fleet_from_config.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.sim import Environment, RngRegistry

FLEET_CONFIG = """
# Voltrino monitoring fleet (paper Section V-C)
ldmsd host=nid*                                   # sampler daemons
ldmsd host=head                                   # L1 aggregator
ldmsd host=shirley                                # L2 + storage

stream_forward from=nid* to=head tag=darshanConnector
stream_forward from=head to=shirley tag=darshanConnector

sampler host=nid00001 plugin=meminfo interval=10.0
store host=shirley type=csv tag=darshanConnector
"""


def main() -> None:
    env = Environment()
    cluster = Cluster(env, RngRegistry(0), ClusterSpec(n_compute_nodes=4))

    from repro.ldms.config import build_fleet

    fleet = build_fleet(cluster, FLEET_CONFIG)
    print(f"fleet: {len(fleet.daemons)} daemons, {len(fleet.stores)} store(s)")
    for name in sorted(fleet.daemons):
        d = fleet.daemons[name]
        print(f"  ldmsd@{name}: {len(d.forward_stats())} forward rule(s)")

    # Publish a few messages from two compute nodes and watch them land.
    def app(node_name, n):
        daemon = fleet.daemon_for(node_name)
        for i in range(n):
            yield from daemon.publish(
                "darshanConnector",
                {"module": "POSIX", "op": "write", "rank": i,
                 "seg": [{"len": 4096, "dur": 0.001, "timestamp": env.now}]},
            )

    env.process(app("nid00002", 3))
    env.process(app("nid00003", 2))
    env.run(until=env.now + 30.0)
    fleet.stop()

    store = fleet.stores[0]
    print(f"\nCSV store on shirley received {store.messages_stored} messages:")
    print("\n".join(store.to_csv().splitlines()[:4]))
    print("...")


if __name__ == "__main__":
    main()
