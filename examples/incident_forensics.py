#!/usr/bin/env python3
"""Post-incident forensics: black-box capture, timeline, clean-run diff.

The flight recorder rides along on every campaign as a set of bounded
sim-time ring buffers — alert transitions, span tails, rule-window
snapshots, recovery hops, store census deltas, probe flags, applied
faults.  When an alert fires (or a quorum degrades, a store crashes,
dead letters grow) it freezes a ``ForensicBundle``: a byte-stable
canonical-JSON snapshot of the ±window around the trigger with
cross-layer evidence links.  This example:

1. runs the standard chaos campaign with the recorder armed and shows
   what it froze (and that every ring reconciles
   ``captured == retained + evicted``);
2. reconstructs the merged cross-layer timeline of the first bundle;
3. runs the same campaign *clean*, snapshots it, and diffs the two —
   which streams diverged first, and when;
4. correlates the bundles against the injector's ground truth: every
   fault class must be matched by a bundle naming a detecting signal.

Run:  python examples/incident_forensics.py
"""

from repro.diagnosis.forensics import (
    bundle_timeline,
    capture_campaign,
    diff_bundles,
    diff_panel,
    match_bundles,
    timeline_panel,
)
from repro.webservices.grafana import render_ascii


def main() -> None:
    # 1. The faulted run: chaos plan + diagnosis + flight recorder.
    chaos = capture_campaign(seed=42, fast=True)
    recorder = chaos.recorder
    print("== flight recorder after the chaos campaign ==")
    for name, ring in recorder.rings.items():
        verdict = "ok" if ring.reconciles() else "BROKEN"
        print(f"  {name:<10} captured={ring.captured:<5} "
              f"evicted={ring.evicted:<4} retained={ring.retained:<5} "
              f"[{verdict}]")
    print(f"  bundles frozen: {recorder.bundles_frozen}, "
          f"archive bytes: {recorder.bundle_bytes}, "
          f"triggers dropped: {recorder.triggers_dropped}")

    for bundle in chaos.bundles:
        print(f"  {bundle.bundle_id}: {bundle.trigger_kind}"
              f"({bundle.trigger_detail}) @ {bundle.t_trigger:.3f}s, "
              f"{bundle.n_records()} records")

    # 2. The merged cross-layer timeline of the first bundle.
    first = chaos.bundles[0]
    rows = bundle_timeline(first)
    print(f"\n== timeline of {first.bundle_id} "
          f"({len(rows)} events, showing alerts and faults) ==")
    for row in rows:
        if row["stream"] in ("alerts", "faults"):
            print(f"  t={row['t']:7.3f}s [{row['stream']:<7}] "
                  f"{row['event']:<16} {row['detail']}")
    print()
    print(render_ascii(timeline_panel(first), width=100)
          .splitlines()[0])  # the panel title line

    # 3. The clean control run, snapshotted, and the diff.
    clean = capture_campaign(seed=42, fast=True, faults=None,
                             snapshot_id="clean-0")
    diff = diff_bundles(first, clean.find("clean-0"))
    print("\n" + render_ascii(diff_panel(diff), width=100))
    div = diff.first
    print(f"first divergence: stream {div.stream!r} at t={div.t:.3f}s")

    # 4. Ground-truth correlation: every injected fault class matched.
    print("\n== fault-class evidence matches ==")
    matches = match_bundles(chaos.applied, chaos.bundles, chaos.epoch)
    for cls, match in sorted(matches.items()):
        status = "matched" if match.matched else "UNMATCHED"
        names = sorted({s for sig in match.bundles.values() for s in sig})
        print(f"  {cls:<14} {status}: {', '.join(names)}")
    assert all(m.matched for m in matches.values())
    assert recorder.reconciles()
    print("\nevery fault class matched; every ring reconciles")


if __name__ == "__main__":
    main()
