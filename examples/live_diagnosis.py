#!/usr/bin/env python3
"""Live runtime diagnosis: watch the pipeline diagnose its own faults.

The paper's pitch is *run-time* diagnosis of I/O behaviour; this
example turns that lens on the monitoring pipeline itself.  A chaos
campaign crashes the L1 aggregator, degrades a compute uplink and
stalls the DSOS store while a streaming `DiagnosisEngine` — running as
a periodic process *inside simulated time* — evaluates declarative
rules over sliding windows and drives alerts through the
pending → firing → resolved lifecycle.  The incident log is then
scored against the injector's ground truth (which faults, when), and a
sim-time profiler attributes every stored message's end-to-end latency
to pipeline components.

Run:  python examples/live_diagnosis.py
"""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.diagnosis import DiagnosisConfig, score_incidents
from repro.experiments import World, WorldConfig, run_job
from repro.faults import DaemonCrash, FaultPlan, LinkDegrade, SlowStore
from repro.ldms.resilience import RetryPolicy
from repro.sim import PipelineProfile
from repro.webservices import LiveDashboard


def main() -> None:
    # Three injected faults with known begin/end times — the ground
    # truth the diagnosis engine will be scored against.
    plan = FaultPlan((
        DaemonCrash("l1", after_messages=50, down_for=0.5),
        LinkDegrade("nid00001", "head", at=0.2, duration=0.3, factor=50.0),
        SlowStore(at=0.1, duration=0.4),
    ))

    # Sub-second faults need a sub-second diagnostic cadence: 50 ms
    # evaluation ticks, 250 ms windows, 100 ms firing hysteresis.
    diag = DiagnosisConfig(
        eval_period_s=0.05, window_s=0.25, for_duration_s=0.1,
        latency_slo_s=0.25, slo_min_count=8,
    )

    world = World(WorldConfig(
        seed=42, quiet=True, n_compute_nodes=4, telemetry=True,
        faults=plan, retry=RetryPolicy(), standby_l1=True, diagnosis=diag,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    run_job(world, app, "nfs",
            connector_config=ConnectorConfig(spill=True),
            inter_job_gap_s=0.0)

    epoch = world.config.epoch
    print("== applied faults (ground truth) ==")
    for fault in world.fault_injector.applied:
        print(f"  t={fault.t - epoch:7.3f}s {fault.kind:<16} {fault.detail}")

    # What the engine saw, and how fast it saw it.
    print()
    print(world.diagnosis.incidents.render_text(epoch))
    print()
    score = score_incidents(
        world.diagnosis.incidents, world.fault_injector.applied)
    print(score.render_text(epoch))

    # The live dashboard renders the same engine state as panels
    # through the ordinary Grafana machinery (windowed refresh).
    print()
    dash = LiveDashboard(world.diagnosis)
    print(dash.render_text())

    # Where did simulated time go?  Exact by construction.
    print()
    profile = PipelineProfile.from_collector(world.telemetry)
    print(profile.render_text())


if __name__ == "__main__":
    main()
