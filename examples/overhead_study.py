#!/usr/bin/env python3
"""Connector overhead across workloads — a miniature Table II.

Demonstrates the paper's central finding: the connector is free for
low-event-rate applications (HACC-IO, MPI-IO-TEST) and brutal for
high-event-rate ones (HMMER at ~2k events/s), because every event pays
the JSON int→string formatting tax — and the proposed n-th-event
sampling buys the overhead back.

Run:  python examples/overhead_study.py          (~1 minute)
"""

from repro.apps import HaccIO, Hmmer, MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import ablation_sampling, run_overhead_cell


def show(rows) -> None:
    print(f"  {'config':<28} {'fs':<7} {'Darshan(s)':>11} {'dC(s)':>9} "
          f"{'overhead':>9} {'msgs':>8} {'rate/s':>7}")
    for r in rows:
        print(f"  {r['config']:<28} {r['filesystem']:<7} "
              f"{r['darshan_runtime_s']:>11.1f} {r['dC_runtime_s']:>9.1f} "
              f"{r['overhead_percent']:>8.1f}% {r['avg_messages']:>8} "
              f"{r['rate_msgs_per_s']:>7.0f}")


def main() -> None:
    rows = []
    # Low event rate: the I/O proxy writes few, huge blocks.
    rows.append(
        run_overhead_cell(
            lambda: HaccIO(n_nodes=4, ranks_per_node=4, particles_per_rank=500_000),
            "lustre", label="hacc-io/500k", seed=43, reps=2,
        ).as_row()
    )
    # Medium: the MPI-IO benchmark.
    rows.append(
        run_overhead_cell(
            lambda: MpiIoTest(n_nodes=4, ranks_per_node=4, iterations=10,
                              block_size=4 * 2**20, collective=True),
            "lustre", label="mpi-io-test/collective", seed=42, reps=2,
        ).as_row()
    )
    # High event rate: hmmbuild streams tiny records.
    rows.append(
        run_overhead_cell(
            lambda: Hmmer(ranks_per_node=16, n_families=150),
            "lustre", label="hmmer/Pfam(scaled)", seed=44, reps=2,
        ).as_row()
    )
    print("connector overhead by workload (Table II, miniature):")
    show(rows)

    # The fix the paper proposes: publish every n-th event.
    print("\nn-th-event sampling on HMMER (future work, implemented):")
    print(f"  {'n':>4} {'overhead':>9} {'events kept':>12}")
    for r in ablation_sampling(sample_every=(1, 5, 20, 100), n_families=100):
        print(f"  {r['sample_every']:>4} {r['overhead_percent']:>8.0f}% "
              f"{r['fidelity']:>11.0%}")


if __name__ == "__main__":
    main()
