#!/usr/bin/env python3
"""Quickstart: the whole Darshan-LDMS pipeline in ~40 lines of API.

Builds a simulated Cray cluster (NFS + Lustre + LDMS aggregation +
DSOS), runs one MPI-IO benchmark job *with the connector attached*, and
then — the paper's whole point — inspects the job's I/O behaviour at
run-time granularity straight from the database, with absolute
timestamps.

Run:  python examples/quickstart.py
"""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job


def main() -> None:
    # One campaign world: Voltrino-like cluster, both file systems,
    # LDMS fabric, DSOS database.  Everything is seeded.
    world = World(WorldConfig(seed=42))

    # Darshan's own MPI-IO benchmark: 4 nodes x 4 ranks, ten 4 MiB
    # blocks per rank, collective I/O, on Lustre.
    app = MpiIoTest(
        n_nodes=4, ranks_per_node=4, iterations=10,
        block_size=4 * 2**20, collective=True,
    )
    result = run_job(world, app, "lustre", connector_config=ConnectorConfig())

    print(f"job {result.job_id} finished in {result.runtime_s:.1f} simulated seconds")
    print(f"connector published {result.messages_published} messages "
          f"({result.message_rate:.0f} msg/s)")
    print(f"DSOS now holds {world.dsos.count('darshan_data')} event objects")

    # Query the paper's worked example: one rank of one job over time.
    res = world.dsos.query(
        "darshan_data", "job_rank_time", prefix=(result.job_id, 0)
    )
    print(f"\nrank 0 timeline ({len(res)} events, absolute timestamps):")
    for row in res.rows[:8]:
        print(
            f"  t={row['timestamp']:.3f}  {row['module']:<6} {row['op']:<6}"
            f" len={row['seg_len']:>9}  dur={row['seg_dur']:.4f}s  type={row['type']}"
        )
    print("  ...")

    # The Darshan log still exists, exactly like vanilla Darshan.
    summary = result.darshan_log.summary()
    mpiio = summary["MPIIO"]
    print("\ndarshan-parser style totals (MPIIO):")
    print(f"  collective writes : {mpiio['MPIIO_COLL_WRITES']}")
    print(f"  bytes written     : {mpiio['MPIIO_BYTES_WRITTEN']:,}")
    print(f"  write time (s)    : {mpiio['MPIIO_F_WRITE_TIME']:.2f}")


if __name__ == "__main__":
    main()
