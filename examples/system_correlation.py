#!/usr/bin/env python3
"""Correlating I/O performance with system behaviour.

The paper's introduction motivates exactly this: "identify any
correlations between the file system, network congestion or resource
contentions and the I/O performance".  Two independent data paths flow
into DSOS with absolute timestamps —

* application I/O events via the Darshan-LDMS connector, and
* file-system load telemetry via classic LDMS samplers —

so they can be joined on time.  This example runs a five-job campaign
on a busy NFS, then computes the Pearson correlation between bucketed
op durations and the sampled load factor, and shows that the *other*
file system's load does not explain the variability (a negative
control).

Run:  python examples/system_correlation.py
"""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.figures import FIGURE_LOAD_KWARGS
from repro.webservices import correlate_durations_with_metric, rows_to_dataframe


def main() -> None:
    world = World(WorldConfig(seed=4, load_kwargs=dict(FIGURE_LOAD_KWARGS)))
    world.start_samplers(interval_s=5.0)

    job_ids = []
    for _ in range(5):
        app = MpiIoTest(
            n_nodes=4, ranks_per_node=4, iterations=10,
            block_size=2 * 2**20, collective=False,
        )
        result = run_job(world, app, "nfs", connector_config=ConnectorConfig())
        job_ids.append(result.job_id)
    world.stop_samplers()

    rows = []
    for j in job_ids:
        rows.extend(r for r in world.query_job(j).rows if r["module"] == "POSIX")
    io_df = rows_to_dataframe(rows)
    metric_rows = world.query_metrics("load_factor").rows
    print(f"{len(io_df)} I/O events and "
          f"{len(metric_rows)} telemetry samples in DSOS\n")

    for source, label in (("fsload_nfs", "NFS load (the FS the jobs used)"),
                          ("fsload_lustre", "Lustre load (negative control)")):
        samples = [r for r in metric_rows if r["source"] == source]
        result = correlate_durations_with_metric(io_df, samples, bucket_s=20.0)
        verdict = "EXPLAINS" if abs(result["pearson_r"]) > 0.5 and result["p_value"] < 0.01 else "does not explain"
        print(f"{label}:")
        print(f"  pearson r = {result['pearson_r']:+.3f}  "
              f"(p = {result['p_value']:.2g}, {result['n_buckets']} joint buckets)"
              f"  -> {verdict} the I/O variability")


if __name__ == "__main__":
    main()
