#!/usr/bin/env python3
"""Trace drill-down: from one slow histogram bucket to the gating hop.

A latency histogram says *that* the tail is slow; it cannot say *why*.
This example runs a seeded chaos campaign with span telemetry armed,
then walks the full drill-down the tracing layer enables:

1. deterministic sampling — a 20% head rate plus tail sampling that
   always retains drops, spills, recoveries and tail-latency breaches;
2. histogram exemplars — each end-to-end bucket carries the id of a
   retained trace that landed there, so the worst bucket is clickable;
3. span trees + critical path — the exemplar trace is rebuilt as a
   span tree and its gating chain is computed, summing *exactly*
   (``==``, not approximately) to the end-to-end latency;
4. the campaign-wide rollup, reconciled against the sim-time profiler.

Run:  python examples/trace_drilldown.py
"""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.faults import DaemonCrash, FaultPlan, LinkPartition, SlowStore
from repro.ldms.resilience import RetryPolicy
from repro.sim import PipelineProfile
from repro.telemetry.collector import END_TO_END
from repro.telemetry.spans import TelemetryConfig, critical_path
from repro.webservices import render_trace_panels, render_waterfall


def main() -> None:
    plan = FaultPlan((
        DaemonCrash("l1", after_messages=40, down_for=0.5),
        LinkPartition("nid00001", "head", at=0.2, duration=0.3),
        SlowStore(at=0.1, duration=0.4),
    ))
    world = World(WorldConfig(
        seed=20260806, quiet=True, n_compute_nodes=4,
        telemetry=TelemetryConfig(head_sample_rate=0.2, tail_latency_s=0.2),
        faults=plan, retry=RetryPolicy(), standby_l1=True,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=6, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    run_job(world, app, "nfs",
            connector_config=ConnectorConfig(spill=True),
            inter_job_gap_s=0.0)

    # Built strictly after the run — arming telemetry never perturbs
    # the simulation (the purity property suite pins this).
    registry = world.trace_registry()
    print("== retention ==")
    print(f"  retained {len(registry)} of {registry.offered} traces "
          f"(head {registry.head_kept}, tail {registry.tail_kept})")

    # The slow bucket is clickable: its exemplar is a retained trace id.
    hist = world.telemetry.histograms[END_TO_END]
    worst_bin = max(hist.exemplars)
    exemplar_id = hist.exemplars[worst_bin]
    print()
    print(f"== exemplar drill-down (worst bucket -> {exemplar_id}) ==")
    tree = registry.get(exemplar_id)
    print(render_waterfall(tree))

    # The critical path partitions the whole e2e window: every second
    # is attributed to exactly one gating span (or an explicit GAP).
    path = critical_path(tree)
    assert path.exact and path.total_s == tree.end_to_end_s
    print()
    print("== gating chain ==")
    for seg in path.segments:
        print(f"  {seg.stage:<10} {seg.duration_s * 1e3:8.3f} ms")

    # Tail sampling means the drops are in the registry too.
    dropped = [t for t in registry.trees.values() if t.status == "dropped"]
    if dropped:
        print()
        print("== a retained dropped trace ==")
        print(render_waterfall(dropped[0]))

    # Campaign-wide: the standard panel set plus the rollup, which
    # must reconcile with the sim-time profiler over the same trees.
    print()
    print(render_trace_panels(registry, slowest=3))
    rollup = registry.rollup()
    profile = PipelineProfile.from_registry(registry)
    assert rollup.reconciles_with(profile)
    print()
    print(rollup.render_text())
    print()
    print("rollup reconciles with sim-time profile: yes")


if __name__ == "__main__":
    main()
