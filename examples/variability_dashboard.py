#!/usr/bin/env python3
"""Run-time diagnosis of I/O variability — Figures 7, 8 and 9.

Runs five MPI-IO-TEST jobs on a *busy* NFS file system, one of which
(deterministically, with the documented seed) collides with a
congestion incident.  The absolute timestamps streamed by the connector
let us find the bad job, see *when* inside its execution the slowdown
happened, and view the Grafana-style throughput panel — all from the
database, after the fact but at run-time granularity.

Run:  python examples/variability_dashboard.py
"""

import numpy as np

from repro.experiments.figures import run_mpiio_campaign
from repro.webservices import (
    Dashboard,
    DsosDataSource,
    Panel,
    count_write_phases,
    detect_anomalous_jobs,
    duration_stats_per_job,
    render_ascii,
    rows_to_dataframe,
    throughput_series,
    timeline,
)


def main() -> None:
    world, job_ids = run_mpiio_campaign()
    rows = []
    for j in job_ids:
        rows.extend(world.query_job(j).rows)
    df = rows_to_dataframe([r for r in rows if r["module"] == "POSIX"])

    # -- Figure 7: who is the outlier? ---------------------------------
    stats = duration_stats_per_job(df)
    print("per-job mean op durations (seconds):")
    print(f"  {'job':>8} {'reads':>10} {'writes':>10}")
    for job in job_ids:
        s = stats[job]
        print(f"  {job:>8} {s['read']['mean']:>10.3f} {s['write']['mean']:>10.3f}")
    anomalous = detect_anomalous_jobs(stats, op="read", factor=5.0)
    bad = max(anomalous, key=lambda j: stats[j]["read"]["mean"])
    print(f"\nanomalous job detected: {bad} "
          f"(reads {stats[bad]['read']['mean'] / np.median([stats[j]['read']['mean'] for j in job_ids if j != bad]):.0f}x slower than the campaign median)")

    # -- Figure 8: when did it go wrong? --------------------------------
    tl = timeline(df, bad)
    phases = count_write_phases(tl, gap_s=1.0)
    writes = tl["t"][tl["op"] == "write"]
    reads = tl["t"][tl["op"] == "read"]
    print(f"\ntimeline of job {bad}:")
    print(f"  {phases} write phases over [0, {writes.max():.0f}]s, "
          f"reads in [{reads.min():.0f}, {reads.max():.0f}]s")
    slow = tl["t"][tl["duration"] > np.percentile(tl["duration"], 95)]
    print(f"  slowest 5% of operations cluster after t={slow.min():.0f}s")

    # And the root cause is visible in the monitoring data:
    load = world.loads["nfs"]
    incidents = load.incidents_between(tl["t0"], tl["t0"] + tl["t"].max())
    for start, end, severity in incidents:
        print(f"  file-system congestion incident: "
              f"[{start - tl['t0']:.0f}s, {end - tl['t0']:.0f}s] into the job, "
              f"severity {severity:.1f}x")

    # -- Figure 9: the Grafana panel ------------------------------------
    source = DsosDataSource(world.dsos)
    dash = Dashboard(title="Darshan LDMS Integration")
    dash.add_panel(
        Panel(
            title=f"job {bad}: bytes per 10s bucket",
            query={"index": "job_rank_time", "prefix": (bad,)},
            analysis=lambda frame: throughput_series(frame, job_id=bad, bucket_s=10.0),
        )
    )
    for panel_data in dash.render(source):
        print()
        print(render_ascii(panel_data))


if __name__ == "__main__":
    main()
