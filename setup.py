"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` needs PEP 660 editable-wheel support; on machines
without `wheel`, run `python setup.py develop` instead.
"""
from setuptools import setup

setup()
