"""repro — the LDMS Darshan Connector, reproduced in simulation.

A full Python reproduction of *"LDMS Darshan Connector: For Run Time
Diagnosis of HPC Application I/O Performance"* (IEEE CLUSTER 2022) on a
deterministic discrete-event-simulated HPC substrate.

Package map (bottom of the stack upward):

* :mod:`repro.sim` — the DES kernel (events, processes, resources,
  seeded RNG streams);
* :mod:`repro.cluster` — nodes, network, scheduler;
* :mod:`repro.fs` — NFS/Lustre queueing models + shared-load weather;
* :mod:`repro.mpi`, :mod:`repro.hdf5` — the I/O middleware layers;
* :mod:`repro.darshan` — the characterization tool (runtime, modules,
  DXT, HEATMAP, logs, job summary);
* :mod:`repro.ldms` — streams, daemons, aggregation, samplers, stores;
* :mod:`repro.dsos` — the indexed object store;
* :mod:`repro.core` — **the paper's contribution**: the Darshan-LDMS
  connector;
* :mod:`repro.webservices` — analyses + headless Grafana;
* :mod:`repro.apps` — the evaluated workloads;
* :mod:`repro.experiments` — campaign worlds, Table II / Figures 5–9
  and the ablations.

Start with ``examples/quickstart.py`` or
``from repro.experiments import World, WorldConfig, run_job``.
"""

__version__ = "1.0.0"
