"""Application workloads from the paper's evaluation (Section V-A).

Each application generates the I/O *pattern* of its real counterpart
through the simulated POSIX/STDIO/MPI-IO/HDF5 layers:

* :class:`~repro.apps.hacc_io.HaccIO` — N-body checkpoint proxy: every
  rank writes its particle block (nine variables) then reads it back
  for validation;
* :class:`~repro.apps.hmmer.Hmmer` — ``hmmbuild`` over Pfam-A.seed:
  a master rank streams millions of tiny stdio reads/writes while
  workers compute — the event-rate monster of Table IIc;
* :class:`~repro.apps.mpi_io_test.MpiIoTest` — Darshan's MPI-IO
  benchmark: iterations of fixed-size blocks, collective or
  independent;
* :class:`~repro.apps.sw4.Sw4` — seismic-wave solver writing 3-D mesh
  snapshots through HDF5 (exercises the H5F/H5D metrics of Table I).
"""

from repro.apps.base import AppContext, Application
from repro.apps.hacc_io import HaccIO
from repro.apps.hmmer import Hmmer
from repro.apps.mpi_io_test import MpiIoTest
from repro.apps.sw4 import Sw4
from repro.apps.synthetic import Phase, SyntheticWorkload

__all__ = [
    "AppContext",
    "Application",
    "HaccIO",
    "Hmmer",
    "MpiIoTest",
    "Phase",
    "Sw4",
    "SyntheticWorkload",
]
