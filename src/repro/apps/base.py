"""Application interface.

An :class:`Application` declares its node/rank layout and, given an
:class:`AppContext` (communicator, file system, Darshan runtime, job
identity), returns one generator per rank — the simulated MPI program.
The experiment runner drives those generators to completion and the
job's runtime is the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.job import Job
from repro.fs.base import FileSystem
from repro.mpi.communicator import Communicator
from repro.sim import Environment

__all__ = ["AppContext", "Application"]


@dataclass
class AppContext:
    """Everything a workload needs to run."""

    env: Environment
    comm: Communicator
    fs: FileSystem
    job: Job
    #: The (instrumented) Darshan runtime for this run.
    runtime: object
    #: Per-job RNG (forked from the campaign registry).
    rng: np.random.Generator
    #: Scratch directory on the target file system.
    scratch: str = "/scratch"


class Application:
    """Base class for workload generators."""

    #: Human name, also used as the job name.
    name: str = "app"
    #: Absolute path reported as the executable (Table I "exe").
    exe: str = "/apps/app"
    #: Node allocation requested from the scheduler.
    n_nodes: int = 1
    #: MPI ranks per node.
    ranks_per_node: int = 1

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.ranks_per_node

    def build(self, ctx: AppContext) -> list:
        """One generator per rank.  Subclasses implement
        :meth:`rank_process`; override this only for collective setup."""
        return [self.rank_process(ctx, rank) for rank in range(ctx.comm.size)]

    def rank_process(self, ctx: AppContext, rank: int):  # pragma: no cover
        raise NotImplementedError

    # -- small helpers shared by the workloads ------------------------------

    @staticmethod
    def compute(ctx: AppContext, seconds: float):
        """Charge pure-compute time (no I/O) to the calling rank."""
        if seconds > 0:
            yield ctx.env.timeout(seconds)

    def describe(self) -> dict:
        """Run-sheet entry (used by the experiment reports)."""
        return {
            "name": self.name,
            "exe": self.exe,
            "n_nodes": self.n_nodes,
            "ranks_per_node": self.ranks_per_node,
            "n_ranks": self.n_ranks,
        }
