"""HACC-IO: the checkpoint I/O proxy of the HACC cosmology code.

"It takes a number of particles per rank as input, writes out a
simulated checkpoint information into a file, and then read it for
validation."  Real HACC-IO serializes nine particle variables
(xx, yy, zz, vx, vy, vz, phi, pid, mask — 38 bytes/particle); each
rank's block is written variable by variable at the rank's region of a
shared file, then read back.

Paper configuration (Table IIb): 16 nodes, 5 M or 10 M particles/rank,
NFS vs Lustre, MPI independent I/O.
"""

from __future__ import annotations

from repro.apps.base import AppContext, Application
from repro.mpi.io import MPIIOFile

__all__ = ["HaccIO"]

#: float32 x/y/z/vx/vy/vz/phi (7*4) + int64 pid (8) + uint16 mask (2).
BYTES_PER_PARTICLE = 38

#: (name, bytes per particle) of the nine checkpoint variables.
VARIABLES = (
    ("xx", 4),
    ("yy", 4),
    ("zz", 4),
    ("vx", 4),
    ("vy", 4),
    ("vz", 4),
    ("phi", 4),
    ("pid", 8),
    ("mask", 2),
)


class HaccIO(Application):
    """The HACC checkpoint I/O proxy (Table IIb workload)."""

    name = "hacc-io"
    exe = "/apps/hacc/hacc_io"

    def __init__(
        self,
        *,
        n_nodes: int = 16,
        ranks_per_node: int = 8,
        particles_per_rank: int = 5_000_000,
        validate: bool = True,
        partial_io_model: bool = True,
        max_splits: int = 3,
    ):
        if particles_per_rank <= 0:
            raise ValueError("particles_per_rank must be positive")
        self.n_nodes = n_nodes
        self.ranks_per_node = ranks_per_node
        self.particles_per_rank = particles_per_rank
        self.validate = validate
        #: Under file-system pressure, write()/read() complete
        #: partially and the application loops — so the *number* of
        #: recorded operations varies run to run even for identical
        #: configurations.  This is the variability Figure 5's error
        #: bars and Figure 6's per-node differences show.
        self.partial_io_model = partial_io_model
        self.max_splits = max_splits

    @property
    def bytes_per_rank(self) -> int:
        return self.particles_per_rank * BYTES_PER_PARTICLE

    def build(self, ctx: AppContext) -> list:
        path = f"{ctx.scratch}/hacc-checkpoint.{ctx.job.job_id}.dat"
        mpifile = MPIIOFile(ctx.comm, path)
        ctx.runtime.instrument(mpifile)
        return [self._rank_body(ctx, mpifile, rank) for rank in range(ctx.comm.size)]

    def _segments(self, ctx: AppContext, nbytes: int) -> list[int]:
        """Split one logical transfer into 1..max_splits partial ops.

        The split count grows with the file system's current load — a
        busy server returns short writes more often.
        """
        if not self.partial_io_model:
            return [nbytes]
        load = ctx.fs.load.factor(ctx.env.now)
        p = min(0.6, max(0.0, 0.25 * (load - 0.9)))
        k = 1 + int(ctx.rng.binomial(self.max_splits - 1, p))
        if k == 1:
            return [nbytes]
        base = nbytes // k
        sizes = [base] * k
        sizes[-1] += nbytes - base * k
        return sizes

    def _rank_body(self, ctx: AppContext, mpifile: MPIIOFile, rank: int):
        n = self.particles_per_rank
        rank_base = rank * self.bytes_per_rank
        yield from mpifile.open_all(rank)

        # Checkpoint write: nine variables, contiguous per rank.
        offset = rank_base
        for _name, width in VARIABLES:
            nbytes = n * width
            for part in self._segments(ctx, nbytes):
                yield from mpifile.write_at(rank, offset, part)
                offset += part

        # Validation read-back of the same regions.
        if self.validate:
            yield from ctx.comm.barrier(rank)
            offset = rank_base
            for _name, width in VARIABLES:
                nbytes = n * width
                for part in self._segments(ctx, nbytes):
                    yield from mpifile.read_at(rank, offset, part)
                    offset += part

        yield from mpifile.close_all(rank)
