"""HMMER ``hmmbuild``: the event-rate monster of Table IIc.

"hmmbuild ... uses MPI to build a database by concatenating multiple
profiles Stockholm alignment files" — rank 0 (the master) streams the
Pfam-A.seed alignments with line-sized stdio reads, farms the profile
computation to workers, and appends every finished HMM to the output
database with small stdio writes plus a flush per record.

The I/O character that matters for the paper: *millions* of tiny
library-level events concentrated on the master rank, at 1–2 k
events/second.  Every one of them becomes a connector message, and the
JSON formatting cost lands on rank 0's critical path — which is exactly
why the paper measures 277 % (NFS) and 1277 % (Lustre) overhead.

``n_families`` scales the input: Pfam-A.seed has ~19,000 families; test
and benchmark configurations use a reduced family count, which
preserves message *rate* and overhead *percentage* (both runtime and
event count scale together — see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.apps.base import AppContext, Application
from repro.fs.posix import StdioClient

__all__ = ["Hmmer"]


class Hmmer(Application):
    """hmmbuild over Pfam-A.seed (Table IIc workload)."""

    name = "hmmer-hmmbuild"
    exe = "/apps/hmmer/bin/hmmbuild"
    n_nodes = 1

    def __init__(
        self,
        *,
        ranks_per_node: int = 32,
        n_families: int = 19_000,
        #: Stockholm alignment lines read per family (line-buffered stdio).
        reads_per_family: int = 110,
        #: HMM record lines written per family.
        writes_per_family: int = 40,
        line_bytes: int = 112,
        #: Worker CPU seconds to build one profile HMM.
        compute_per_family_s: float = 0.040,
        #: Master CPU seconds to parse/serialize one family.
        master_parse_s: float = 0.0005,
    ):
        if n_families <= 0:
            raise ValueError("n_families must be positive")
        if ranks_per_node < 2:
            raise ValueError("hmmbuild --mpi needs a master and >=1 worker")
        self.ranks_per_node = ranks_per_node
        self.n_families = n_families
        self.reads_per_family = reads_per_family
        self.writes_per_family = writes_per_family
        self.line_bytes = line_bytes
        self.compute_per_family_s = compute_per_family_s
        self.master_parse_s = master_parse_s

    @property
    def events_per_family(self) -> int:
        return self.reads_per_family + self.writes_per_family

    def build(self, ctx: AppContext) -> list:
        # Pre-create the seed file so the master's reads see real bytes.
        seed_path = f"{ctx.scratch}/Pfam-A.seed"
        db_path = f"{ctx.scratch}/Pfam-A.hmm"
        seed_bytes = self.n_families * self.reads_per_family * self.line_bytes
        file = ctx.fs._lookup(seed_path, create=True)
        file.size = seed_bytes

        bodies = []
        for rank in range(ctx.comm.size):
            if rank == 0:
                bodies.append(self._master(ctx, rank, seed_path, db_path))
            else:
                bodies.append(self._worker(ctx, rank))
        return bodies

    # -- rank bodies -------------------------------------------------------

    def _master(self, ctx: AppContext, rank: int, seed_path: str, db_path: str):
        """Rank 0: read alignments line by line, write HMM records."""
        posix = ctx.comm.rank_context(rank).posix
        # Reads stream through libc's default 64 KiB buffer; the output
        # database uses a small line buffer (hmmbuild writes records
        # with line-buffered fprintf), so writes hit the FS often.
        stdio_in = StdioClient(posix, buffer_size=64 * 1024)
        stdio_out = StdioClient(posix, buffer_size=1024)
        ctx.runtime.instrument(stdio_in)
        ctx.runtime.instrument(stdio_out)
        n_workers = ctx.comm.size - 1

        seed = yield from stdio_in.fopen(seed_path, "r")
        db = yield from stdio_out.fopen(db_path, "w")

        # Worker pipeline: the master blocks on computation only when
        # all workers are busy; model as periodic waits every n_workers
        # families for the compute time of one batch.
        for family in range(self.n_families):
            for _ in range(self.reads_per_family):
                yield from stdio_in.fread(seed, self.line_bytes)
            yield from Application.compute(ctx, self.master_parse_s)
            if family % n_workers == n_workers - 1:
                # Wait for the worker batch to finish building.
                yield from Application.compute(ctx, self.compute_per_family_s)
            for _ in range(self.writes_per_family):
                yield from stdio_out.fwrite(db, self.line_bytes)
            # hmmbuild flushes each completed HMM record.
            yield from stdio_out.fflush(db)

        yield from stdio_in.fclose(seed)
        yield from stdio_out.fclose(db)
        yield from ctx.comm.barrier(rank)

    def _worker(self, ctx: AppContext, rank: int):
        """Workers: pure computation (their I/O is negligible)."""
        n_workers = ctx.comm.size - 1
        my_share = self.n_families // n_workers
        yield from Application.compute(
            ctx, my_share * self.compute_per_family_s
        )
        yield from ctx.comm.barrier(rank)
