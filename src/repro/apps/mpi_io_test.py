"""MPI-IO-TEST: Darshan's bundled MPI I/O benchmark.

"It can produce iterations of messages with different block sizes sent
from various MPI ranks.  It can also simulate collective and
independent MPI I/O methods."  Each iteration, every rank writes one
``block_size`` block at its own offset (collective ``write_at_all`` or
independent ``write_at``), then the file is read back the same way —
the pattern whose variability Figures 7–9 dissect.

Paper configuration (Table IIa): 22 nodes, 16 MiB blocks, 10
iterations, collective on/off, NFS vs Lustre.
"""

from __future__ import annotations

from repro.apps.base import AppContext, Application
from repro.fs.lustre import LustreFileSystem
from repro.mpi.io import MPIIOFile

__all__ = ["MpiIoTest"]


class MpiIoTest(Application):
    """Darshan's bundled MPI I/O benchmark (Table IIa workload)."""

    name = "mpi-io-test"
    exe = "/apps/darshan/mpi-io-test"

    def __init__(
        self,
        *,
        n_nodes: int = 22,
        ranks_per_node: int = 16,
        block_size: int = 16 * 2**20,
        iterations: int = 10,
        collective: bool = True,
        read_back: bool = True,
        sync_per_iteration: bool = True,
        iteration_setup_s: float = 2.0,
    ):
        if block_size <= 0 or iterations <= 0:
            raise ValueError("block_size and iterations must be positive")
        self.n_nodes = n_nodes
        self.ranks_per_node = ranks_per_node
        self.block_size = block_size
        self.iterations = iterations
        self.collective = collective
        self.read_back = read_back
        #: The benchmark times each iteration: a barrier plus buffer
        #: (re)initialization separate the write phases — the ten
        #: distinct phases visible in the paper's Figure 8.
        self.sync_per_iteration = sync_per_iteration
        self.iteration_setup_s = iteration_setup_s

    def build(self, ctx: AppContext) -> list:
        # ROMIO enables data sieving for collective writes on file
        # systems without exposed striping (NFS).
        sieving = self.collective and not isinstance(ctx.fs, LustreFileSystem)
        path = f"{ctx.scratch}/mpi-io-test.{ctx.job.job_id}.dat"
        mpifile = MPIIOFile(
            ctx.comm,
            path,
            cb_buffer_size=16 * 2**20,
            data_sieving=sieving,
            ds_buffer_size=4 * 2**20,
        )
        ctx.runtime.instrument(mpifile)
        return [self._rank_body(ctx, mpifile, rank) for rank in range(ctx.comm.size)]

    def _rank_body(self, ctx: AppContext, mpifile: MPIIOFile, rank: int):
        size = ctx.comm.size
        block = self.block_size
        yield from mpifile.open_all(rank)
        # Write phase: iteration i covers [i*size*block, (i+1)*size*block).
        for i in range(self.iterations):
            if self.sync_per_iteration:
                yield from ctx.comm.barrier(rank)
                yield from self.compute(ctx, self.iteration_setup_s)
            offset = (i * size + rank) * block
            if self.collective:
                yield from mpifile.write_at_all(rank, offset, block)
            else:
                yield from mpifile.write_at(rank, offset, block)
        # Read-back phase (validation), same access shape.
        if self.read_back:
            yield from ctx.comm.barrier(rank)
            for i in range(self.iterations):
                offset = (i * size + rank) * block
                if self.collective:
                    yield from mpifile.read_at_all(rank, offset, block)
                else:
                    yield from mpifile.read_at(rank, offset, block)
        yield from mpifile.close_all(rank)
