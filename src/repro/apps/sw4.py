"""sw4: seismic-wave solver with HDF5 mesh snapshots.

"sw4 is a geodynamics code that solves 3D seismic wave equations with
local mesh refinement.  sw4 accepts an input file that specifies the 3D
grid simulation size."  The paper runs it with a grid using ~50 % of
node memory but reports no Table II column for it; we implement the
workload to exercise the HDF5 (H5F/H5D) connector path: time-stepping
compute punctuated by snapshot dumps, where every rank writes its slab
of the 3-D volume as a regular hyperslab.
"""

from __future__ import annotations

from repro.apps.base import AppContext, Application
from repro.hdf5 import H5File

__all__ = ["Sw4"]


class Sw4(Application):
    """Seismic-wave solver with HDF5 snapshot output."""

    name = "sw4"
    exe = "/apps/sw4/sw4"

    def __init__(
        self,
        *,
        n_nodes: int = 4,
        ranks_per_node: int = 8,
        grid: tuple = (256, 256, 256),
        element_size: int = 8,
        timesteps: int = 20,
        snapshot_every: int = 5,
        compute_per_step_s: float = 0.5,
    ):
        if len(grid) != 3 or any(g <= 0 for g in grid):
            raise ValueError("grid must be three positive dimensions")
        if timesteps <= 0 or snapshot_every <= 0:
            raise ValueError("timesteps and snapshot_every must be positive")
        self.n_nodes = n_nodes
        self.ranks_per_node = ranks_per_node
        self.grid = tuple(grid)
        self.element_size = element_size
        self.timesteps = timesteps
        self.snapshot_every = snapshot_every
        self.compute_per_step_s = compute_per_step_s

    def build(self, ctx: AppContext) -> list:
        size = ctx.comm.size
        if self.grid[0] % size != 0:
            raise ValueError(
                f"grid x-dimension {self.grid[0]} must divide by {size} ranks"
            )
        # One HDF5 file per snapshot per rank region would be unusual;
        # sw4's hdf5 output writes one file per snapshot, every rank a
        # slab.  Each rank opens its own H5File handle on the shared
        # path (the simulated layer tracks bytes, not structure locks).
        return [self._rank_body(ctx, rank) for rank in range(ctx.comm.size)]

    def _rank_body(self, ctx: AppContext, rank: int):
        size = ctx.comm.size
        slab = self.grid[0] // size
        posix = ctx.comm.rank_context(rank).posix
        n_snapshots = 0
        for step in range(1, self.timesteps + 1):
            yield from Application.compute(ctx, self.compute_per_step_s)
            yield from ctx.comm.allreduce(rank, 8)  # dt reduction
            if step % self.snapshot_every == 0:
                n_snapshots += 1
                path = f"{ctx.scratch}/sw4-snap-{ctx.job.job_id}-{step:04d}.rank{rank}.h5"
                h5 = H5File(posix, path)
                ctx.runtime.instrument(h5)
                yield from h5.open("w")
                yield from h5.create_dataset(
                    "u", (slab, self.grid[1], self.grid[2]), self.element_size
                )
                yield from h5.write_hyperslab(
                    "u", (0, 0, 0), (slab, self.grid[1], self.grid[2])
                )
                yield from h5.flush()
                yield from h5.close()
        yield from ctx.comm.barrier(rank)
