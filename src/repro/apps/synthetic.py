"""Synthetic, phase-structured workload generator (IOR-style).

Downstream users rarely run the paper's exact applications; they want
to ask "what would the connector cost *my* code?".  A
:class:`SyntheticWorkload` is declared as a list of :class:`Phase`
objects — each a compute/write/read/rewrite stage with an op size, op
count per rank, sharing mode and collectivity — and runs through the
same instrumented stack as the real apps, so every analysis and
overhead tool in the repository applies to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppContext, Application
from repro.mpi.io import MPIIOFile

__all__ = ["Phase", "SyntheticWorkload"]

_KINDS = ("compute", "write", "read")


@dataclass(frozen=True)
class Phase:
    """One stage of the synthetic program."""

    kind: str  # compute | write | read
    #: compute: seconds per rank.  read/write: ops per rank.
    amount: float = 1.0
    op_bytes: int = 2**20
    #: "shared" = one file, rank-strided regions; "per_rank" = file per rank.
    file_mode: str = "shared"
    collective: bool = False
    #: Phase label, used in file names.
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"phase kind must be one of {_KINDS}, got {self.kind!r}")
        if self.amount <= 0:
            raise ValueError("amount must be positive")
        if self.kind != "compute":
            if self.op_bytes <= 0:
                raise ValueError("op_bytes must be positive")
            if self.file_mode not in ("shared", "per_rank"):
                raise ValueError(f"unknown file_mode {self.file_mode!r}")
            if self.collective and self.file_mode == "per_rank":
                raise ValueError("collective I/O requires a shared file")


class SyntheticWorkload(Application):
    """An application assembled from phases."""

    name = "synthetic"
    exe = "/apps/synthetic"

    def __init__(self, phases: list[Phase], *, n_nodes: int = 4, ranks_per_node: int = 4):
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = list(phases)
        self.n_nodes = n_nodes
        self.ranks_per_node = ranks_per_node

    def build(self, ctx: AppContext) -> list:
        # Pre-create the shared MPIIO files (one per shared-file phase)
        # so collective state is common across ranks.
        shared_files: dict[int, MPIIOFile] = {}
        for i, phase in enumerate(self.phases):
            if phase.kind != "compute" and phase.file_mode == "shared":
                label = phase.name or f"phase{i}"
                f = MPIIOFile(
                    ctx.comm, f"{ctx.scratch}/synthetic.{ctx.job.job_id}.{label}.dat"
                )
                ctx.runtime.instrument(f)
                shared_files[i] = f
        return [
            self._rank_body(ctx, shared_files, rank)
            for rank in range(ctx.comm.size)
        ]

    def _rank_body(self, ctx: AppContext, shared_files: dict, rank: int):
        posix = ctx.comm.rank_context(rank).posix
        for i, phase in enumerate(self.phases):
            if phase.kind == "compute":
                yield from self.compute(ctx, phase.amount)
                yield from ctx.comm.barrier(rank)
                continue

            n_ops = int(phase.amount)
            if phase.file_mode == "shared":
                f = shared_files[i]
                yield from f.open_all(rank)
                stride = ctx.comm.size * phase.op_bytes
                for k in range(n_ops):
                    offset = k * stride + rank * phase.op_bytes
                    if phase.kind == "write":
                        if phase.collective:
                            yield from f.write_at_all(rank, offset, phase.op_bytes)
                        else:
                            yield from f.write_at(rank, offset, phase.op_bytes)
                    else:
                        if phase.collective:
                            yield from f.read_at_all(rank, offset, phase.op_bytes)
                        else:
                            yield from f.read_at(rank, offset, phase.op_bytes)
                yield from f.close_all(rank)
            else:  # per-rank files, plain POSIX
                label = phase.name or f"phase{i}"
                path = f"{ctx.scratch}/synthetic.{ctx.job.job_id}.{label}.r{rank}.dat"
                flags = "w" if phase.kind == "write" else "r"
                if phase.kind == "read" and not ctx.fs.exists(path):
                    # Reading a file nobody wrote: create it first so
                    # the phase measures reads, not ENOENT.
                    handle = yield from posix.open(path, "w")
                    yield from posix.write(handle, n_ops * phase.op_bytes)
                    yield from posix.close(handle)
                handle = yield from posix.open(path, flags)
                for k in range(n_ops):
                    if phase.kind == "write":
                        yield from posix.write(handle, phase.op_bytes)
                    else:
                        yield from posix.read(handle, phase.op_bytes, k * phase.op_bytes)
                yield from posix.close(handle)
