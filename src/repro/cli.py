"""Experiment CLI: regenerate the paper's tables, figures and ablations.

Usage::

    python -m repro.cli table2a [--reps 3] [--seed 42]
    python -m repro.cli table2b
    python -m repro.cli table2c [--families 400]
    python -m repro.cli fig5 | fig6 | fig7 | fig8 | fig9
    python -m repro.cli ablations
    python -m repro.cli telemetry [--queue-depth 1] [--inject-failure] [--check] [--json]
    python -m repro.cli chaos [--seed 42] [--seeds N] [--check] \\
        [--no-fast-lane] [--columnar] [--json]
    python -m repro.cli store [--topology | --drill] [--no-repair] \\
        [--check] [--no-fast-lane] [--columnar] [--json]
    python -m repro.cli diagnose [--seed 42] [--check] [--no-fast-lane] [--json]
    python -m repro.cli explain [--job ID] [--seed 42] [--check] \\
        [--no-fast-lane] [--columnar] [--json]
    python -m repro.cli profile [--seed 42] [--json]
    python -m repro.cli trace [--trace-id ID | --slowest N | --drops] \\
        [--head-rate R] [--tail-latency S] [--check] [--json]
    python -m repro.cli bench [--quick] [--check] [--json] [--out PATH]
    python -m repro.cli fleet [--scan | --export | --catalog] [--check] [--json]

All commands print the reproduced rows/series to stdout; scale flags
trade fidelity for wall-clock time (see EXPERIMENTS.md for the
scale-invariance argument).

Exit codes are uniform across every ``--check``-capable command:
0 = OK, 1 = an invariant is broken (ledger violated, fault undetected,
critical path inexact, scorecard not reconciling, catalog incomplete,
benchmark regression), 2 = usage error (bad flags, unknown/missing
identifiers).
"""

from __future__ import annotations

import argparse

__all__ = ["main"]


def _print_overhead(rows: list[dict]) -> None:
    print(f"{'config':<28} {'fs':<7} {'msgs':>8} {'rate/s':>7} "
          f"{'Darshan(s)':>11} {'dC(s)':>9} {'overhead':>9}")
    for r in rows:
        print(f"{r['config']:<28} {r['filesystem']:<7} {r['avg_messages']:>8} "
              f"{r['rate_msgs_per_s']:>7.1f} {r['darshan_runtime_s']:>11.2f} "
              f"{r['dC_runtime_s']:>9.2f} {r['overhead_percent']:>8.2f}%")


def _cmd_table2a(args) -> None:
    from repro.experiments import table2a_mpiio

    cells = table2a_mpiio(seed=args.seed, reps=args.reps,
                          ranks_per_node=args.ranks_per_node)
    _print_overhead([c.as_row() for c in cells])


def _cmd_table2b(args) -> None:
    from repro.experiments import table2b_haccio

    cells = table2b_haccio(
        seed=args.seed, reps=args.reps, ranks_per_node=args.ranks_per_node,
        particle_counts=(args.particles, 2 * args.particles),
    )
    _print_overhead([c.as_row() for c in cells])


def _cmd_table2c(args) -> None:
    from repro.experiments import table2c_hmmer

    cells = table2c_hmmer(seed=args.seed, reps=args.reps, n_families=args.families)
    _print_overhead([c.as_row() for c in cells])


def _cmd_fig5(args) -> None:
    from repro.experiments import fig5_op_counts

    out = fig5_op_counts(seed=args.seed, reps=args.reps)
    for label, counts in out.items():
        line = "  ".join(
            f"{op}={counts[op]['mean']:.0f}±{counts[op]['ci']:.1f}"
            for op in sorted(counts)
        )
        print(f"{label:<16} {line}")


def _cmd_fig6(args) -> None:
    from repro.experiments import fig6_per_node

    for job_id, nodes in fig6_per_node(seed=args.seed).items():
        print(f"job {job_id}:")
        for node, ops in sorted(nodes.items()):
            print(f"  {node}: {ops}")


def _cmd_fig7(args) -> None:
    from repro.experiments import fig7_duration_variability

    out = fig7_duration_variability()
    print(f"{'job':>8} {'reads(s)':>10} {'writes(s)':>10}")
    for job in out["job_ids"]:
        s = out["stats"][job]
        mark = "  <-- anomalous" if job in out["anomalous"] else ""
        print(f"{job:>8} {s['read']['mean']:>10.3f} {s['write']['mean']:>10.3f}{mark}")


def _cmd_fig8(args) -> None:
    from repro.experiments import fig8_timeline

    tl = fig8_timeline()
    writes = tl["op"] == "write"
    reads = tl["op"] == "read"
    print(f"job {tl['job_id']}: {tl['write_phases']} write phases "
          f"over [0, {tl['t'][writes].max():.0f}]s; "
          f"reads in [{tl['t'][reads].min():.0f}, {tl['t'][reads].max():.0f}]s")


def _cmd_fig9(args) -> None:
    from repro.experiments import fig9_grafana_series

    s = fig9_grafana_series(bucket_s=10.0)
    print(f"job {s['job_id']} (MiB per 10s bucket):")
    for op in ("write", "read"):
        print(f"  {op:>6}: " + " ".join(f"{v / 2**20:.0f}" for v in s[op]["bytes"]))


def _cmd_ablations(args) -> None:
    from repro.experiments import (
        ablation_dsos_index,
        ablation_push_pull,
        ablation_sampling,
        ablation_sprintf,
    )

    print("== A1: JSON formatting on/off ==")
    _print_overhead(ablation_sprintf(n_families=args.families, reps=1))
    print("\n== A2: n-th-event sampling ==")
    for r in ablation_sampling(sample_every=(1, 5, 20, 100), n_families=args.families):
        print(f"  n={r['sample_every']:<4} overhead={r['overhead_percent']:.0f}% "
              f"fidelity={r['fidelity']:.0%}")
    print("\n== A3: DSOS index choice ==")
    for r in ablation_dsos_index():
        print(f"  {r['index']:<32} scanned={r['rows_scanned']:<7} "
              f"latency={r['est_latency_s'] * 1e6:.0f}us")
    print("\n== A4: push vs pull ==")
    for r in ablation_push_pull():
        print(f"  {r['mode']:<5} buffered={r['peak_buffered']:<6} lost={r['lost']:<7} "
              f"latency={r['mean_latency_s']:.2f}s")


def _cmd_telemetry(args) -> None:
    """Run a small campaign with pipeline telemetry on and report it:
    per-stage latency histograms, drop sites, loss reconciliation."""
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.experiments.world import STREAM_TAG

    world = World(WorldConfig(
        seed=args.seed, quiet=True, n_compute_nodes=4, telemetry=True,
        forward_queue_depth=args.queue_depth,
    ))
    if args.inject_failure:
        # Crash the L1 aggregator mid-run so the report has a
        # daemon-failure drop site to attribute.
        seen = {"n": 0}

        def trip_wire(message):
            seen["n"] += 1
            if seen["n"] == args.fail_after:
                world.fabric.l1.fail()

        world.fabric.l1.streams.subscribe(STREAM_TAG, trip_wire)

    app = MpiIoTest(
        n_nodes=2, ranks_per_node=args.ranks_per_node, iterations=4,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs", connector_config=ConnectorConfig())
    if args.json:
        import json

        print(json.dumps(result.health.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.health.render_text())
    if args.check and not result.health.verify():
        print("FAIL: loss reconciliation violated "
              "(published != stored + Σ drops + in_flight_spill)")
        raise SystemExit(1)


def _chaos_run(seed: int, fast: bool, columnar: bool, args):
    """One seeded chaos campaign; returns ``(world, result, duplicates)``."""
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.faults import DaemonCrash, FaultPlan, LinkPartition, SlowStore
    from repro.ldms.resilience import RetryPolicy

    plan = FaultPlan((
        DaemonCrash("l1", after_messages=args.fail_after, down_for=0.5),
        LinkPartition("nid00001", "head", at=0.2, duration=0.3),
        SlowStore(at=0.1, duration=0.4),
    ))
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, faults=plan, retry=RetryPolicy(), standby_l1=True,
        columnar=columnar,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=args.ranks_per_node, iterations=8,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    # No inter-job gap: the job starts at t=0, so the timed fault
    # windows above land inside the I/O burst instead of before it.
    result = run_job(world, app, "nfs",
                     connector_config=ConnectorConfig(
                         spill=True, fast_lane=fast, columnar=columnar),
                     inter_job_gap_s=0.0)
    journal = world.store.journal
    duplicates = journal.duplicates_skipped if journal else 0
    return world, result, duplicates


def _cmd_chaos(args) -> None:
    """Seeded chaos campaign against the self-healing pipeline.

    Crashes the L1 aggregator mid-run (it restarts after half a
    second), partitions one compute node's uplink, and stalls the DSOS
    store — with every recovery path armed: spill/replay connector,
    retry/backoff forwarders, a hot-standby L1, journaled idempotent
    ingest.  Prints the applied-fault log and the health report; with
    ``--check``, exits nonzero unless the ledger closes exactly.
    ``--seeds N`` sweeps seeds ``seed .. seed+N-1`` in one process (the
    CI smoke lane); the combined exit code fails if *any* seed does.
    """
    import sys

    fast = not args.no_fast_lane
    columnar = args.columnar
    if columnar and not fast:
        print("repro chaos: --columnar requires the fast lane "
              "(drop --no-fast-lane)", file=sys.stderr)
        raise SystemExit(2)
    if args.seeds < 1:
        print("repro chaos: --seeds must be >= 1", file=sys.stderr)
        raise SystemExit(2)

    seeds = range(args.seed, args.seed + args.seeds)
    payloads = []
    broken: list[int] = []
    for seed in seeds:
        world, result, duplicates = _chaos_run(seed, fast, columnar, args)
        epoch = world.config.epoch
        if not result.health.verify():
            broken.append(seed)
        if args.json:
            payloads.append({
                "seed": seed,
                "fast_lane": fast,
                "columnar": columnar,
                "applied_faults": [
                    {"t": f.t - epoch, "kind": f.kind, "detail": f.detail}
                    for f in world.fault_injector.applied
                ],
                "duplicates_skipped": duplicates,
                "health": result.health.to_dict(),
            })
            continue
        if args.seeds > 1:
            print(f"== seed {seed} ==")
        print("== applied faults ==")
        for fault in world.fault_injector.applied:
            print(f"  t={fault.t - epoch:9.3f}s "
                  f"{fault.kind:<16} {fault.detail}")
        print(f"duplicates skipped by ingest journal: {duplicates}")
        print()
        print(result.health.render_text())
        if args.seeds > 1:
            print()

    if args.json:
        import json

        # One seed keeps the original flat payload; a sweep nests them.
        out = payloads[0] if args.seeds == 1 else {"runs": payloads}
        print(json.dumps(out, indent=2, sort_keys=True))
    if args.check and broken:
        print("FAIL: unaccounted events under fault injection "
              f"(seed(s) {', '.join(str(s) for s in broken)})")
        raise SystemExit(1)
    if args.check and args.seeds > 1:
        print(f"OK: ledger exact across {args.seeds} seeds")


def _cmd_store(args) -> None:
    """Replicated-store resilience: topology, crash drill, census check.

    Builds a sharded, quorum-replicated DSOS cluster (2 shards × 2
    replicas, write quorum 2) and drives the chaos campaign through it.
    ``--topology`` prints the shard layout of a clean run; ``--drill``
    (the default) crashes one replica per shard mid-run — one with a
    torn WAL tail — lets WAL replay and anti-entropy repair bring them
    back, and prints the fault log, replica census and recovery ledger.
    ``--no-repair`` disables anti-entropy (the drill then leaves
    under-replicated objects behind — the negative control).  With
    ``--check``, exits 1 unless the loss ledger closes exactly, the
    census is complete (zero lost, zero under-replicated objects) and
    every replica is back alive.
    """
    import sys

    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.faults import FaultPlan, StoreCrash
    from repro.ldms.resilience import RetryPolicy

    modes = [m for m in ("topology", "drill") if getattr(args, m)]
    if len(modes) > 1:
        print("repro store: --topology and --drill are mutually exclusive",
              file=sys.stderr)
        raise SystemExit(2)
    mode = modes[0] if modes else "drill"

    fast = not args.no_fast_lane
    columnar = args.columnar
    if columnar and not fast:
        print("repro store: --columnar requires the fast lane "
              "(drop --no-fast-lane)", file=sys.stderr)
        raise SystemExit(2)

    plan = None
    if mode == "drill":
        # One replica per shard goes down mid-burst; the first loses a
        # torn WAL tail too, so recovery must truncate and repair must
        # re-pull.  down_for exceeds the diagnosis hold so the outage
        # is also visible to the alerting stack when armed.
        plan = FaultPlan((
            StoreCrash(0, at=0.15, down_for=0.8, tear_tail=True),
            StoreCrash(3, at=0.25, down_for=0.25),
        ))
    world = World(WorldConfig(
        seed=args.seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, columnar=columnar, faults=plan,
        retry=RetryPolicy(), standby_l1=True,
        dsos_shards=2, dsos_replication=2, dsos_write_quorum=2,
        dsos_repair=not args.no_repair,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=args.ranks_per_node, iterations=8,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs",
                     connector_config=ConnectorConfig(
                         spill=True, fast_lane=fast, columnar=columnar),
                     inter_job_gap_s=0.0)
    cluster = world.dsos.cluster
    census = cluster.census()
    epoch = world.config.epoch
    store_recoveries = {
        site: n for site, n in sorted(result.health.recovery_sites().items())
        if site[2] in ("wal_replayed", "repair_pulled", "quorum_degraded")
    }

    if args.json:
        import json

        payload = {
            "seed": args.seed,
            "mode": mode,
            "fast_lane": fast,
            "columnar": columnar,
            "repair": not args.no_repair,
            "applied_faults": [
                {"t": f.t - epoch, "kind": f.kind, "detail": f.detail}
                for f in (world.fault_injector.applied
                          if world.fault_injector else ())
            ],
            "layout": cluster.shard_layout(),
            "census": {
                "objects": census.objects,
                "lost": census.lost,
                "under_replicated": census.under_replicated,
                "replicas_down": census.replicas_down,
                "degraded_shards": list(census.degraded_shards),
                "complete": census.complete,
            },
            "store": cluster.stats_snapshot(),
            "store_recoveries": [
                {"stage": s, "node": n, "outcome": o, "count": c}
                for (s, n, o), c in store_recoveries.items()
            ],
            "ledger_exact": result.health.verify(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"== store topology ({cluster.shards} shard(s) x "
              f"{cluster.replication} replica(s), "
              f"W={cluster.write_quorum}) ==")
        for row in cluster.shard_layout():
            daemons = ", ".join(
                f"{d}{'' if alive else ' (down)'} [{objs}]"
                for d, alive, objs in
                zip(row["daemons"], row["alive"], row["objects"])
            )
            print(f"  shard {row['shard']}: {daemons}")
        if mode == "drill":
            print("\n== applied faults ==")
            for fault in world.fault_injector.applied:
                print(f"  t={fault.t - epoch:9.3f}s "
                      f"{fault.kind:<16} {fault.detail}")
            print("\n== recovery ledger (store) ==")
            for (stage, node, outcome), count in store_recoveries.items():
                print(f"  {stage}/{node}: {outcome} x{count}")
            if not store_recoveries:
                print("  (none)")
            snap = cluster.stats_snapshot()
            print(f"\nwrites={snap['writes']} "
                  f"quorum_degraded={snap['quorum_degraded_writes']} "
                  f"rejected={snap['rejected_writes']}")
        print(f"census: {census.objects} object(s), {census.lost} lost, "
              f"{census.under_replicated} under-replicated, "
              f"{census.replicas_down} replica(s) down, "
              f"degraded shards {list(census.degraded_shards) or 'none'}")
        print(f"ledger: {'exact' if result.health.verify() else 'VIOLATED'}")

    if args.check:
        failed = False
        if not result.health.verify():
            print("FAIL: loss ledger does not close under the store drill")
            failed = True
        if census.lost:
            print(f"FAIL: {census.lost} object(s) lost "
                  f"(no live copy anywhere)")
            failed = True
        if census.under_replicated:
            print(f"FAIL: {census.under_replicated} object(s) "
                  f"under-replicated after recovery"
                  + (" (repair disabled)" if args.no_repair else ""))
            failed = True
        if census.replicas_down:
            print(f"FAIL: {census.replicas_down} replica(s) still down")
            failed = True
        if failed:
            raise SystemExit(1)
        print(f"OK: census complete — every object holds quorum copies "
              f"({census.objects} objects, ledger exact)")


def _diagnosis_campaign(seed: int, fast: bool, faults, ranks_per_node: int):
    """One diagnosis-armed campaign run; returns (world, result)."""
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.diagnosis import DiagnosisConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.ldms.resilience import RetryPolicy

    # Cadence tuned to the sub-second fault windows of the chaos plan:
    # 50 ms ticks, 250 ms windows, 100 ms firing hysteresis.
    diag = DiagnosisConfig(
        eval_period_s=0.05, window_s=0.25, for_duration_s=0.1,
        latency_slo_s=0.25, slo_min_count=8,
    )
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, faults=faults, retry=RetryPolicy(),
        standby_l1=True, diagnosis=diag,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=ranks_per_node, iterations=8,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs",
                     connector_config=ConnectorConfig(spill=True, fast_lane=fast),
                     inter_job_gap_s=0.0)
    return world, result


def _cmd_diagnose(args) -> None:
    """Live runtime diagnosis, scored against injected ground truth.

    Runs the chaos fault plan (L1 crash, link degrade, store stall)
    with the streaming diagnosis engine armed, correlates the incident
    log against the injector's applied-fault record, then repeats the
    campaign *clean* (no faults) as a false-positive control.  With
    ``--check``, exits nonzero if any injected fault class goes
    undetected or the clean run raises any alert.
    """
    from repro.faults import DaemonCrash, FaultPlan, LinkDegrade, SlowStore
    from repro.diagnosis import score_incidents

    fast = not args.no_fast_lane
    plan = FaultPlan((
        DaemonCrash("l1", after_messages=args.fail_after, down_for=0.5),
        LinkDegrade("nid00001", "head", at=0.2, duration=0.3, factor=50.0),
        SlowStore(at=0.1, duration=0.4),
    ))
    world, result = _diagnosis_campaign(
        args.seed, fast, plan, args.ranks_per_node)
    epoch = world.config.epoch
    score = score_incidents(
        world.diagnosis.incidents, world.fault_injector.applied)

    clean_world, _ = _diagnosis_campaign(
        args.seed, fast, None, args.ranks_per_node)
    clean_alerts = len(clean_world.diagnosis.incidents)

    if args.json:
        import json

        payload = {
            "seed": args.seed,
            "fast_lane": fast,
            "applied_faults": [
                {"t": f.t - epoch, "kind": f.kind, "detail": f.detail}
                for f in world.fault_injector.applied
            ],
            "incidents": [
                a.to_dict(epoch) for a in world.diagnosis.incidents
            ],
            "score": score.to_dict(epoch),
            "clean_run_alerts": clean_alerts,
            "ledger_exact": result.health.verify(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("== applied faults ==")
        for fault in world.fault_injector.applied:
            print(f"  t={fault.t - epoch:9.3f}s "
                  f"{fault.kind:<16} {fault.detail}")
        print()
        print(world.diagnosis.incidents.render_text(epoch))
        print()
        print(score.render_text(epoch))
        print(f"\nclean-run control: {clean_alerts} alert(s) "
              f"({'OK' if clean_alerts == 0 else 'FALSE POSITIVES'})")

    if args.check:
        failed = False
        if not score.ok():
            print("FAIL: undetected fault classes: "
                  + ", ".join(sorted(score.undetected_classes())))
            failed = True
        if clean_alerts:
            print(f"FAIL: clean run raised {clean_alerts} alert(s)")
            failed = True
        if not result.health.verify():
            print("FAIL: unaccounted events under fault injection")
            failed = True
        if failed:
            raise SystemExit(1)
        print("OK: every fault class detected; clean run silent")


def _cmd_explain(args) -> None:
    """Explainable bottleneck classification, scored against ground truth.

    Runs the four-class explain chaos campaign (aggregation-trunk
    degrade, store stall, L1 crash and replicated-store crash in
    disjoint windows), distills the job's stored evidence into a
    feature vector, emits scored evidence-linked bottleneck verdicts,
    and scores the verdict classes against the injector's applied-fault
    record; a clean rerun is the healthy-verdict control.  ``--job ID``
    explains a specific job from the campaign world (exit 2 when the
    id has no stored events).  With ``--check``, exits 1 unless every
    injected fault class is classified correctly (per-class precision
    and recall 1.0), the clean run's sole verdict is ``healthy``, and
    the report JSON is byte-stable — on both the slow and columnar
    lanes.
    """
    import json as _json
    import sys

    from repro.diagnosis.explain import (
        check_explain,
        explain_campaign,
        explain_job,
        score_verdicts,
    )

    fast = not args.no_fast_lane
    columnar = args.columnar
    if columnar and not fast:
        print("repro explain: --columnar requires the fast lane "
              "(drop --no-fast-lane)", file=sys.stderr)
        raise SystemExit(2)

    if args.check:
        ok, lines = check_explain(args.seed)
        for line in lines:
            print(line)
        if not ok:
            raise SystemExit(1)
        print("OK: every fault class classified, clean run healthy, "
              "reports byte-stable on the slow and columnar lanes")
        return

    campaign = explain_campaign(args.seed, fast=fast, columnar=columnar)
    epoch = campaign.epoch
    report = campaign.report
    if args.job is not None and args.job != report.job_id:
        if not list(campaign.world.query_job(args.job)):
            print(f"repro explain: no stored events for job {args.job} "
                  f"(this campaign's job: {report.job_id})",
                  file=sys.stderr)
            raise SystemExit(2)  # unknown identifier = usage error
        report = explain_job(campaign.world, args.job)
    score = score_verdicts(report.verdicts, campaign.applied)

    clean = explain_campaign(args.seed, fast=fast, columnar=columnar,
                             faults=None)

    if args.json:
        payload = {
            "seed": args.seed,
            "fast_lane": fast,
            "columnar": columnar,
            "applied_faults": [
                {"t": f.t - epoch, "kind": f.kind, "detail": f.detail}
                for f in campaign.applied
            ],
            "report": report.to_dict(epoch),
            "score": score.to_dict(),
            "clean_primary": clean.report.primary.cls,
            "clean_healthy": clean.report.healthy,
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("== applied faults ==")
        for fault in campaign.applied:
            print(f"  t={fault.t - epoch:9.3f}s "
                  f"{fault.kind:<16} {fault.detail}")
        print()
        print(report.render_text(epoch))
        print()
        print(score.render_text())
        print(f"\nclean-run control: primary verdict "
              f"{clean.report.primary.cls!r} "
              f"({'OK' if clean.report.healthy else 'NOT HEALTHY'})")


def _cmd_profile(args) -> None:
    """Sim-time profiler: where simulated seconds go in the pipeline.

    Runs a small telemetry-enabled campaign and attributes every stored
    message's end-to-end latency across pipeline components (connector,
    bus, forwarders, store), with the residual reported explicitly so
    the components reconcile exactly against the end-to-end totals.
    """
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.sim import PipelineProfile

    world = World(WorldConfig(
        seed=args.seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=not args.no_fast_lane,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=args.ranks_per_node, iterations=4,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    run_job(world, app, "nfs", connector_config=ConnectorConfig())
    profile = PipelineProfile.from_collector(world.telemetry)
    if args.json:
        import json

        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(profile.render_text())
    if not profile.reconciles():
        print("FAIL: profiled component seconds do not reconcile with "
              "end-to-end totals")
        raise SystemExit(1)


def _cmd_trace(args) -> None:
    """Trace drill-down over the seeded chaos campaign.

    Runs the chaos fault plan (L1 crash + restart, link partition,
    slow store) with every recovery path armed and span-tree retention
    governed by ``--head-rate`` / ``--tail-latency``, then renders the
    selected traces as critical-path waterfalls plus the campaign
    rollup.  ``--trace-id`` drills into one message, ``--drops`` lists
    retained dropped traces, ``--slowest N`` (the default view) shows
    the N slowest stored ones.  With ``--check``, exits nonzero unless
    every retained stored trace's critical path sums *exactly* to its
    end-to-end latency and the rollup reconciles with the sim-time
    profile.
    """
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.faults import DaemonCrash, FaultPlan, LinkPartition, SlowStore
    from repro.ldms.resilience import RetryPolicy
    from repro.sim import PipelineProfile
    from repro.telemetry.spans import TelemetryConfig, critical_path
    from repro.webservices.tracing import render_waterfall

    fast = not args.no_fast_lane
    plan = FaultPlan((
        DaemonCrash("l1", after_messages=args.fail_after, down_for=0.5),
        LinkPartition("nid00001", "head", at=0.2, duration=0.3),
        SlowStore(at=0.1, duration=0.4),
    ))
    policy = TelemetryConfig(
        head_sample_rate=args.head_rate, tail_latency_s=args.tail_latency,
    )
    world = World(WorldConfig(
        seed=args.seed, quiet=True, n_compute_nodes=4, telemetry=policy,
        fast_lane=fast, faults=plan, retry=RetryPolicy(), standby_l1=True,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=args.ranks_per_node, iterations=8,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    run_job(world, app, "nfs",
            connector_config=ConnectorConfig(spill=True, fast_lane=fast),
            inter_job_gap_s=0.0)
    registry = world.trace_registry()
    rollup = registry.rollup()
    profile = PipelineProfile.from_registry(registry)

    if args.trace_id is not None:
        tree = registry.get(args.trace_id)
        if tree is None:
            print(f"trace {args.trace_id!r} not retained "
                  f"({len(registry)} of {registry.offered} kept; "
                  f"raise --head-rate to retain more)")
            raise SystemExit(2)  # unknown identifier = usage error
        selected = [tree]
    elif args.drops:
        selected = registry.drops()
    else:
        selected = registry.slowest(args.slowest)

    if args.json:
        import json

        payload = {
            "seed": args.seed,
            "fast_lane": fast,
            "registry": registry.to_dict(),
            "rollup": rollup.to_dict(),
            "rollup_reconciles_with_profile": rollup.reconciles_with(profile),
            "traces": [
                {
                    **tree.to_dict(),
                    "critical_path": critical_path(tree).to_dict(),
                }
                for tree in selected
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        reg = registry.to_dict()
        print(f"retained {reg['retained']} of {reg['offered']} traces "
              f"(head {reg['head_kept']}, tail {reg['tail_kept']}; "
              f"head_rate={reg['head_sample_rate']})")
        print()
        for tree in selected:
            print(render_waterfall(tree))
            print()
        if not selected:
            print("(no matching traces retained)")
            print()
        print(rollup.render_text())

    if args.check:
        inexact = [
            tree.trace_id
            for tree in registry.trees.values()
            if tree.status == "stored" and not critical_path(tree).exact
        ]
        failed = False
        if inexact:
            print(f"FAIL: critical path != end-to-end latency for "
                  f"{len(inexact)} trace(s): {', '.join(inexact[:5])}")
            failed = True
        if not rollup.reconciles_with(profile):
            print("FAIL: critical-path rollup does not reconcile with the "
                  "sim-time profile")
            failed = True
        if not profile.reconciles():
            print("FAIL: sim-time profile does not reconcile with its own "
                  "end-to-end totals")
            failed = True
        if failed:
            raise SystemExit(1)
        print(f"OK: {rollup.messages} critical paths exact; "
              f"rollup reconciles with profile")


def _cmd_bench(args) -> None:
    """Tracked pipeline benchmark: slow vs fast vs columnar, one process.

    Writes ``benchmarks/BENCH_pipeline.json`` (or ``--out``).  With
    ``--json``, prints the result payload as sorted JSON on stdout
    (diagnostics go to stderr) and writes a dated snapshot under
    ``benchmarks/results/`` instead of touching the tracked file.  With
    ``--check``, compares the measured lane speedups against the
    committed file and exits nonzero on a >25 % regression — the
    ratios, not the walls, so the check is machine-independent — and
    likewise fails any lane whose peak RSS regressed >25 % over the
    committed per-lane peak (skipped where the kernel offers no
    per-lane watermark reset).
    """
    import json
    import sys
    from pathlib import Path

    from repro.experiments.bench import (
        DEFAULT_RESULT_PATH,
        LANES,
        pipeline_benchmark,
        snapshot_path,
    )

    result = pipeline_benchmark(quick=args.quick, seed=args.seed)
    log = sys.stderr if args.json else sys.stdout
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        snap = snapshot_path()
        snap.parent.mkdir(parents=True, exist_ok=True)
        snap.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {snap}", file=log)
    else:
        print(f"campaign: hmmer families={result['campaign']['n_families']} "
              f"rpn=8 nodes=2 seed={args.seed} (quick={args.quick})")
        for lane in LANES:
            r = result[lane]
            print(f"  {lane:<8} wall={r['wall_s']:>7.2f}s "
                  f"events/s={r['events_per_sec']:>8.1f} "
                  f"engine_events={r['engine_events']} "
                  f"peak_rss_kib={r['peak_rss_kib']}")
        spine = result["columnar"].get("spine")
        if spine:
            print(f"  spine: {spine['record_batches']} record batches, "
                  f"mean {spine['mean_batch_rows']:.1f} rows "
                  f"(max {spine['max_batch_rows']}), "
                  f"{spine['ingest_flushes']} ingest flushes, "
                  f"{spine['dearms']} de-arms")
        print(f"  speedup (events/s, fast vs slow): "
              f"{result['speedup_events_per_sec']:.2f}x")
        print(f"  speedup (events/s, columnar vs fast): "
              f"{result['speedup_columnar_vs_fast']:.2f}x "
              f"(vs slow: {result['speedup_columnar_vs_slow']:.2f}x)")
        if result["speedup_vs_fast_baseline"]:
            print(f"  columnar vs recorded fast-lane baseline: "
                  f"{result['speedup_vs_fast_baseline']:.2f}x")
        if result["speedup_vs_seed_baseline"]:
            print(f"  columnar vs pre-optimization baseline: "
                  f"{result['speedup_vs_seed_baseline']:.2f}x")

    committed_path = Path(args.out) if args.out else DEFAULT_RESULT_PATH
    if args.check:
        committed = json.loads(committed_path.read_text())
        failed = False
        for key in ("speedup_events_per_sec", "speedup_columnar_vs_slow"):
            if key not in committed:
                continue
            floor = committed[key] * 0.75
            if result[key] < floor:
                print(f"FAIL: {key} {result[key]:.2f}x regressed below 75% "
                      f"of committed {committed[key]:.2f}x", file=log)
                failed = True
        for lane in LANES:
            mine, theirs = result[lane], committed.get(lane)
            if (
                theirs is None
                or not mine.get("peak_rss_resettable")
                or not theirs.get("peak_rss_resettable")
            ):
                continue
            ceiling = theirs["peak_rss_kib"] * 1.25
            if mine["peak_rss_kib"] > ceiling:
                print(f"FAIL: {lane} lane peak RSS {mine['peak_rss_kib']} KiB "
                      f"regressed >25% over committed "
                      f"{theirs['peak_rss_kib']} KiB", file=log)
                failed = True
        if failed:
            raise SystemExit(1)
        print("OK: lane speedups and peak RSS within 25% of committed",
              file=log)
    elif not args.json:
        committed_path.parent.mkdir(parents=True, exist_ok=True)
        committed_path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {committed_path}")


def _cmd_fleet(args) -> None:
    """Fleet health console: probe scans, scorecards, signal catalog.

    Default mode (``--scan``) scans the demo fleet — two clean clusters
    plus one with an injected L1 crash and slow-store episode — and
    renders the console: the fleet readiness table, each cluster's
    scorecard/probe/incident drill-down, and the signal catalog.
    ``--export`` prints the scan as an OpenMetrics text exposition;
    ``--catalog`` prints just the catalog page.  All three honour
    ``--json`` (byte-stable sorted payloads).  With ``--check``: scan
    mode exits 1 unless every scorecard reconciles exactly and the
    chaos cluster's faults show up in the matching components; catalog
    and export modes exit 1 if any emitted signal is missing from the
    catalog.  Mode flags are mutually exclusive (usage error, exit 2).
    """
    import json as _json
    import sys

    modes = [m for m in ("scan", "export", "catalog") if getattr(args, m)]
    if len(modes) > 1:
        print(f"repro fleet: --{modes[0]} and --{modes[1]} are mutually "
              f"exclusive", file=sys.stderr)
        raise SystemExit(2)
    mode = modes[0] if modes else "scan"

    from repro.diagnosis.signals import default_catalog

    catalog = default_catalog()

    if mode == "catalog":
        if args.json:
            print(_json.dumps(catalog.to_dict(), indent=2, sort_keys=True))
        else:
            from repro.webservices.console import FleetConsole
            from repro.webservices.grafana import render_ascii

            # No scan needed for the catalog page: an empty report.
            console = FleetConsole((), catalog)
            for panel in console.catalog_panels():
                print(render_ascii(panel, width=100))
        if args.check and not catalog.complete():
            print("FAIL: signals missing from the catalog: "
                  + ", ".join(catalog.missing()))
            raise SystemExit(1)
        if args.check:
            print(f"OK: catalog complete ({len(catalog)} signals)")
        return

    from repro.fleet import scan_fleet

    fast = not args.no_fast_lane
    report = scan_fleet(fast_lane=fast)

    if mode == "export":
        from repro.telemetry import render_openmetrics

        text = render_openmetrics(report, catalog)
        print(text, end="")
        if args.check:
            failed = False
            if "(uncatalogued)" in text:
                print("FAIL: export contains uncatalogued families",
                      file=sys.stderr)
                failed = True
            if not catalog.complete():
                print("FAIL: signals missing from the catalog: "
                      + ", ".join(catalog.missing()), file=sys.stderr)
                failed = True
            if failed:
                raise SystemExit(1)
            print("OK: every exported family catalogued", file=sys.stderr)
        return

    # -- scan (default) ------------------------------------------------
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        from repro.webservices.console import FleetConsole

        print(FleetConsole(report, catalog).render_text())

    if args.check:
        failed = False
        bad = [c.name for c in report if not c.score.reconciles()]
        if bad:
            print("FAIL: scorecard does not reconcile "
                  "(Σ deductions != 100 - score) for: " + ", ".join(bad))
            failed = True
        # The chaos cluster's injected faults must register in the
        # matching scorecard components.
        for cluster in report:
            if cluster.spec.faults is None:
                continue
            if cluster.score.component("probes").deduction == 0:
                print(f"FAIL: {cluster.name}: injected daemon crash left "
                      f"the probes component untouched")
                failed = True
            if cluster.score.component("store").deduction == 0:
                print(f"FAIL: {cluster.name}: injected slow store left "
                      f"the store component untouched")
                failed = True
            if cluster.score.ready:
                print(f"FAIL: {cluster.name}: chaos cluster still "
                      f"reports ready")
                failed = True
        if failed:
            raise SystemExit(1)
        print(f"OK: {len(report)} scorecards reconcile exactly; "
              f"chaos faults deducted via matching components")


def _cmd_forensics(args) -> None:
    """Black-box flight recorder: capture, timelines, bundle diffs.

    Default mode (``--capture``) runs the chaos campaign with the
    flight recorder armed and prints the frozen forensic bundles, ring
    ledgers and fault-class evidence matches.  ``--show ID``
    reconstructs one bundle's merged cross-layer timeline; ``--diff A
    B`` compares two bundles (the clean control run freezes a
    whole-run snapshot under the id ``clean-0``) and reports which
    streams diverged first.  All modes honour ``--json`` (byte-stable
    sorted payloads).  With ``--check``, capture mode reruns the
    campaign on the slow and columnar lanes and exits 1 unless every
    injected fault class produced at least one bundle whose evidence
    names a detecting signal, every ring reconciles ``captured ==
    retained + evicted``, and bundle JSON is byte-stable across
    repeated same-seed runs.
    """
    import json as _json
    import sys

    from repro.diagnosis.forensics import (
        capture_campaign,
        check_forensics,
        diff_bundles,
        diff_panel,
        match_bundles,
        timeline_panel,
    )

    modes = [m for m in ("capture", "show", "diff") if getattr(args, m)]
    if len(modes) > 1:
        print(f"repro forensics: --{modes[0]} and --{modes[1]} are "
              f"mutually exclusive", file=sys.stderr)
        raise SystemExit(2)
    mode = modes[0] if modes else "capture"

    fast = not args.no_fast_lane
    columnar = args.columnar
    if columnar and not fast:
        print("repro forensics: --columnar requires the fast lane "
              "(drop --no-fast-lane)", file=sys.stderr)
        raise SystemExit(2)

    if mode == "show":
        cap = capture_campaign(args.seed, fast=fast, columnar=columnar,
                               fail_after=args.fail_after)
        bundle = cap.find(args.show)
        if bundle is None:
            frozen = ", ".join(b.bundle_id for b in cap.bundles) or "(none)"
            print(f"repro forensics: no bundle {args.show!r} "
                  f"(frozen this run: {frozen})", file=sys.stderr)
            raise SystemExit(2)  # unknown identifier = usage error
        if args.json:
            print(_json.dumps(bundle.to_dict(), indent=2, sort_keys=True))
        else:
            from repro.webservices.grafana import render_ascii

            print(render_ascii(timeline_panel(bundle), width=110))
            evidence = bundle.evidence
            print("evidence links:")
            print("  rules:     " + (", ".join(evidence["rules"]) or "-"))
            print("  signals:   " + (", ".join(evidence["signals"]) or "-"))
            print("  incidents: " + (", ".join(
                str(i) for i in evidence["incidents"]) or "-"))
            print(f"  traces:    {evidence['trace_id_count']} distinct "
                  f"id(s), {len(evidence['trace_ids'])} listed")
        return

    if mode == "diff":
        a_id, b_id = args.diff
        faulted = capture_campaign(args.seed, fast=fast, columnar=columnar,
                                   fail_after=args.fail_after)
        clean = capture_campaign(args.seed, fast=fast, columnar=columnar,
                                 faults=None, snapshot_id="clean-0")

        def find(bundle_id):
            found = faulted.find(bundle_id)
            return found if found is not None else clean.find(bundle_id)

        a, b = find(a_id), find(b_id)
        if a is None or b is None:
            missing = [i for i, bb in ((a_id, a), (b_id, b)) if bb is None]
            known = [x.bundle_id for x in (*faulted.bundles, *clean.bundles)]
            print(f"repro forensics: unknown bundle(s) "
                  f"{', '.join(missing)} (known: {', '.join(known)})",
                  file=sys.stderr)
            raise SystemExit(2)
        diff = diff_bundles(a, b)
        if args.json:
            print(_json.dumps(diff.to_dict(), indent=2, sort_keys=True))
        else:
            from repro.webservices.grafana import render_ascii

            print(render_ascii(diff_panel(diff), width=110))
            first = diff.first
            if first is None:
                print("no divergence inside the window overlap")
            else:
                print(f"first divergence: stream {first.stream!r} at "
                      f"t={first.t:.3f}s")
        return

    # -- capture (default) ---------------------------------------------
    cap = capture_campaign(args.seed, fast=fast, columnar=columnar,
                           fail_after=args.fail_after)
    recorder = cap.recorder
    epoch = cap.epoch
    matches = match_bundles(cap.applied, cap.bundles, epoch)

    if args.json:
        payload = {
            "seed": args.seed,
            "fast_lane": fast,
            "columnar": columnar,
            "applied_faults": [
                {"t": f.t - epoch, "kind": f.kind, "detail": f.detail}
                for f in cap.applied
            ],
            "bundles": [b.to_dict() for b in cap.bundles],
            "recorder": recorder.stats(),
            "reconciles": recorder.reconciles(),
            "matches": {
                cls: match.to_dict() for cls, match in sorted(matches.items())
            },
            "archive_bytes": len(recorder.log.to_bytes()),
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("== applied faults ==")
        for fault in cap.applied:
            print(f"  t={fault.t - epoch:9.3f}s "
                  f"{fault.kind:<16} {fault.detail}")
        print("\n== frozen bundles ==")
        if not cap.bundles:
            print("  (none)")
        for bundle in cap.bundles:
            evidence = bundle.evidence
            print(f"  {bundle.bundle_id:<6} "
                  f"{bundle.trigger_kind}({bundle.trigger_detail}) "
                  f"t={bundle.t_trigger:7.3f}s "
                  f"window [{bundle.window[0]:.3f}, {bundle.window[1]:.3f}] "
                  f"{bundle.n_records():>4} records, "
                  f"{len(evidence['rules'])} rule(s), "
                  f"{len(evidence['signals'])} signal(s), "
                  f"{evidence['trace_id_count']} trace(s)")
        print("\n== rings (captured == retained + evicted) ==")
        print(f"  {'stream':<10} {'captured':>9} {'evicted':>8} "
              f"{'retained':>9}  ok")
        for name, ring in recorder.rings.items():
            print(f"  {name:<10} {ring.captured:>9} {ring.evicted:>8} "
                  f"{ring.retained:>9}  "
                  f"{'yes' if ring.reconciles() else 'NO'}")
        print("\n== fault-class evidence matches ==")
        for cls, match in sorted(matches.items()):
            if match.bundles:
                listing = ", ".join(
                    f"{bid} [{', '.join(signals)}]"
                    for bid, signals in sorted(match.bundles.items())
                )
            else:
                listing = "UNMATCHED"
            print(f"  {cls:<16} {listing}")
        print(f"\nrecorder: {recorder.bundles_frozen} bundle(s) frozen, "
              f"{recorder.bundle_bytes} archive byte(s), "
              f"{recorder.triggers_dropped} trigger(s) dropped")

    if args.check:
        ok, lines = check_forensics(args.seed)
        for line in lines:
            print(line)
        if not ok:
            raise SystemExit(1)
        print("OK: every fault class matched a bundle naming its signal "
              "on both lanes; rings reconcile; bundles byte-stable")


def _cmd_report(args) -> None:
    from pathlib import Path

    from repro.experiments.report import generate_report

    results_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    print(generate_report(results_dir))


_COMMANDS = {
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "diagnose": _cmd_diagnose,
    "explain": _cmd_explain,
    "fleet": _cmd_fleet,
    "forensics": _cmd_forensics,
    "profile": _cmd_profile,
    "report": _cmd_report,
    "store": _cmd_store,
    "trace": _cmd_trace,
    "table2a": _cmd_table2a,
    "table2b": _cmd_table2b,
    "table2c": _cmd_table2c,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "ablations": _cmd_ablations,
    "telemetry": _cmd_telemetry,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli`` / ``repro-experiments``."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the paper's tables and figures."
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument("--ranks-per-node", type=int, default=4)
    parser.add_argument("--families", type=int, default=200,
                        help="HMMER Pfam families (scaled input)")
    parser.add_argument("--particles", type=int, default=500_000,
                        help="HACC particles per rank (scaled input)")
    parser.add_argument("--queue-depth", type=int, default=65536,
                        help="telemetry: forward-outbox depth (small = overflow)")
    parser.add_argument("--inject-failure", action="store_true",
                        help="telemetry: crash the L1 aggregator mid-run")
    parser.add_argument("--fail-after", type=int, default=50,
                        help="telemetry/chaos: messages seen at L1 before "
                             "the crash")
    parser.add_argument("--seeds", type=int, default=1,
                        help="chaos: sweep this many consecutive seeds "
                             "starting at --seed in one process")
    parser.add_argument("--topology", action="store_true",
                        help="store: print the shard/replica layout of a "
                             "clean replicated run")
    parser.add_argument("--drill", action="store_true",
                        help="store: run the crash/recovery drill against "
                             "the replicated store (the default mode)")
    parser.add_argument("--no-repair", action="store_true",
                        help="store: disable anti-entropy repair (negative "
                             "control; --check then fails)")
    parser.add_argument("--no-fast-lane", action="store_true",
                        help="chaos/diagnose/explain/profile/store: "
                             "per-message reference path instead of the "
                             "batched fast lane")
    parser.add_argument("--columnar", action="store_true",
                        help="chaos/explain: arm the columnar record-batch "
                             "lane (the express spine stands down under "
                             "faults; results are bit-identical to the fast "
                             "lane)")
    parser.add_argument("--json", action="store_true",
                        help="telemetry/chaos/diagnose/profile: machine-"
                             "readable JSON instead of the text report")
    parser.add_argument("--quick", action="store_true",
                        help="bench: reduced campaign for CI smoke runs")
    parser.add_argument("--job", type=int, default=None,
                        help="explain: job id to explain (default: the "
                             "campaign's own job)")
    parser.add_argument("--trace-id", default=None,
                        help="trace: drill into one retained trace id")
    parser.add_argument("--slowest", type=int, default=5,
                        help="trace: show the N slowest stored traces")
    parser.add_argument("--drops", action="store_true",
                        help="trace: show retained dropped traces instead")
    parser.add_argument("--scan", action="store_true",
                        help="fleet: scan the demo fleet and render the "
                             "console (the default mode)")
    parser.add_argument("--export", action="store_true",
                        help="fleet: print the scan as an OpenMetrics text "
                             "exposition")
    parser.add_argument("--catalog", action="store_true",
                        help="fleet: print the signal catalog page only")
    parser.add_argument("--capture", action="store_true",
                        help="forensics: run the chaos capture campaign and "
                             "print the frozen bundles (the default mode)")
    parser.add_argument("--show", default=None, metavar="BUNDLE",
                        help="forensics: reconstruct one frozen bundle's "
                             "cross-layer timeline by id (e.g. fb-0)")
    parser.add_argument("--diff", nargs=2, default=None, metavar=("A", "B"),
                        help="forensics: diff two bundles — faulted-run ids "
                             "plus the clean-run snapshot 'clean-0'")
    parser.add_argument("--head-rate", type=float, default=1.0,
                        help="trace: deterministic head-sampling rate "
                             "(1.0 = keep every trace)")
    parser.add_argument("--tail-latency", type=float, default=None,
                        help="trace: always retain stored traces at least "
                             "this slow (seconds)")
    parser.add_argument("--check", action="store_true",
                        help="telemetry/chaos: exit nonzero when loss "
                             "reconciliation fails; diagnose: exit nonzero "
                             "when a fault class goes undetected or the "
                             "clean run false-positives; trace: exit nonzero "
                             "unless every retained critical path sums "
                             "exactly to its end-to-end latency; bench: exit "
                             "nonzero on a >25%% speedup regression vs the "
                             "committed result; fleet: exit nonzero unless "
                             "every scorecard reconciles exactly (scan) or "
                             "the signal catalog is complete "
                             "(catalog/export); store: exit nonzero on any "
                             "lost or under-replicated object; forensics: "
                             "exit nonzero unless every fault class matches "
                             "a bundle, rings reconcile, and bundles are "
                             "byte-stable on the slow and columnar lanes; "
                             "explain: exit nonzero unless every injected "
                             "fault class is classified correctly and the "
                             "clean run is verdict-healthy on both lanes")
    parser.add_argument("--out", default=None,
                        help="bench: result path (default "
                             "benchmarks/BENCH_pipeline.json)")
    args = parser.parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
