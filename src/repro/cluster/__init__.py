"""Simulated HPC cluster substrate.

Models the paper's evaluation platform — the Voltrino Cray XC40 at
Sandia (24 diskless compute nodes, dual 16-core Haswell, Aries
DragonFly interconnect) plus the analysis cluster ("Shirley") that hosts
the DSOS database and the Grafana web services — as named nodes joined
by a latency/bandwidth network, with a small Slurm-like job scheduler
allocating nodes and job ids.
"""

from repro.cluster.network import Link, Network
from repro.cluster.node import Node, NodeSpec
from repro.cluster.cluster import Cluster, ClusterSpec, VOLTRINO
from repro.cluster.job import Job, JobScheduler, AllocationError

__all__ = [
    "AllocationError",
    "Cluster",
    "ClusterSpec",
    "Job",
    "JobScheduler",
    "Link",
    "Network",
    "Node",
    "NodeSpec",
    "VOLTRINO",
]
