"""Cluster assembly.

:class:`Cluster` wires nodes and network into the topology of the
paper's environment section:

* N diskless compute nodes ``nid00001..nidN`` (samplers run here),
* a head node (first-level LDMS aggregator),
* a remote analysis node ``shirley`` (second-level aggregator, DSOS
  daemons and the Grafana web services),

with Aries-class links among compute/head nodes and a slower WAN-ish
uplink from the head node to the analysis cluster.  File systems are
attached by name ("nfs", "lustre") so experiments can select the target
FS per run exactly like the paper's campaign does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import JobScheduler
from repro.cluster.network import Network
from repro.cluster.node import Node, NodeSpec
from repro.sim import Environment, RngRegistry

__all__ = ["Cluster", "ClusterSpec", "VOLTRINO"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape and link parameters of a cluster build."""

    name: str = "voltrino"
    n_compute_nodes: int = 24
    node: NodeSpec = NodeSpec()
    #: Aries-class compute fabric.
    fabric_latency_s: float = 1.5e-6
    fabric_bandwidth_bps: float = 10e9
    #: Head-node → analysis-cluster uplink (crosses security domains).
    uplink_latency_s: float = 250e-6
    uplink_bandwidth_bps: float = 1e9

    def __post_init__(self) -> None:
        if self.n_compute_nodes < 1:
            raise ValueError("need at least one compute node")


#: The paper's evaluation system: 24 diskless XC40 nodes.
VOLTRINO = ClusterSpec()


class Cluster:
    """A built cluster: nodes, network, scheduler and file systems."""

    HEAD_NAME = "head"
    ANALYSIS_NAME = "shirley"

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        spec: ClusterSpec = VOLTRINO,
    ):
        self.env = env
        self.rng = rng
        self.spec = spec

        self.compute_nodes: list[Node] = [
            Node(env, f"nid{i:05d}", spec.node)
            for i in range(1, spec.n_compute_nodes + 1)
        ]
        self.head_node = Node(env, self.HEAD_NAME, spec.node)
        self.analysis_node = Node(env, self.ANALYSIS_NAME, spec.node)

        self.network = Network(env)
        for node in self.all_nodes:
            self.network.add_node(node.name)
        # Star fabric through the head node approximates the low-diameter
        # DragonFly at message scales the experiments use.
        for node in self.compute_nodes:
            self.network.add_link(
                node.name,
                self.HEAD_NAME,
                latency_s=spec.fabric_latency_s,
                bandwidth_bps=spec.fabric_bandwidth_bps,
                channels=4,
            )
        self.network.add_link(
            self.HEAD_NAME,
            self.ANALYSIS_NAME,
            latency_s=spec.uplink_latency_s,
            bandwidth_bps=spec.uplink_bandwidth_bps,
            channels=2,
        )

        self.scheduler = JobScheduler(self.compute_nodes)
        self._filesystems: dict[str, object] = {}

    # -- nodes ----------------------------------------------------------

    @property
    def all_nodes(self) -> list[Node]:
        return [*self.compute_nodes, self.head_node, self.analysis_node]

    def node(self, name: str) -> Node:
        """Look up any node by name."""
        for node in self.all_nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    # -- file systems -----------------------------------------------------

    def attach_filesystem(self, name: str, fs: object) -> None:
        """Mount a file system under ``name`` ("nfs", "lustre")."""
        if name in self._filesystems:
            raise ValueError(f"file system {name!r} already attached")
        self._filesystems[name] = fs

    def filesystem(self, name: str) -> object:
        try:
            return self._filesystems[name]
        except KeyError:
            raise KeyError(
                f"no file system {name!r}; attached: {sorted(self._filesystems)}"
            ) from None

    @property
    def filesystems(self) -> dict[str, object]:
        return dict(self._filesystems)
