"""Jobs and a minimal Slurm-like allocator.

The paper identifies every run by its ``job_id`` (a first-class metric
in the connector's JSON messages and a component of every DSOS joint
index).  :class:`JobScheduler` hands out monotonically increasing job
ids and exclusive node allocations, mirroring how the 110 submissions of
the evaluation were laid out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import Node

__all__ = ["Job", "JobScheduler", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when a job asks for more nodes than are free."""


@dataclass
class Job:
    """A scheduled application run."""

    job_id: int
    name: str
    nodes: list[Node]
    uid: int
    start_time: float | None = None
    end_time: float | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def runtime(self) -> float:
        """Elapsed seconds; only valid after the job finished."""
        if self.start_time is None or self.end_time is None:
            raise RuntimeError(f"job {self.job_id} has not finished")
        return self.end_time - self.start_time

    @property
    def finished(self) -> bool:
        return self.end_time is not None


class JobScheduler:
    """Exclusive-node allocator with sequential job ids."""

    def __init__(self, nodes: list[Node], first_job_id: int = 259900):
        self._all_nodes = list(nodes)
        self._free = list(nodes)
        self._next_id = first_job_id
        self._running: dict[int, Job] = {}
        #: Completed jobs, in completion order.
        self.history: list[Job] = []

    @property
    def free_nodes(self) -> int:
        return len(self._free)

    def submit(self, name: str, n_nodes: int, uid: int = 99066) -> Job:
        """Allocate ``n_nodes`` and return the new :class:`Job`."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if n_nodes > len(self._free):
            raise AllocationError(
                f"job {name!r} wants {n_nodes} nodes, only {len(self._free)} free"
            )
        nodes, self._free = self._free[:n_nodes], self._free[n_nodes:]
        job = Job(job_id=self._next_id, name=name, nodes=nodes, uid=uid)
        self._next_id += 1
        self._running[job.job_id] = job
        return job

    def start(self, job: Job, now: float) -> None:
        """Record the job's start time."""
        if job.job_id not in self._running:
            raise RuntimeError(f"job {job.job_id} is not scheduled")
        job.start_time = now

    def complete(self, job: Job, now: float) -> None:
        """Mark the job finished and release its nodes."""
        if job.job_id not in self._running:
            raise RuntimeError(f"job {job.job_id} is not running")
        if job.start_time is None:
            raise RuntimeError(f"job {job.job_id} was never started")
        job.end_time = now
        del self._running[job.job_id]
        self._free.extend(job.nodes)
        self.history.append(job)
