"""Interconnect model.

The Aries DragonFly network of the XC40 is modelled at the fidelity the
experiments need: a graph of :class:`Link` objects (latency + bandwidth,
serialized per link), over which point-to-point transfers pick the
shortest path and charge propagation latency per hop plus serialization
on every traversed link.  Intra-node transfers are free.

The topology used by :class:`~repro.cluster.cluster.Cluster` is a
two-level star (compute nodes → head node → remote analysis cluster),
which is exactly the multi-hop LDMS aggregation route of the paper's
environment section: samplers on compute nodes, one aggregator on the
head node, a second-level aggregator on Shirley.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.sim import Environment, Event, Resource

__all__ = ["Link", "Network", "TransferResult"]


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one point-to-point transfer."""

    src: str
    dst: str
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Link:
    """A physical link: propagation latency plus serialized bandwidth."""

    #: Express-spine back-pointer (repro.core.batch): while an armed
    #: spine virtualizes transfers over this link, any state change
    #: (partition, degrade) must de-arm it first so in-flight virtual
    #: batches complete against the timing they were launched with.
    _express_spine = None

    def __init__(
        self,
        env: Environment,
        latency_s: float,
        bandwidth_bps: float,
        channels: int = 1,
    ):
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._server = Resource(env, capacity=channels)
        # Transfers currently in their propagation-latency phase: they
        # hold no channel yet, but their serialization request is
        # already in flight.  transfer_coalesced() must see them, or it
        # would grab a channel ahead of an earlier arrival.
        self._approaching = 0
        # Fault state (repro.faults): a partitioned link admits no new
        # traversals (transfers already past their entry — mid-latency
        # or serializing — complete; the partition cut them "behind the
        # packet").  Degradation multiplies serialization time.
        self._up = True
        self._up_waiters: Event | None = None
        self._degrade = 1.0

    @property
    def up(self) -> bool:
        """False while the link is partitioned (see :meth:`set_up`)."""
        return self._up

    @property
    def degrade_factor(self) -> float:
        return self._degrade

    def set_up(self, up: bool) -> None:
        """Partition (``False``) or heal (``True``) the link.

        Healing wakes every transfer waiting at the link's entry, in
        FIFO order (they all resume on one event, and the engine
        processes same-time resumes in scheduling order).
        """
        if up == self._up:
            return
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        self._up = up
        if up and self._up_waiters is not None:
            waiters, self._up_waiters = self._up_waiters, None
            waiters.succeed()

    def set_degrade(self, factor: float) -> None:
        """Multiply serialization times by ``factor`` (1.0 = healthy)."""
        if factor <= 0:
            raise ValueError("degrade factor must be positive")
        if self._express_spine is not None and factor != self._degrade:
            self._express_spine.on_mutation()
        self._degrade = factor

    def wait_up(self) -> Event:
        """An event that fires when the link is (or comes back) up."""
        if self._up:
            done = Event(self.env)
            done.succeed()
            return done
        if self._up_waiters is None:
            self._up_waiters = Event(self.env)
        return self._up_waiters

    def transmit_time(self, nbytes: int) -> float:
        """Serialization time for ``nbytes`` on this link."""
        return nbytes * self._degrade / self.bandwidth_bps

    def transmit(self, nbytes: int):
        """Generator: occupy one channel for the serialization time."""
        yield from self._server.use(self.transmit_time(nbytes))

    def transmit_scaled(self, nbytes: int, factor: float):
        """Like :meth:`transmit`, with a congestion multiplier."""
        yield from self._server.use(self.transmit_time(nbytes) * factor)


class Network:
    """A graph of named endpoints joined by :class:`Link` objects."""

    #: Express-spine back-pointer (see :class:`Link`).
    _express_spine = None

    def __init__(self, env: Environment):
        self.env = env
        self.graph = nx.Graph()
        # Optional shared-fabric congestion: a LoadProcess-like object
        # whose factor(t) multiplies serialization times ("network
        # congestion" is one of the paper's named variability sources).
        self._congestion = None
        # (src, dst) -> [Link, ...]: routes are static between topology
        # edits, and shortest-path per transfer dominated stream-path
        # profiles; invalidated whenever the graph changes.
        self._route_cache: dict[tuple[str, str], list[Link]] = {}

    def set_congestion(self, load_process) -> None:
        """Attach a time-varying congestion factor to every link."""
        if not hasattr(load_process, "factor"):
            raise TypeError("congestion source needs a factor(t) method")
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        self._congestion = load_process

    def congestion_factor(self) -> float:
        return (
            self._congestion.factor(self.env.now)
            if self._congestion is not None
            else 1.0
        )

    def add_node(self, name: str) -> None:
        self.graph.add_node(name)
        self._route_cache.clear()

    def add_link(
        self,
        a: str,
        b: str,
        latency_s: float = 1.5e-6,
        bandwidth_bps: float = 10e9,
        channels: int = 1,
    ) -> Link:
        """Join endpoints ``a`` and ``b`` with a new link."""
        link = Link(self.env, latency_s, bandwidth_bps, channels)
        self.graph.add_edge(a, b, link=link)
        self._route_cache.clear()
        return link

    # -- fault control (repro.faults) ----------------------------------

    def link_between(self, a: str, b: str) -> Link:
        """The direct link joining ``a`` and ``b`` (a single edge)."""
        try:
            return self.graph.edges[a, b]["link"]
        except KeyError as exc:
            raise ValueError(f"no direct link {a!r} -- {b!r}") from exc

    def partition(self, a: str, b: str) -> None:
        """Take the ``a``--``b`` link down: new traversals block at its
        entry until :meth:`heal`.  Routes are unchanged — a partition is
        an outage, not a topology edit."""
        self.link_between(a, b).set_up(False)

    def heal(self, a: str, b: str) -> None:
        """Bring the ``a``--``b`` link back up, waking blocked transfers."""
        self.link_between(a, b).set_up(True)

    def degrade(self, a: str, b: str, factor: float) -> None:
        """Multiply the ``a``--``b`` link's serialization times."""
        self.link_between(a, b).set_degrade(factor)

    def restore(self, a: str, b: str) -> None:
        """Undo :meth:`degrade` on the ``a``--``b`` link."""
        self.link_between(a, b).set_degrade(1.0)

    def path(self, src: str, dst: str) -> list[str]:
        """Node sequence of the route used for ``src`` → ``dst``."""
        try:
            return nx.shortest_path(self.graph, src, dst)
        except (nx.NodeNotFound, nx.NetworkXNoPath) as exc:
            raise ValueError(f"no route {src!r} -> {dst!r}") from exc

    def links_on_path(self, src: str, dst: str) -> list[Link]:
        links = self._route_cache.get((src, dst))
        if links is None:
            nodes = self.path(src, dst)
            links = [
                self.graph.edges[u, v]["link"] for u, v in zip(nodes, nodes[1:])
            ]
            self._route_cache[(src, dst)] = links
        return links

    def one_way_latency(self, src: str, dst: str) -> float:
        """Pure propagation latency of the route (no queueing)."""
        return sum(l.latency_s for l in self.links_on_path(src, dst))

    def transfer(self, src: str, dst: str, nbytes: int):
        """Generator: move ``nbytes`` from ``src`` to ``dst``.

        Charges propagation latency per hop and serialization (with
        contention) per link, store-and-forward.  Returns a
        :class:`TransferResult`.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        start = self.env.now
        if src != dst:
            factor = self.congestion_factor()
            for link in self.links_on_path(src, dst):
                while not link._up:
                    yield link.wait_up()
                link._approaching += 1
                try:
                    yield self.env.timeout(link.latency_s * factor)
                finally:
                    link._approaching -= 1
                if nbytes:
                    yield from link.transmit_scaled(nbytes, factor)
        return TransferResult(src, dst, nbytes, start, self.env.now)

    def transfer_coalesced(self, src: str, dst: str, nbytes: int):
        """Generator: :meth:`transfer` in one engine event per idle link.

        When a link has no channel holder, no waiter, and no transfer in
        its latency phase, the propagation + serialization of this hop
        is a single fused ``timeout_at`` (same float operand order as
        the two-step path, so completion times are bit-identical) while
        the channel is held synchronously for the whole window.

        Why holding through the latency window is safe: every user of a
        link reaches its serialization request only *after* paying that
        link's propagation latency, which is the same constant for all
        of them.  A competitor entering the link later than us would
        therefore also request later than our two-step self would have —
        it finds the channel busy exactly when it would have found it
        busy (or queued behind us) in the two-step schedule.  Transfers
        already past their entry but still mid-latency are the one case
        with an *earlier* claim than ours; ``Link._approaching`` makes
        them visible and falls this hop back to the two-step path.

        Ties at identical float times may resolve in a different event
        order than :meth:`transfer` (the fused path schedules fewer
        events); with continuous service times such ties do not occur.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        env = self.env
        start = env.now
        if src != dst:
            factor = self.congestion_factor()
            for link in self.links_on_path(src, dst):
                while not link._up:
                    yield link.wait_up()
                server = link._server
                if (
                    nbytes
                    and not link._approaching
                    and not server._holders
                    and not server._waiting
                ):
                    req = server.acquire()
                    try:
                        yield env.timeout_at(
                            (env.now + link.latency_s * factor)
                            + link.transmit_time(nbytes) * factor
                        )
                    finally:
                        server.release(req)
                else:
                    link._approaching += 1
                    try:
                        yield env.timeout(link.latency_s * factor)
                    finally:
                        link._approaching -= 1
                    if nbytes:
                        yield from link.transmit_scaled(nbytes, factor)
        return TransferResult(src, dst, nbytes, start, env.now)
