"""Compute / service nodes.

A :class:`Node` is a named machine with cores and memory.  Cores are a
:class:`~repro.sim.resources.Resource` so CPU-bound work (e.g. the
connector's JSON formatting) can contend when more runnable tasks exist
than cores; memory is tracked as a byte budget used by stream buffering.
Daemons (ldmsd, dsosd, web services) register themselves on the node so
experiments can introspect what runs where.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Container, Environment, Resource

__all__ = ["Node", "NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node's hardware."""

    cores: int = 32
    threads_per_core: int = 2
    mem_bytes: int = 64 * 2**30  # 64 GiB DDR3, per the paper
    ghz: float = 2.3

    def __post_init__(self) -> None:
        if self.cores < 1 or self.threads_per_core < 1:
            raise ValueError("cores and threads_per_core must be >= 1")
        if self.mem_bytes <= 0:
            raise ValueError("mem_bytes must be positive")


class Node:
    """One machine in the cluster."""

    def __init__(self, env: Environment, name: str, spec: NodeSpec | None = None):
        if not name:
            raise ValueError("node name must be non-empty")
        self.env = env
        self.name = name
        self.spec = spec or NodeSpec()
        #: Hardware threads as schedulable slots.
        self.cpus = Resource(env, capacity=self.spec.cores * self.spec.threads_per_core)
        #: Memory budget (bytes); stream buffers draw from this.
        self.memory = Container(env, capacity=self.spec.mem_bytes, init=0.0)
        #: Daemons registered on this node, keyed by daemon name.
        self.daemons: dict[str, object] = {}

    def register_daemon(self, name: str, daemon: object) -> None:
        """Attach a daemon (ldmsd, dsosd, ...) under a unique name."""
        if name in self.daemons:
            raise ValueError(f"daemon {name!r} already registered on {self.name}")
        self.daemons[name] = daemon

    def daemon(self, name: str) -> object:
        """Look up a registered daemon by name."""
        try:
            return self.daemons[name]
        except KeyError:
            raise KeyError(f"no daemon {name!r} on node {self.name}") from None

    @property
    def mem_in_use(self) -> float:
        """Bytes currently drawn from the memory budget."""
        return self.memory.level

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.name!r}, cores={self.spec.cores})"
