"""The Darshan-LDMS Connector — the paper's primary contribution.

The connector registers as a run-time event listener on the (modified,
absolute-timestamp-capable) Darshan runtime.  For every I/O event it

1. assembles the Figure-3 message (Table I metrics; ``MET`` for opens
   carrying static metadata, ``MOD`` for everything else to keep
   messages small),
2. formats it as JSON — charging the calling rank the integer→string
   conversion cost that dominates the paper's overhead table,
3. publishes it to the node's ldmsd on the connector's stream tag,
   whence the aggregation fabric pushes it to DSOS.

Also implemented: the ``format="none"`` ablation (Streams API call with
no sprintf — the paper measured 0.37 % overhead) and the n-th-event
sampling the paper proposes as future work.
"""

from repro.core.metrics import (
    MESSAGE_FIELDS,
    METRIC_DEFINITIONS,
    SEG_FIELDS,
)
from repro.core.json_format import FormatCostModel, MessageBuilder
from repro.core.sampling import EventSampler
from repro.core.connector import ConnectorConfig, ConnectorStats, DarshanLdmsConnector
from repro.core.overhead import (
    OverheadResult,
    mean_confidence_interval,
    percent_overhead,
)

__all__ = [
    "ConnectorConfig",
    "ConnectorStats",
    "DarshanLdmsConnector",
    "EventSampler",
    "FormatCostModel",
    "MESSAGE_FIELDS",
    "METRIC_DEFINITIONS",
    "MessageBuilder",
    "OverheadResult",
    "SEG_FIELDS",
    "mean_confidence_interval",
    "percent_overhead",
]
