"""Columnar record batches and the express spine.

The unit of work through the monitoring pipeline becomes a *batch of
events*, not an event.  Three cooperating pieces:

* :class:`RecordBatch` — the columnar layout (parallel arrays per
  column: trace ids, payload sizes, compiled shapes, slot values).  No
  list-of-dicts anywhere: a row is an index, a column is an array.
* :class:`ColumnarMessage` — a lazy, StreamMessage-duck-typed view of
  one row, for the per-message fallback path: the payload join and the
  parsed dict materialize only if something downstream actually reads
  them (chaos paths, spill buffers, CSV stores).
* :class:`ColumnarSpine` — the express lane: when an armed guard proves
  nothing can observe the difference, the publish → forward → ingest
  pipeline for connector traffic is *virtualized*.  Each hop's timing
  recurrence (outbox drain, fused link transfer, deferred same-instant
  kick) is computed arithmetically on a small private heap instead of
  through engine events, so ``engine_events`` scales with application
  I/O, not with monitoring messages.  Every externally observable
  artifact — bus/forward counters (the *real* stats objects are
  mutated), DSOS rows and their round-robin placement, ingest-journal
  WAL entries, telemetry hops with exact ``t_in``/``t_out``, gauges,
  histograms — is produced identically, at the identical simulated
  instants, with the identical float arithmetic as the event-driven
  fast lane.

Guard discipline
----------------

The spine arms only when the world is *inert*: no fault plan, no retry
policy, no standby aggregator, no diagnosis engine, no probe scanner,
no CSV store, single-link routes, fast-lane daemons and store.
Telemetry may be armed — the spine emits exact hop records.  Any
mutation that could break the mirror (a daemon failing or turning
flaky, a link partition/degrade, congestion attach, a new subscriber
on a spine bus, samplers starting, a foreign publish on the spine's
tag, a new ingest observer) *de-arms first*: queued virtual traffic
completes delivery to the pre-mutation topology, then the pipeline
returns to the per-message path.  De-arm is one-way for the mutating
scenario and slightly generous — rows a real crash would have purged
from an outbox instead finish delivery — which is why every
guard-breaking scenario falls back *before* the mutation applies.

Ties at identical float times may resolve in a different order than
the event-driven path (the spine schedules no events to tie against);
with continuous service times such ties do not occur — the same caveat
:meth:`~repro.cluster.network.Network.transfer_coalesced` documents.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.telemetry import trace as _trace
from repro.telemetry.collector import collector_for

__all__ = [
    "RecordBatch",
    "ColumnarMessage",
    "ColumnarSpine",
    "SpineStats",
    "spine_for",
]

#: Attribute the armed spine is stored under on the Environment.
_ENV_ATTR = "_repro_express_spine"


def spine_for(env) -> "ColumnarSpine | None":
    """The armed express spine for ``env``, or ``None``."""
    return getattr(env, _ENV_ATTR, None)


class RecordBatch:
    """Array-of-fields container for a burst of formatted events.

    Parallel columns, one entry per row: the trace id, the payload
    size in bytes (== the joined payload's length, computed without
    joining), the compiled :class:`~repro.core.json_format._Shape`,
    and the shape's varying slot values.  Everything downstream —
    transfer byte totals, DSOS row construction, hop attribution — is
    answered from the columns; no per-row dict exists until (unless)
    the terminal store builds the database object itself.
    """

    __slots__ = ("trace_ids", "nbytes", "shapes", "values", "times")

    def __init__(self):
        self.trace_ids: list[str] = []
        self.nbytes: list[int] = []
        self.shapes: list = []
        self.values: list[tuple] = []
        #: Per-row stage timestamp (enqueue instant at the current hop).
        self.times: list[float] = []

    def __len__(self) -> int:
        return len(self.trace_ids)

    @property
    def total_bytes(self) -> int:
        return sum(self.nbytes)

    def append(self, trace_id: str, nbytes: int, shape, values, t: float) -> None:
        self.trace_ids.append(trace_id)
        self.nbytes.append(nbytes)
        self.shapes.append(shape)
        self.values.append(values)
        self.times.append(t)


class ColumnarMessage:
    """A StreamMessage-shaped view of one columnar row, lazily joined.

    Duck-types the frozen :class:`~repro.ldms.streams.StreamMessage`
    for every consumer in the tree (buses, forwarders, stores, spill
    buffers): same attributes, same ``size_bytes``.  The payload string
    and the parsed dict are built on first access and cached — on paths
    that never read them (counters-only delivery) they never exist.
    """

    __slots__ = (
        "tag", "fmt", "src_node", "publish_time", "trace_id",
        "size_bytes", "_shape", "_values", "_vstrs", "_payload", "_parsed",
    )

    def __init__(
        self, tag, shape, values, vstrs, nbytes,
        src_node="", publish_time=0.0, trace_id="",
    ):
        self.tag = tag
        self.fmt = "json"
        self.src_node = src_node
        self.publish_time = publish_time
        self.trace_id = trace_id
        self.size_bytes = nbytes
        self._shape = shape
        self._values = values
        self._vstrs = vstrs
        self._payload = None
        self._parsed = None

    @property
    def payload(self) -> str:
        payload = self._payload
        if payload is None:
            vstrs = self._vstrs
            if vstrs is None:  # lazy-formatted row: re-render from values
                payload = self._shape.render(self._values)[0]
            else:
                payload = self._shape.payload(vstrs)
            self._payload = payload
        return payload

    @property
    def parsed(self) -> dict:
        parsed = self._parsed
        if parsed is None:
            parsed = self._parsed = self._shape.parsed(self._values)
        return parsed


@dataclass
class SpineStats:
    """Batch-allocation accounting for one express spine."""

    #: Rows appended (one per published event while armed).
    rows: int = 0
    #: Transfer-level RecordBatches assembled at the first hop.
    record_batches: int = 0
    #: Rows carried by those batches (== rows, minus overflow drops).
    batch_rows: int = 0
    max_batch_rows: int = 0
    #: ``insert_many`` flushes of the ingest slab.
    ingest_flushes: int = 0
    #: Times the spine de-armed (0 on a clean express campaign).
    dearms: int = 0

    @property
    def mean_batch_rows(self) -> float:
        if not self.record_batches:
            return 0.0
        return self.batch_rows / self.record_batches


class _VirtualForwarder:
    """The timing mirror of one real :class:`_Forwarder` hop.

    Reproduces, arithmetically: the bounded outbox (same capacity and
    overflow rule as ``Store.try_put``), depth accounting against the
    *real* ``ForwardStats``, the drain of up to ``batch_size`` rows
    when idle, and the fused uncontended single-link completion time
    ``(t + latency·f) + transmit(total)·f`` with the identical float
    operand order as ``_Forwarder._kick`` — so completion instants are
    bit-identical to the event-driven schedule.

    Occupancy is a timestamp, not a flag: ``busy_until`` is the instant
    the hop frees up.  A transfer started by :meth:`drain` leaves a
    completion entry in the spine's heap (``tracked``); a transfer
    fused closed-form by :meth:`ColumnarSpine._fuse` leaves only the
    timestamp, so a later row that queues behind it plants a one-shot
    drain marker (``pending_drain``) at ``busy_until`` — the instant
    the real ``_kick`` loop would have drained it.
    """

    __slots__ = (
        "spine", "fwd", "fstats", "link", "node", "tag", "outbox",
        "capacity", "busy_until", "tracked", "pending_drain",
    )

    def __init__(self, spine, fwd, link):
        self.spine = spine
        self.fwd = fwd  # the real _Forwarder: stats live there
        self.fstats = fwd.stats
        self.link = link
        self.node = fwd.owner.node.name
        self.tag = fwd.tag
        self.outbox: deque = deque()
        self.capacity = fwd.outbox.capacity
        self.busy_until = float("-inf")
        self.tracked = False
        self.pending_drain = False

    def drain(self, t: float) -> None:
        """Start a transfer at ``t`` if idle and rows are queued."""
        if not self.outbox:
            return
        if self.busy_until > t:
            if not self.tracked and not self.pending_drain:
                # A fused transfer holds this hop with no completion
                # entry to trigger the next drain; mark the instant it
                # frees up.
                self.pending_drain = True
                self.spine._push(self.busy_until, self, None, 0)
            return
        outbox = self.outbox
        take = min(len(outbox), self.fwd.batch_size)
        batch = RecordBatch()
        for _ in range(take):
            row = outbox.popleft()
            batch.append(*row)
        total = batch.total_bytes
        # Same fused arithmetic as _Forwarder._kick (factor is 1.0 by
        # guard; multiplying keeps the operand order literal).
        factor = 1.0
        link = self.link
        done = (t + link.latency_s * factor) + link.transmit_time(total) * factor
        self.busy_until = done
        self.tracked = True
        self.spine._push(done, self, batch, total)


class ColumnarSpine:
    """Virtualized publish→forward→ingest for one stream tag."""

    def __init__(self, world):
        self.world = world
        self.env = world.env
        self.tag = world.fabric.tag
        self.store = world.store
        self.fabric = world.fabric
        self.stats = SpineStats()
        self._armed = False
        #: (time, seq, vfwd, batch, total_bytes) virtual completions.
        self._heap: list = []
        self._hseq = 0
        self._l0: dict[str, _VirtualForwarder] = {}
        self._l1: _VirtualForwarder | None = None
        #: Cross-group ingest slab: DSOS rows awaiting one insert_many.
        #: Round-robin placement makes insert_many ≡ sequential inserts,
        #: so flush boundaries are free (``DsosCluster.insert_many``).
        self._slab: list[dict] = []
        self._slab_cap = 1024
        self.last_time = float("-inf")
        self._hooked: list = []
        # Hot-loop references, resolved at arm time (attribute chases
        # the fused per-row path must not repeat 62k times).
        self._journal = None
        self._sbus_stats = None
        self._rows_fn = None
        self._l1bus_stats = None

    # -- arming ----------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def accepts(self, daemon, tag: str) -> bool:
        """True iff this armed spine carries ``tag`` traffic published
        at ``daemon`` (one of the virtualized L0 entry points)."""
        return (
            self._armed and tag == self.tag and daemon.node.name in self._l0
        )

    def try_arm(self) -> bool:
        """Arm iff the world is provably inert (see module docstring)."""
        world, fabric, store = self.world, self.fabric, self.store
        cfg = world.config
        if (
            cfg.faults is not None or cfg.retry is not None
            or cfg.standby_l1 or cfg.diagnosis is not None
            or cfg.probe is not None or cfg.keep_csv or not cfg.fast_lane
            or bool(cfg.flightrec)
        ):
            return False
        if world._samplers_running or world._pipeline_samplers_running:
            return False
        if not store._fast or store._slow or store._observers or store._bus.in_batch:
            return False
        # Replicated DSOS: quorum acks and per-write sequence numbers
        # are not virtualizable — the express spine only serves the
        # legacy flat cluster.
        if store._sharded:
            return False
        net = world.cluster.network
        if net._congestion is not None:
            return False
        daemons = [*fabric.compute_daemons.values(), fabric.l1, fabric.l2]
        for d in daemons:
            if d.failed or not d.fast_lane:
                return False
            for f in d._forwarders:
                if f._flaky is not None or f.retry is not None or len(f.outbox):
                    return False
        # Exactly one forward rule per relay daemon, on our tag, over a
        # healthy single-link route, with an undisturbed subscriber list.
        l1 = fabric.l1
        if len(l1._forwarders) != 1 or l1._forwarders[0].tag != self.tag:
            return False
        if fabric.l2.streams._subscribers.get(self.tag) != [store.on_message]:
            return False
        if l1.streams._subscribers.get(self.tag) != [l1._forwarders[0].enqueue]:
            return False
        links = net.links_on_path(l1.node.name, fabric.l2.node.name)
        if len(links) != 1 or not links[0]._up or links[0]._degrade != 1.0:
            return False
        self._l1 = _VirtualForwarder(self, l1._forwarders[0], links[0])
        for name, d in fabric.compute_daemons.items():
            if len(d._forwarders) != 1 or d._forwarders[0].tag != self.tag:
                return False
            if d.streams._subscribers.get(self.tag) != [d._forwarders[0].enqueue]:
                return False
            dlinks = net.links_on_path(name, l1.node.name)
            if len(dlinks) != 1 or not dlinks[0]._up or dlinks[0]._degrade != 1.0:
                return False
            self._l0[name] = _VirtualForwarder(self, d._forwarders[0], dlinks[0])
        self._journal = store.journal
        self._sbus_stats = store._bus.stats
        self._rows_fn = store.columnar_rows
        self._l1bus_stats = l1.streams.stats
        self._install_hooks(daemons, net)
        self._armed = True
        setattr(self.env, _ENV_ATTR, self)
        return True

    def _install_hooks(self, daemons, net) -> None:
        """Point every guard-relevant object back at this spine."""
        targets = [net, *daemons, self.store]
        for d in daemons:
            targets.append(d.streams)
        for vf in (*self._l0.values(), self._l1):
            targets.append(vf.link)
        for obj in targets:
            obj._express_spine = self
            self._hooked.append(obj)

    def dearm(self) -> None:
        """Complete all in-flight virtual traffic, then stand down.

        Queued rows finish delivery to the pre-mutation topology (their
        completion instants may lie beyond ``env.now``; the records they
        produce are stamped at those instants).  Afterwards every
        publish takes the per-message path again.
        """
        if not self._armed:
            return
        self._armed = False
        self.stats.dearms += 1
        self.drain_all()
        for obj in self._hooked:
            obj._express_spine = None
        self._hooked.clear()
        if getattr(self.env, _ENV_ATTR, None) is self:
            delattr(self.env, _ENV_ATTR)

    # -- the virtual clock ------------------------------------------------

    def _push(self, t: float, vfwd, batch, total: int) -> None:
        heapq.heappush(self._heap, (t, self._hseq, vfwd, batch, total))
        self._hseq += 1

    def advance(self, now: float) -> None:
        """Apply every virtual completion due at or before ``now``."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            t, _, vfwd, batch, total = heapq.heappop(heap)
            self._complete(vfwd, batch, total, t)
        if len(self._slab) >= self._slab_cap:
            self._flush_slab()

    def drain_all(self) -> float:
        """Run the virtual schedule dry (end of run / de-arm).

        Returns the last virtual completion instant, ``-inf`` if the
        spine never carried traffic.
        """
        heap = self._heap
        while heap:
            t, _, vfwd, batch, total = heapq.heappop(heap)
            self._complete(vfwd, batch, total, t)
        self._flush_slab()
        return self.last_time

    # -- hop mirrors ------------------------------------------------------

    def append(
        self, daemon, shape, values, nbytes: int,
        trace_id: str, t_pub: float, job_id: int, rank: int,
    ) -> None:
        """One published event enters the spine at ``env.now``.

        The caller (the connector's columnar lane) has already advanced
        the clock to the publish-completion instant ``t_done`` and
        charged its own stats; this mirrors ``publish_prepaid`` → bus →
        forwarder-enqueue exactly, then lets the virtual transport run.
        """
        env = self.env
        now = env.now
        if self._heap:
            self.advance(now)
        elif len(self._slab) >= self._slab_cap:
            self._flush_slab()
        self.stats.rows += 1
        node = daemon.node.name
        vfwd = self._l0[node]
        fwd = vfwd.fwd
        bus_stats = daemon.streams.stats
        bus_stats.published += 1
        bus_stats.bytes_published += nbytes
        l1 = self._l1
        if (
            not self._heap
            and not vfwd.outbox and vfwd.busy_until <= now
            and not l1.outbox
            and 0 < vfwd.capacity and 0 < l1.capacity
        ):
            # Nothing in flight anywhere on the spine and the first hop
            # is idle: the row's completion instant is closed-form —
            # enqueue → drain → transfer → deliver → transfer → ingest
            # collapsed to arithmetic.  Valid only because both hops are
            # provably idle and the heap empty, so the row is a one-row
            # batch at each hop and nothing can reorder around it.
            # Emits the identical stats, hops, gauges, journal
            # admissions and DSOS rows — in the identical per-trace
            # order, at the identical instants — as the generic
            # outbox/heap walk would.  ``busy_until`` stamps keep later
            # rows honest: one published before ``t0`` (or ``t1``)
            # queues behind this transfer exactly as the real
            # forwarders would make it.
            link = vfwd.link
            t0 = (now + link.latency_s * 1.0) + link.transmit_time(nbytes) * 1.0
            if l1.busy_until <= t0:
                bus_stats.delivered += 1
                l1link = l1.link
                t1 = (
                    (t0 + l1link.latency_s * 1.0)
                    + l1link.transmit_time(nbytes) * 1.0
                )
                fstats = vfwd.fstats
                fstats.enqueued += 1
                if fstats.max_queue_depth < 1:
                    fstats.max_queue_depth = 1
                fstats.forwarded += 1
                fstats.bytes_forwarded += nbytes
                stats = self.stats
                stats.record_batches += 1
                stats.batch_rows += 1
                if stats.max_batch_rows < 1:
                    stats.max_batch_rows = 1
                l1bus = self._l1bus_stats
                l1bus.published += 1
                l1bus.bytes_published += nbytes
                l1bus.delivered += 1
                l1stats = l1.fstats
                l1stats.enqueued += 1
                if l1stats.max_queue_depth < 1:
                    l1stats.max_queue_depth = 1
                l1stats.forwarded += 1
                l1stats.bytes_forwarded += nbytes
                sbus = self._sbus_stats
                sbus.published += 1
                sbus.bytes_published += nbytes
                sbus.delivered += 1
                journal = self._journal
                if journal is not None and trace_id:
                    journal.admit_at(trace_id, t1)
                rows = self._rows_fn(shape, values)
                slab = self._slab
                slab.extend(rows)
                self.store.objects_stored += len(rows)
                if len(slab) >= self._slab_cap:
                    self._flush_slab()
                vfwd.busy_until = t0
                l1.busy_until = t1
                if t1 > self.last_time:
                    self.last_time = t1
                collector = collector_for(env)
                if collector is not None:
                    self._fused_telemetry(
                        collector, vfwd, l1, trace_id, t_pub,
                        job_id, rank, now, t0, t1,
                    )
                return
        collector = collector_for(env)
        if collector is not None:
            collector.begin(trace_id, job_id, rank, node, t_begin=t_pub)
            collector.hop(
                trace_id, _trace.STAGE_PUBLISH, node, _trace.PUBLISHED, t_in=t_pub
            )
        if len(vfwd.outbox) < vfwd.capacity:
            vfwd.outbox.append((trace_id, nbytes, shape, values, now))
            fwd.stats.enqueued += 1
            depth = len(vfwd.outbox)
            if depth > fwd.stats.max_queue_depth:
                fwd.stats.max_queue_depth = depth
            if collector is not None:
                collector.open_hop(trace_id, _trace.STAGE_FORWARD, node)
                collector.gauge(f"outbox_depth/{node}/{self.tag}", depth)
        else:
            fwd.stats.dropped_overflow += 1
            if collector is not None:
                collector.hop(
                    trace_id, _trace.STAGE_FORWARD, node, _trace.DROP_OVERFLOW
                )
        bus_stats.delivered += 1
        if collector is not None:
            collector.hop(trace_id, _trace.STAGE_BUS, node, _trace.DELIVERED)
        vfwd.drain(now)
        if now > self.last_time:
            self.last_time = now

    def _fused_telemetry(
        self, collector, vfwd, l1,
        trace_id: str, t_pub: float, job_id: int, rank: int,
        now: float, t0: float, t1: float,
    ) -> None:
        """Exact hop/gauge records for one fused row — the per-trace
        order and ``t_in``/``t_out`` instants the generic walk emits."""
        node = vfwd.node
        l1node = l1.node
        tag = self.tag
        collector.begin(trace_id, job_id, rank, node, t_begin=t_pub)
        collector.hop(
            trace_id, _trace.STAGE_PUBLISH, node, _trace.PUBLISHED,
            t_in=t_pub,
        )
        collector.gauge(f"outbox_depth/{node}/{tag}", 1)
        collector.hop(trace_id, _trace.STAGE_BUS, node, _trace.DELIVERED)
        collector.hop(
            trace_id, _trace.STAGE_FORWARD, node, _trace.FORWARDED,
            t_in=now, t_out=t0,
        )
        collector.gauge(f"outbox_depth/{l1node}/{tag}", 1)
        collector.hop(
            trace_id, _trace.STAGE_BUS, l1node, _trace.DELIVERED,
            t_in=t0, t_out=t0,
        )
        collector.hop(
            trace_id, _trace.STAGE_FORWARD, l1node, _trace.FORWARDED,
            t_in=t0, t_out=t1,
        )
        l2node = self.fabric.l2.node.name
        collector.hop(
            trace_id, _trace.STAGE_INGEST, l2node, _trace.STORED,
            t_in=t1, t_out=t1,
        )
        collector.hop(
            trace_id, _trace.STAGE_BUS, l2node, _trace.DELIVERED,
            t_in=t1, t_out=t1,
        )

    def _complete(self, vfwd, batch: RecordBatch, total: int, t: float) -> None:
        """A virtual transfer finished at ``t``: deliver, drain again."""
        if batch is None:
            # Deferred-drain marker: the fused transfer occupying this
            # hop finished at ``t``; the queued rows drain now.
            vfwd.pending_drain = False
            vfwd.drain(t)
            return
        n = len(batch)
        fwd = vfwd.fwd
        fwd.stats.forwarded += n
        fwd.stats.bytes_forwarded += total
        collector = collector_for(self.env)
        if collector is not None:
            self._close_forward_hops(collector, vfwd, batch, t)
        if vfwd is self._l1:
            self._ingest(batch, t)
        else:
            self.stats.record_batches += 1
            self.stats.batch_rows += n
            if n > self.stats.max_batch_rows:
                self.stats.max_batch_rows = n
            self._deliver_to_l1(batch, t)
        vfwd.tracked = False
        vfwd.drain(t)
        if t > self.last_time:
            self.last_time = t

    def _close_forward_hops(self, collector, vfwd, batch, t: float) -> None:
        node = vfwd.node
        stage = _trace.STAGE_FORWARD
        if vfwd is self._l1:
            # L1 entry times travel with the rows (no collector._open
            # entry exists for the virtual hop).
            for tid, t_in in zip(batch.trace_ids, batch.times):
                collector.hop(tid, stage, node, _trace.FORWARDED, t_in=t_in, t_out=t)
        else:
            open_hops = collector._open
            for tid in batch.trace_ids:
                t_in = open_hops.pop((tid, stage, node), t)
                collector.hop(tid, stage, node, _trace.FORWARDED, t_in=t_in, t_out=t)

    def _deliver_to_l1(self, batch: RecordBatch, t: float) -> None:
        """Group-enqueue at the L1 relay, then one deferred drain.

        Mirrors ``receive_batch``: every row passes through the L1 bus
        (stats + hops) into the L1 outbox; the drain runs once after
        the whole group is queued — the same schedule as the real
        deferred same-instant kick firing after all n publishes.
        """
        l1 = self._l1
        fwd = l1.fwd
        bus_stats = fwd.owner.streams.stats
        node = l1.node
        collector = collector_for(self.env)
        gauge_name = f"outbox_depth/{node}/{self.tag}"
        for i in range(len(batch)):
            tid = batch.trace_ids[i]
            nbytes = batch.nbytes[i]
            bus_stats.published += 1
            bus_stats.bytes_published += nbytes
            if len(l1.outbox) < l1.capacity:
                l1.outbox.append(
                    (tid, nbytes, batch.shapes[i], batch.values[i], t)
                )
                fwd.stats.enqueued += 1
                depth = len(l1.outbox)
                if depth > fwd.stats.max_queue_depth:
                    fwd.stats.max_queue_depth = depth
                if collector is not None:
                    collector.gauge(gauge_name, depth)
            else:
                fwd.stats.dropped_overflow += 1
                if collector is not None:
                    collector.hop(
                        tid, _trace.STAGE_FORWARD, node,
                        _trace.DROP_OVERFLOW, t_in=t, t_out=t,
                    )
            bus_stats.delivered += 1
            if collector is not None:
                collector.hop(
                    tid, _trace.STAGE_BUS, node, _trace.DELIVERED, t_in=t, t_out=t
                )
        l1.drain(t)

    def _ingest(self, batch: RecordBatch, t: float) -> None:
        """Terminal delivery: L2 bus accounting + columnar DSOS ingest.

        The guard pinned the L2 subscriber list to exactly the store's
        ``on_message``, so delivery is a pure columnar handoff: journal
        admission in arrival order, shape-compiled row construction
        (``DsosStreamStore.columnar_rows``), rows into the cross-group
        slab for one ``insert_many``.
        """
        store = self.store
        bus_stats = store._bus.stats
        journal = store.journal
        node = self.fabric.l2.node.name
        collector = collector_for(self.env)
        slab = self._slab
        rows_fn = store.columnar_rows
        for i in range(len(batch)):
            tid = batch.trace_ids[i]
            bus_stats.published += 1
            bus_stats.bytes_published += batch.nbytes[i]
            if journal is not None and tid:
                journal.admit_at(tid, t)
            rows = rows_fn(batch.shapes[i], batch.values[i])
            slab.extend(rows)
            store.objects_stored += len(rows)
            bus_stats.delivered += 1
            if collector is not None:
                collector.hop(
                    tid, _trace.STAGE_INGEST, node, _trace.STORED, t_in=t, t_out=t
                )
                collector.hop(
                    tid, _trace.STAGE_BUS, node, _trace.DELIVERED, t_in=t, t_out=t
                )

    def _flush_slab(self) -> None:
        slab = self._slab
        if slab:
            self._slab = []
            self.stats.ingest_flushes += 1
            self.store.client.cluster.insert_many(
                self.store.schema.name, slab, validate=False
            )

    # -- guard-breaking hooks (called by the hooked objects) --------------

    def on_mutation(self) -> None:
        """Something guard-relevant is about to change: stand down."""
        self.dearm()

    def on_subscribe(self, bus, tag: str) -> None:
        """A new subscriber on a spine bus: de-arm before it attaches
        (in-flight rows deliver to the topology they were sent into)."""
        self.dearm()
