"""The Darshan-LDMS Connector itself.

A run-time listener on the Darshan runtime (Figure 2): each I/O event
is sampled, formatted (charging the formatting cost to the issuing
rank), and published to the compute node's ldmsd under the connector's
single stream tag (Figure 1's "Tag A").  The connector never blocks on
downstream transport — publishing hands the message to the local
daemon, push-based, exactly the design argument of Section IV-B.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from zlib import crc32

from repro.core.batch import ColumnarMessage, spine_for
from repro.core.json_format import (
    ColumnarFormatted,
    FormatCostModel,
    FormattedMessage,
    MessageBuilder,
)
from repro.core.sampling import EventSampler
from repro.darshan.runtime import DarshanRuntime, IOEvent
from repro.ldms.resilience import RetryPolicy
from repro.telemetry.collector import collector_for
from repro.telemetry.trace import (
    REPLAYED,
    SPILLED,
    STAGE_PUBLISH,
    make_trace_id,
)

__all__ = ["ConnectorConfig", "ConnectorStats", "DarshanLdmsConnector"]

#: The single stream tag the connector publishes on (Section IV-C).
DEFAULT_STREAM_TAG = "darshanConnector"


@dataclass(frozen=True)
class ConnectorConfig:
    """Connector feature switches."""

    stream_tag: str = DEFAULT_STREAM_TAG
    #: "json" = production; "none" = the 0.37 %-overhead ablation
    #: (Streams send called, no sprintf formatting).
    format_mode: str = "json"
    #: Publish every n-th read/write event (1 = everything, the paper's
    #: current behaviour; >1 = the future-work sampling).
    sample_every: int = 1
    cost_model: FormatCostModel = field(default_factory=FormatCostModel)
    #: Host-side fast lane: template-compiled formatting plus coalesced
    #: publish (format + send charged in one engine trip at the exact
    #: times the two-trip path computes).  Simulated results are
    #: bit-identical either way; False keeps the reference path.
    fast_lane: bool = True
    #: Spill-to-Darshan-log fallback (the real connector's behaviour
    #: when the local ldmsd is unreachable): events buffer in order,
    #: a reconnect loop backs off exponentially with deterministic
    #: jitter, and the buffer replays in order on reconnect.  Off by
    #: default — the paper's connector path is bit-for-bit unchanged.
    spill: bool = False
    reconnect_base_s: float = 0.05
    reconnect_cap_s: float = 2.0
    reconnect_max_attempts: int = 30
    #: Columnar record-batch lane: events render column-wise (payload
    #: join deferred) and, when the world's express spine is armed, a
    #: rank's burst moves through publish→forward→ingest as one
    #: RecordBatch instead of N messages.  Simulated results are
    #: bit-identical to both existing lanes; requires ``fast_lane``.
    columnar: bool = False

    def __post_init__(self) -> None:
        if self.format_mode not in ("json", "none"):
            raise ValueError(f"format_mode must be json or none, got {self.format_mode!r}")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.reconnect_max_attempts < 1:
            raise ValueError("reconnect_max_attempts must be >= 1")
        if self.columnar and not self.fast_lane:
            raise ValueError(
                "columnar is a refinement of the fast lane "
                "(ConnectorConfig(columnar=True) requires fast_lane=True)"
            )


@dataclass
class ConnectorStats:
    """Per-run accounting (feeds Table II's message columns)."""

    events_seen: int = 0
    messages_published: int = 0
    messages_suppressed: int = 0
    numeric_conversions: int = 0
    format_seconds: float = 0.0
    publish_seconds: float = 0.0
    bytes_published: int = 0
    # -- spill/replay (zero unless ConnectorConfig(spill=True) and the
    #    local daemon actually went down) --
    events_spilled: int = 0
    events_replayed: int = 0
    reconnect_attempts: int = 0

    @property
    def overhead_seconds(self) -> float:
        """Total app-side time the connector charged."""
        return self.format_seconds + self.publish_seconds


class DarshanLdmsConnector:
    """Glue between a Darshan runtime and the LDMS streams fabric."""

    def __init__(
        self,
        runtime: DarshanRuntime,
        daemon_for_node,
        config: ConnectorConfig = ConnectorConfig(),
    ):
        """``daemon_for_node`` maps a node name to its ldmsd — pass an
        :class:`~repro.ldms.aggregator.AggregationFabric`'s
        ``daemon_for`` or any equivalent callable."""
        if not runtime.config.absolute_timestamps:
            raise ValueError(
                "the connector requires the absolute-timestamp-modified "
                "Darshan runtime (DarshanConfig(absolute_timestamps=True))"
            )
        self.runtime = runtime
        self.env = runtime.env
        self.config = config
        self._daemon_for_node = daemon_for_node
        self.builder = MessageBuilder(config.cost_model, fast=config.fast_lane)
        self.sampler = EventSampler(config.sample_every)
        self.stats = ConnectorStats()
        # Frozen-config fields the per-event path reads, hoisted to
        # plain attributes (one lookup instead of two, 62k+ times).
        self._stream_tag = config.stream_tag
        self._format_mode = config.format_mode
        self._columnar = config.columnar
        self._spill_enabled = config.spill
        self._sample_all = config.sample_every == 1
        self._job_id = runtime.job_id
        #: Per-rank message sequence numbers: the deterministic basis of
        #: telemetry trace ids (no RNG, no wall clock — stamping traces
        #: cannot perturb a seeded campaign).
        self._trace_seq: dict[int, int] = {}
        #: rank -> "job:rank:" id prefix (validated once per rank).
        self._trace_prefix: dict[int, str] = {}
        #: node name -> FIFO of (trace_id, payload, parsed) awaiting a
        #: reconnect replay (the in-memory stand-in for the events the
        #: real connector leaves in the post-run Darshan log).
        self._spill: dict[str, deque] = {}
        self._reconnecting: set[str] = set()
        self._reconnect_policy = RetryPolicy(
            max_attempts=config.reconnect_max_attempts,
            base_s=config.reconnect_base_s,
            cap_s=config.reconnect_cap_s,
        )
        runtime.add_event_listener(self)

    # -- the listener hook (runs on the application rank's clock) -----------

    def on_io_event(self, event: IOEvent):
        """Darshan listener hook: sample, format (charging the rank),
        publish to the node's ldmsd."""
        stats = self.stats
        stats.events_seen += 1
        if self._sample_all:
            # admit() with every_n == 1 is unconditionally True; keep
            # its one side effect without the call.
            self.sampler.admitted += 1
        elif not self.sampler.admit(event):
            stats.messages_suppressed += 1
            return

        if self._columnar:
            formatted = self.builder.format_columnar(
                event, mode=self._format_mode,
                lazy=not self._spill_enabled,
            )
            if type(formatted) is ColumnarFormatted:
                if not self._spill_enabled:
                    pending = self._publish_columnar(event, formatted)
                    if pending is not None:
                        yield from pending
                    return
                # Spill runs buffer joined payloads (the in-memory
                # stand-in for the Darshan log); materialize this row
                # and take the reference spill path — identical strings,
                # identical accounting.
                formatted = FormattedMessage(
                    payload=formatted.shape.payload(formatted.vstrs),
                    numeric_conversions=formatted.numeric_conversions,
                    format_cost_s=formatted.format_cost_s,
                    parsed=formatted.shape.parsed(formatted.values),
                )
            # else: shape miss or ablation mode — ``formatted`` is a
            # regular FormattedMessage; continue through the standard
            # lanes below.
        else:
            formatted = self.builder.format(event, mode=self.config.format_mode)
        stats.numeric_conversions += formatted.numeric_conversions
        stats.format_seconds += formatted.format_cost_s
        payload = formatted.payload or "{}"
        daemon = self._daemon_for_node(event.context.node_name)
        trace_id = self._next_trace_id(event.context.rank)

        if self.config.spill:
            yield from self._publish_or_spill(event, payload, formatted, daemon, trace_id)
        elif self.config.fast_lane:
            # Coalesced publish: one engine trip instead of two.  The
            # slow lane advances the clock twice — to t_pub after the
            # format timeout, then to t_done after the publish cost — so
            # the fast lane computes both instants with the identical
            # float operand order and sleeps straight to t_done.
            env = self.env
            t_pub = env.now + formatted.format_cost_s
            t_done = t_pub + daemon.publish_cost(len(payload))
            yield env.timeout_at(t_done)
            collector = collector_for(env)
            if collector is not None:
                collector.begin(
                    trace_id,
                    self.runtime.job_id,
                    event.context.rank,
                    event.context.node_name,
                    t_begin=t_pub,
                )
            daemon.publish_prepaid(
                self.config.stream_tag, payload, fmt="json",
                trace_id=trace_id, publish_time=t_pub,
                parsed=formatted.parsed,
            )
            stats.publish_seconds += t_done - t_pub
        else:
            # The sprintf tax: charged synchronously to the issuing rank.
            yield self.env.timeout(formatted.format_cost_s)
            collector = collector_for(self.env)
            if collector is not None:
                collector.begin(
                    trace_id,
                    self.runtime.job_id,
                    event.context.rank,
                    event.context.node_name,
                )
            t0 = self.env.now
            yield from daemon.publish(
                self.config.stream_tag, payload, fmt="json",
                trace_id=trace_id,
            )
            stats.publish_seconds += self.env.now - t0
        stats.messages_published += 1
        # Count what actually went on the wire: format_mode="none"
        # publishes the two-byte "{}" placeholder, not the empty string.
        stats.bytes_published += len(payload)

    def _publish_columnar(self, event: IOEvent, formatted: ColumnarFormatted):
        """The columnar lane's publish half.

        Express path (armed spine): both lane instants — ``t_pub`` and
        ``t_done`` — are computed with the fast lane's exact float
        operand order, the engine clock fast-forwards with **zero**
        events when no other process is due in the window, and the
        event enters the spine's virtual transport as one record-batch
        row.  That path is a plain call — no generator exists for it;
        this returns ``None`` when the event is fully handled, or a
        generator the caller must drive (a real engine wait, after
        which the spine is *re-checked*: a de-arm during the wait sends
        the event down the per-message path it now belongs to, where a
        lazy :class:`~repro.core.batch.ColumnarMessage` rides the
        identical pipeline the fast lane uses).
        """
        stats = self.stats
        stats.numeric_conversions += formatted.numeric_conversions
        stats.format_seconds += formatted.format_cost_s
        nbytes = formatted.payload_chars
        ctx = event.context
        daemon = self._daemon_for_node(ctx.node_name)
        trace_id = self._next_trace_id(ctx.rank)
        env = self.env
        t_pub = env.now + formatted.format_cost_s
        # daemon.publish_cost, inlined (same expression, same float
        # operand order; one method call fewer per event).
        t_done = t_pub + (
            daemon.publish_overhead_s + nbytes / daemon.loopback_bandwidth_bps
        )
        spine = spine_for(env)
        if (
            spine is not None
            and spine.accepts(daemon, self._stream_tag)
            and env.advance_if_idle(t_done)
        ):
            spine.append(
                daemon, formatted.shape, formatted.values, nbytes,
                trace_id, t_pub, self._job_id, ctx.rank,
            )
            stats.publish_seconds += t_done - t_pub
            stats.messages_published += 1
            stats.bytes_published += nbytes
            return None
        return self._publish_columnar_wait(
            event, formatted, daemon, trace_id, nbytes, t_pub, t_done
        )

    def _publish_columnar_wait(
        self, event, formatted, daemon, trace_id, nbytes, t_pub, t_done
    ):
        """The columnar publish that needs a real engine wait."""
        env = self.env
        yield env.timeout_at(t_done)
        spine = spine_for(env)
        if spine is not None and spine.accepts(daemon, self.config.stream_tag):
            spine.append(
                daemon, formatted.shape, formatted.values, nbytes,
                trace_id, t_pub, self.runtime.job_id, event.context.rank,
            )
        else:
            collector = collector_for(env)
            if collector is not None:
                collector.begin(
                    trace_id,
                    self.runtime.job_id,
                    event.context.rank,
                    event.context.node_name,
                    t_begin=t_pub,
                )
            daemon.publish_prepaid_message(
                ColumnarMessage(
                    self.config.stream_tag,
                    formatted.shape, formatted.values, formatted.vstrs, nbytes,
                    src_node=daemon.node.name,
                    publish_time=t_pub,
                    trace_id=trace_id,
                )
            )
        stats = self.stats
        stats.publish_seconds += t_done - t_pub
        stats.messages_published += 1
        stats.bytes_published += nbytes

    def _next_trace_id(self, rank: int) -> str:
        seq = self._trace_seq.get(rank, 0)
        self._trace_seq[rank] = seq + 1
        prefix = self._trace_prefix.get(rank)
        if prefix is None:
            # The first id for a rank validates all three components
            # (make_trace_id rejects bools, negatives, non-ints); the
            # cached "job:rank:" prefix then skips revalidating the two
            # constants on every subsequent message.
            tid = make_trace_id(self.runtime.job_id, rank, seq)
            self._trace_prefix[rank] = tid[: tid.rfind(":") + 1]
            return tid
        return prefix + str(seq)

    # -- spill/replay: the Darshan-log fallback -----------------------------

    def _publish_or_spill(self, event: IOEvent, payload, formatted, daemon, trace_id):
        """Publish with the down-daemon fallback (``spill=True`` runs).

        Format cost is charged first (the event was formatted either
        way); if the local ldmsd is down at send time the event parks in
        the spill buffer at zero further cost — the real connector's
        failed send is immediate — and a reconnect loop takes over.
        """
        env = self.env
        node_name = event.context.node_name
        rank = event.context.rank
        yield env.timeout(formatted.format_cost_s)
        collector = collector_for(env)
        if collector is not None:
            collector.begin(trace_id, self.runtime.job_id, rank, node_name)
        if not daemon.failed:
            t_pub = env.now
            t_done = t_pub + daemon.publish_cost(len(payload))
            yield env.timeout_at(t_done)
            if not daemon.failed:
                daemon.publish_prepaid(
                    self.config.stream_tag, payload, fmt="json",
                    trace_id=trace_id, publish_time=t_pub,
                    parsed=formatted.parsed,
                )
                self.stats.publish_seconds += t_done - t_pub
                return
            # Crashed inside the send window: fall through to the spill
            # (the send never completed; its cost was paid in vain).
        self._spill_event(node_name, daemon, trace_id, payload, formatted.parsed)

    def _spill_event(self, node_name: str, daemon, trace_id: str, payload, parsed) -> None:
        buffer = self._spill.get(node_name)
        if buffer is None:
            buffer = self._spill[node_name] = deque()
        buffer.append((trace_id, payload, parsed))
        self.stats.events_spilled += 1
        collector = collector_for(self.env)
        if collector is not None:
            collector.hop(trace_id, STAGE_PUBLISH, node_name, SPILLED)
        if node_name not in self._reconnecting:
            self._reconnecting.add(node_name)
            self.env.process(self._reconnect_loop(node_name, daemon))

    def _reconnect_loop(self, node_name: str, daemon):
        """Back off until the local ldmsd answers, then replay the spill.

        Attempts are bounded; on exhaustion whatever is still buffered
        stays there — the post-run-Darshan-log outcome, reconciled as
        ``in_flight_spill`` rather than a drop.  A later spill on the
        same node starts a fresh loop (fresh attempt budget).
        """
        policy = self._reconnect_policy
        key = crc32(node_name.encode())
        try:
            for attempt in range(1, policy.max_attempts + 1):
                self.stats.reconnect_attempts += 1
                yield self.env.timeout(policy.delay(attempt, key))
                if daemon.failed:
                    continue
                drained = yield from self._replay(node_name, daemon)
                if drained:
                    return
        finally:
            self._reconnecting.discard(node_name)

    def _replay(self, node_name: str, daemon):
        """In-order replay of one node's spill buffer.

        Publish cost per event is charged to the connector's reconnect
        process (the replay reads the log off the application's clock).
        Returns False if the daemon dies again mid-replay — undelivered
        entries stay queued for the next reconnect attempt.
        """
        buffer = self._spill[node_name]
        collector = collector_for(self.env)
        while buffer:
            trace_id, payload, parsed = buffer[0]
            yield self.env.timeout(daemon.publish_cost(len(payload)))
            if daemon.failed:
                return False
            if collector is not None:
                collector.hop(trace_id, STAGE_PUBLISH, node_name, REPLAYED)
            daemon.publish_prepaid(
                self.config.stream_tag, payload, fmt="json",
                trace_id=trace_id, parsed=parsed,
            )
            buffer.popleft()
            self.stats.events_replayed += 1
        return True

    def spill_pending(self) -> int:
        """Events still parked in spill buffers (``in_flight_spill``)."""
        return sum(len(b) for b in self._spill.values())

    # -- derived reporting -----------------------------------------------------

    def message_rate(self, runtime_seconds: float) -> float:
        """Messages per second, Table II's "Rate (msgs/sec)" column."""
        if runtime_seconds <= 0:
            raise ValueError("runtime_seconds must be positive")
        return self.stats.messages_published / runtime_seconds
