"""Message assembly and the JSON-formatting cost model.

Section VI-A's finding, mechanized: "In order to send a json message,
all integers must be converted to strings and this conversion comes at
a performance cost."  :class:`FormatCostModel` charges simulated CPU
time per numeric field converted plus a small per-character
serialization term.  The default constants are calibrated so that the
paper's regimes reproduce:

* HMMER (3–4 M messages, 1.5–2.4 k msg/s) suffers multiple-X slowdowns;
* HACC-IO / MPI-IO-TEST (< 100 msg/s) stay within measurement noise;
* the ``mode="none"`` ablation (Streams send without sprintf) lands
  well under 1 %.

Per-message arithmetic: a Figure-3 message has ~18 numeric fields, so
``18 × 25 µs ≈ 0.45 ms`` per event — matching the paper's implied
0.4–0.7 ms/event overhead on HMMER.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.metrics import MESSAGE_FIELDS, SEG_FIELDS
from repro.darshan.runtime import IOEvent

__all__ = ["FormatCostModel", "MessageBuilder", "FormattedMessage"]


@dataclass(frozen=True)
class FormatCostModel:
    """CPU seconds charged to the application per formatted message."""

    base_s: float = 4.0e-6
    per_numeric_field_s: float = 25.0e-6
    per_char_s: float = 2.0e-9
    #: Cost of the bare Streams send call when formatting is disabled.
    none_mode_s: float = 1.0e-6

    def cost(self, numeric_fields: int, payload_chars: int) -> float:
        """Formatting cost of one message."""
        if numeric_fields < 0 or payload_chars < 0:
            raise ValueError("counts must be non-negative")
        return (
            self.base_s
            + numeric_fields * self.per_numeric_field_s
            + payload_chars * self.per_char_s
        )


@dataclass(frozen=True)
class FormattedMessage:
    """A ready-to-publish payload plus its accounting."""

    payload: str
    numeric_conversions: int
    format_cost_s: float


class MessageBuilder:
    """Builds Figure-3 JSON messages from Darshan IOEvents."""

    def __init__(self, cost_model: FormatCostModel | None = None):
        self.cost_model = cost_model or FormatCostModel()

    # -- message assembly ---------------------------------------------------

    def message_dict(self, event: IOEvent) -> dict:
        """The message as a dict, in Figure-3 field order.

        ``type`` is ``MET`` for open events (static metadata: absolute
        paths of exe and file are included) and ``MOD`` otherwise
        (paths replaced by ``N/A`` to cut message size and latency).
        """
        is_meta = event.op == "open"
        h5 = event.hdf5 or {}
        seg = {
            "data_set": h5.get("data_set", "N/A"),
            "pt_sel": h5.get("pt_sel", -1),
            "irreg_hslab": h5.get("irreg_hslab", -1),
            "reg_hslab": h5.get("reg_hslab", -1),
            "ndims": h5.get("ndims", -1),
            "npoints": h5.get("npoints", -1),
            "off": event.offset,
            "len": event.nbytes,
            "dur": event.duration,
            "timestamp": event.end,
        }
        message = {
            "uid": event.context.uid,
            "exe": event.context.exe if is_meta else "N/A",
            "job_id": event.context.job_id,
            "rank": event.context.rank,
            "ProducerName": event.context.node_name,
            "file": event.path if is_meta else "N/A",
            "record_id": event.record_id,
            "module": event.module,
            "type": "MET" if is_meta else "MOD",
            "max_byte": event.max_byte,
            "switches": event.switches,
            "flushes": event.flushes,
            "cnt": event.cnt,
            "op": event.op,
            "seg": [seg],
        }
        # Field order is part of the reproduced wire format.
        assert tuple(message) == MESSAGE_FIELDS
        assert tuple(seg) == SEG_FIELDS
        return message

    @staticmethod
    def count_numeric_fields(message: dict) -> int:
        """Numbers needing int/float→string conversion (the sprintf tax)."""
        n = 0
        for value in message.values():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                n += 1
            elif isinstance(value, list):
                for seg in value:
                    for v in seg.values():
                        if isinstance(v, (int, float)) and not isinstance(v, bool):
                            n += 1
        return n

    def format(self, event: IOEvent, mode: str = "json") -> FormattedMessage:
        """Assemble and serialize; returns payload + charged cost.

        ``mode="json"`` is the production path; ``mode="none"`` is the
        paper's ablation — the send function is called with a constant
        placeholder payload and no conversions happen.
        """
        if mode == "none":
            return FormattedMessage(
                payload="", numeric_conversions=0,
                format_cost_s=self.cost_model.none_mode_s,
            )
        if mode != "json":
            raise ValueError(f"unknown format mode {mode!r} (use 'json' or 'none')")
        message = self.message_dict(event)
        payload = json.dumps(message, separators=(",", ":"))
        numeric = self.count_numeric_fields(message)
        cost = self.cost_model.cost(numeric, len(payload))
        return FormattedMessage(
            payload=payload, numeric_conversions=numeric, format_cost_s=cost
        )
