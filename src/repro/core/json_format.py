"""Message assembly and the JSON-formatting cost model.

Section VI-A's finding, mechanized: "In order to send a json message,
all integers must be converted to strings and this conversion comes at
a performance cost."  :class:`FormatCostModel` charges simulated CPU
time per numeric field converted plus a small per-character
serialization term.  The default constants are calibrated so that the
paper's regimes reproduce:

* HMMER (3–4 M messages, 1.5–2.4 k msg/s) suffers multiple-X slowdowns;
* HACC-IO / MPI-IO-TEST (< 100 msg/s) stay within measurement noise;
* the ``mode="none"`` ablation (Streams send without sprintf) lands
  well under 1 %.

Per-message arithmetic: a Figure-3 message has ~18 numeric fields, so
``18 × 25 µs ≈ 0.45 ms`` per event — matching the paper's implied
0.4–0.7 ms/event overhead on HMMER.

The fast lane
-------------

The *simulated* cost above is authoritative; how fast the host computes
the payload is not.  Messages from one (context, module, op) shape
differ only in a handful of numeric fields, so the builder precompiles
a payload template per shape — the static JSON chunks rendered once,
the varying numerics interpolated per event — and memoizes the
numeric-field count instead of walking every message.  Each template is
verified against the full ``json.dumps`` path once at compile time (and
per message under ``REPRO_FORMAT_DEBUG=1``), so fast and slow lanes are
byte-identical by construction; shapes that fail the self-check fall
back to the slow path.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from dataclasses import dataclass

from repro.core.metrics import MESSAGE_FIELDS, SEG_FIELDS
from repro.darshan.runtime import IOEvent

__all__ = [
    "FormatCostModel",
    "MessageBuilder",
    "FormattedMessage",
    "ColumnarFormatted",
]

#: Per-message template verification + wire-format asserts (slow).
FORMAT_DEBUG = bool(os.environ.get("REPRO_FORMAT_DEBUG"))

_INF = float("inf")
_MISSING = object()

#: Powers of ten for closed-form ``len(repr(int))``: an n-digit
#: non-negative int v satisfies ``_POW10[n-2] <= v < _POW10[n-1]``, so
#: ``bisect_right(_POW10, v) + 1`` is its digit count.  63-bit record
#: ids top out at 19 digits; the table's headroom covers any plausible
#: counter, with a ``repr`` fallback beyond it.
_POW10 = tuple(10**k for k in range(1, 26))
_POW10_MAX = _POW10[-1]


@dataclass(frozen=True)
class FormatCostModel:
    """CPU seconds charged to the application per formatted message."""

    base_s: float = 4.0e-6
    per_numeric_field_s: float = 25.0e-6
    per_char_s: float = 2.0e-9
    #: Cost of the bare Streams send call when formatting is disabled.
    none_mode_s: float = 1.0e-6

    def cost(self, numeric_fields: int, payload_chars: int) -> float:
        """Formatting cost of one message."""
        if numeric_fields < 0 or payload_chars < 0:
            raise ValueError("counts must be non-negative")
        return (
            self.base_s
            + numeric_fields * self.per_numeric_field_s
            + payload_chars * self.per_char_s
        )


@dataclass(frozen=True)
class FormattedMessage:
    """A ready-to-publish payload plus its accounting."""

    payload: str
    numeric_conversions: int
    format_cost_s: float
    #: Fast-lane extra: the dict ``json.loads(payload)`` would produce,
    #: rebuilt from the shape's template so downstream consumers (the
    #: DSOS store) can skip the parse.  None on the slow path.
    parsed: dict | None = None


def _scalar(value) -> str:
    """Render one scalar exactly as ``json.dumps`` embeds it.

    CPython's encoder uses ``int.__repr__``/``float.__repr__`` for
    finite numbers; everything else (strings, bools, None, non-finite
    floats, exotic subclasses) goes through ``json.dumps`` itself, whose
    standalone rendering of a scalar equals its embedded rendering.
    """
    t = type(value)
    if t is int:
        return repr(value)
    if t is float:
        if value == value and value != _INF and value != -_INF:
            return float.__repr__(value)
        return json.dumps(value)
    return json.dumps(value)


class _Shape:
    """One compiled message template: static chunks around varying slots."""

    __slots__ = (
        "statics", "static_numeric", "static_chars", "context",
        "base", "seg_base",
    )

    def __init__(self, statics: tuple, static_numeric: int, context):
        self.statics = statics
        self.static_numeric = static_numeric
        #: Characters contributed by the static chunks; the rendered
        #: payload length is exactly ``static_chars + Σ len(value_str)``
        #: because the join interleaves statics and value strings with
        #: nothing in between.
        self.static_chars = sum(map(len, statics))
        # Strong reference: the cache key uses id(context), which must
        # not be reused by a new context while this shape is cached.
        self.context = context
        #: Dict templates (outer message / seg entry) with statics
        #: filled; :meth:`parsed` copies them and assigns the varying
        #: slots, reproducing ``json.loads(payload)`` without a parse.
        self.base: dict | None = None
        self.seg_base: dict | None = None

    def parsed(self, values) -> dict:
        """The message dict for ``values`` — equal to parsing the
        rendered payload (finite numbers round-trip exactly)."""
        msg = self.base.copy()
        seg = self.seg_base.copy()
        if len(values) == 14:  # HDF5 shape: per-event selection counters
            (
                msg["record_id"], msg["max_byte"], msg["switches"],
                msg["flushes"], msg["cnt"],
                seg["pt_sel"], seg["irreg_hslab"], seg["reg_hslab"],
                seg["ndims"], seg["npoints"],
                seg["off"], seg["len"], seg["dur"], seg["timestamp"],
            ) = values
        else:
            (
                msg["record_id"], msg["max_byte"], msg["switches"],
                msg["flushes"], msg["cnt"],
                seg["off"], seg["len"], seg["dur"], seg["timestamp"],
            ) = values
        msg["seg"] = [seg]
        return msg

    def render(self, values) -> tuple[str, int]:
        """Interpolate ``values`` (one per slot); returns (payload, numeric)."""
        statics = self.statics
        parts = [statics[0]]
        append = parts.append
        n = self.static_numeric
        i = 1
        for v in values:
            t = type(v)
            if t is int:
                append(repr(v))
                n += 1
            elif t is float:
                if v == v and v != _INF and v != -_INF:
                    append(float.__repr__(v))
                else:
                    append(json.dumps(v))
                n += 1
            else:
                append(json.dumps(v))
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    n += 1
            append(statics[i])
            i += 1
        return "".join(parts), n

    def render_parts(self, values) -> tuple[list, int, int]:
        """Render only the varying slots; defer the payload join.

        Returns ``(value_strings, numeric, payload_chars)`` where
        ``payload_chars`` equals ``len(self.payload(value_strings))``
        exactly — the cost model and ``size_bytes`` accounting need the
        length, but the columnar lane may never need the joined string.
        """
        vstrs = []
        append = vstrs.append
        # Every slot is presumed numeric (true for all template shapes);
        # the rare non-numeric slot deducts itself in its branch.
        n = self.static_numeric + len(values)
        chars = self.static_chars
        dumps = json.dumps
        for v in values:
            t = type(v)
            if t is int:
                s = repr(v)
            elif t is float:
                if v == v and v != _INF and v != -_INF:
                    s = float.__repr__(v)
                else:
                    s = dumps(v)
            else:
                s = dumps(v)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    n -= 1
            append(s)
            chars += len(s)
        return vstrs, n, chars

    def render_meta(self, values) -> tuple[int, int]:
        """Accounting only: ``(numeric, payload_chars)``, nothing rendered.

        Exactly the last two results of :meth:`render_parts` — int slot
        lengths come from the digit-count table instead of ``repr``,
        floats still repr for their length (no closed form exists) —
        but no value string is kept.  The express columnar lane never
        joins a payload, so this is all it needs.
        """
        n = self.static_numeric + len(values)
        chars = self.static_chars
        for v in values:
            t = type(v)
            if t is int:
                if 0 <= v:
                    if v < _POW10_MAX:
                        chars += bisect_right(_POW10, v) + 1
                    else:
                        chars += len(repr(v))
                else:
                    nv = -v
                    if nv < _POW10_MAX:
                        chars += bisect_right(_POW10, nv) + 2
                    else:
                        chars += len(repr(v))
            elif t is float:
                if v == v and v != _INF and v != -_INF:
                    chars += len(float.__repr__(v))
                else:
                    chars += len(json.dumps(v))
            else:
                s = json.dumps(v)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    n -= 1
                chars += len(s)
        return n, chars

    def payload(self, vstrs) -> str:
        """Join value strings back into the full payload (one pass)."""
        statics = self.statics
        parts = [statics[0]]
        append = parts.append
        i = 1
        for s in vstrs:
            append(s)
            append(statics[i])
            i += 1
        return "".join(parts)


class ColumnarFormatted:
    """One event rendered column-wise: the shape, its slot values and
    their string renderings, plus the usual accounting — with the
    payload join and dict materialization deferred.  The columnar lane
    appends these straight into a RecordBatch; the joined payload is
    only ever built if something downstream actually reads it."""

    __slots__ = (
        "shape", "values", "vstrs", "numeric_conversions",
        "payload_chars", "format_cost_s",
    )

    def __init__(self, shape, values, vstrs, numeric, nchars, cost):
        self.shape = shape
        self.values = values
        self.vstrs = vstrs
        self.numeric_conversions = numeric
        self.payload_chars = nchars
        self.format_cost_s = cost


class MessageBuilder:
    """Builds Figure-3 JSON messages from Darshan IOEvents."""

    def __init__(
        self,
        cost_model: FormatCostModel | None = None,
        *,
        fast: bool = True,
        debug: bool | None = None,
    ):
        self.cost_model = cost_model or FormatCostModel()
        self._fast = fast
        self._debug = FORMAT_DEBUG if debug is None else debug
        #: shape key -> _Shape (or None: self-check failed, use slow path).
        self._shapes: dict[tuple, "_Shape | None"] = {}

    # -- message assembly ---------------------------------------------------

    def message_dict(self, event: IOEvent) -> dict:
        """The message as a dict, in Figure-3 field order.

        ``type`` is ``MET`` for open events (static metadata: absolute
        paths of exe and file are included) and ``MOD`` otherwise
        (paths replaced by ``N/A`` to cut message size and latency).
        """
        is_meta = event.op == "open"
        h5 = event.hdf5 or {}
        seg = {
            "data_set": h5.get("data_set", "N/A"),
            "pt_sel": h5.get("pt_sel", -1),
            "irreg_hslab": h5.get("irreg_hslab", -1),
            "reg_hslab": h5.get("reg_hslab", -1),
            "ndims": h5.get("ndims", -1),
            "npoints": h5.get("npoints", -1),
            "off": event.offset,
            "len": event.nbytes,
            "dur": event.duration,
            "timestamp": event.end,
        }
        message = {
            "uid": event.context.uid,
            "exe": event.context.exe if is_meta else "N/A",
            "job_id": event.context.job_id,
            "rank": event.context.rank,
            "ProducerName": event.context.node_name,
            "file": event.path if is_meta else "N/A",
            "record_id": event.record_id,
            "module": event.module,
            "type": "MET" if is_meta else "MOD",
            "max_byte": event.max_byte,
            "switches": event.switches,
            "flushes": event.flushes,
            "cnt": event.cnt,
            "op": event.op,
            "seg": [seg],
        }
        if self._debug:
            # Field order is part of the reproduced wire format.
            assert tuple(message) == MESSAGE_FIELDS
            assert tuple(seg) == SEG_FIELDS
        return message

    @staticmethod
    def count_numeric_fields(message: dict) -> int:
        """Numbers needing int/float→string conversion (the sprintf tax)."""
        n = 0
        for value in message.values():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                n += 1
            elif isinstance(value, list):
                for seg in value:
                    for v in seg.values():
                        if isinstance(v, (int, float)) and not isinstance(v, bool):
                            n += 1
        return n

    # -- the fast lane ------------------------------------------------------

    @staticmethod
    def _shape_key(event: IOEvent) -> tuple:
        h5 = event.hdf5
        return (
            id(event.context),
            event.module,
            event.op,
            event.path if event.op == "open" else None,
            h5.get("data_set", "N/A") if h5 else None,
        )

    @staticmethod
    def _values(event: IOEvent) -> tuple:
        """The varying slot values, in template order."""
        h5 = event.hdf5
        if h5:
            return (
                event.record_id, event.max_byte, event.switches,
                event.flushes, event.cnt,
                h5.get("pt_sel", -1), h5.get("irreg_hslab", -1),
                h5.get("reg_hslab", -1), h5.get("ndims", -1),
                h5.get("npoints", -1),
                event.offset, event.nbytes, event.end - event.start,
                event.end,
            )
        return (
            event.record_id, event.max_byte, event.switches,
            event.flushes, event.cnt,
            event.offset, event.nbytes, event.end - event.start, event.end,
        )

    def _compile(self, event: IOEvent) -> "_Shape | None":
        """Build the template for ``event``'s shape and self-check it
        against the full ``json.dumps`` path (None = check failed)."""
        ctx = event.context
        is_meta = event.op == "open"
        h5 = event.hdf5 or {}
        statics = [
            '{"uid":' + _scalar(ctx.uid)
            + ',"exe":' + _scalar(ctx.exe if is_meta else "N/A")
            + ',"job_id":' + _scalar(ctx.job_id)
            + ',"rank":' + _scalar(ctx.rank)
            + ',"ProducerName":' + _scalar(ctx.node_name)
            + ',"file":' + _scalar(event.path if is_meta else "N/A")
            + ',"record_id":',
            ',"module":' + _scalar(event.module)
            + ',"type":' + ('"MET"' if is_meta else '"MOD"')
            + ',"max_byte":',
            ',"switches":',
            ',"flushes":',
            ',"cnt":',
        ]
        seg_head = (
            ',"op":' + _scalar(event.op)
            + ',"seg":[{"data_set":' + _scalar(h5.get("data_set", "N/A"))
            + ',"pt_sel":'
        )
        if event.hdf5:
            statics += [
                seg_head,
                ',"irreg_hslab":',
                ',"reg_hslab":',
                ',"ndims":',
                ',"npoints":',
                ',"off":',
            ]
        else:
            statics.append(
                seg_head + _scalar(-1)
                + ',"irreg_hslab":' + _scalar(-1)
                + ',"reg_hslab":' + _scalar(-1)
                + ',"ndims":' + _scalar(-1)
                + ',"npoints":' + _scalar(-1)
                + ',"off":'
            )
        statics += [',"len":', ',"dur":', ',"timestamp":', "}]}"]

        message = self.message_dict(event)
        reference = json.dumps(message, separators=(",", ":"))
        ref_count = self.count_numeric_fields(message)
        shape = _Shape(tuple(statics), 0, ctx)
        shape.base = dict(message)
        shape.base["seg"] = None  # placeholder keeps the key position
        shape.seg_base = dict(message["seg"][0])
        values = self._values(event)
        payload, varying = shape.render(values)
        shape.static_numeric = ref_count - varying
        if (
            payload != reference
            or shape.static_numeric < 0
            or shape.parsed(values) != json.loads(reference)
        ):
            return None
        return shape

    def _format_slow(self, event: IOEvent) -> FormattedMessage:
        message = self.message_dict(event)
        payload = json.dumps(message, separators=(",", ":"))
        numeric = self.count_numeric_fields(message)
        cost = self.cost_model.cost(numeric, len(payload))
        return FormattedMessage(
            payload=payload, numeric_conversions=numeric, format_cost_s=cost
        )

    def format(self, event: IOEvent, mode: str = "json") -> FormattedMessage:
        """Assemble and serialize; returns payload + charged cost.

        ``mode="json"`` is the production path; ``mode="none"`` is the
        paper's ablation — the send function is called with a constant
        placeholder payload and no conversions happen.
        """
        if mode == "none":
            return FormattedMessage(
                payload="", numeric_conversions=0,
                format_cost_s=self.cost_model.none_mode_s,
            )
        if mode != "json":
            raise ValueError(f"unknown format mode {mode!r} (use 'json' or 'none')")
        if not self._fast:
            return self._format_slow(event)

        shapes = self._shapes
        key = self._shape_key(event)
        shape = shapes.get(key, _MISSING)
        if shape is _MISSING:
            shape = shapes[key] = self._compile(event)
        if shape is None:
            return self._format_slow(event)
        values = self._values(event)
        payload, numeric = shape.render(values)
        parsed = shape.parsed(values)
        if self._debug:
            reference = self._format_slow(event)
            assert payload == reference.payload, (payload, reference.payload)
            assert numeric == reference.numeric_conversions
            assert parsed == json.loads(payload)
        cost = self.cost_model.cost(numeric, len(payload))
        return FormattedMessage(
            payload=payload, numeric_conversions=numeric, format_cost_s=cost,
            parsed=parsed,
        )

    def format_columnar(
        self, event: IOEvent, mode: str = "json", *, lazy: bool = False
    ) -> "ColumnarFormatted | FormattedMessage":
        """Columnar-lane front half: render the varying slots, skip the
        payload join.

        Returns a :class:`ColumnarFormatted` when the shape compiles.
        Falls back to :meth:`format`'s FormattedMessage for the
        ``mode="none"`` ablation, shapes that failed their self-check,
        the slow builder, and debug mode (where the per-message
        cross-check needs the joined payload anyway).  Costs and counts
        are identical either way: ``payload_chars`` is exactly the
        joined payload's length.

        With ``lazy=True`` even the per-slot value strings are skipped
        (``vstrs`` is None): :meth:`_Shape.render_meta` supplies the
        identical numeric/char accounting, and any consumer that does
        need the payload re-renders from ``values`` — the express spine
        never does.
        """
        if mode != "json" or not self._fast or self._debug:
            return self.format(event, mode)
        shapes = self._shapes
        key = self._shape_key(event)
        shape = shapes.get(key, _MISSING)
        if shape is _MISSING:
            shape = shapes[key] = self._compile(event)
        if shape is None:
            return self._format_slow(event)
        values = self._values(event)
        if lazy:
            numeric, nchars = shape.render_meta(values)
            cost = self.cost_model.cost(numeric, nchars)
            return ColumnarFormatted(shape, values, None, numeric, nchars, cost)
        vstrs, numeric, nchars = shape.render_parts(values)
        cost = self.cost_model.cost(numeric, nchars)
        return ColumnarFormatted(shape, values, vstrs, numeric, nchars, cost)
