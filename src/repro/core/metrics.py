"""Table I: the metrics published in every connector message.

``METRIC_DEFINITIONS`` reproduces the table verbatim (name →
definition); ``MESSAGE_FIELDS`` / ``SEG_FIELDS`` fix the field order of
the JSON message shown in Figure 3.  Tests assert the message builder
emits exactly this vocabulary, so the wire format cannot silently
drift from the paper.
"""

from __future__ import annotations

__all__ = ["METRIC_DEFINITIONS", "MESSAGE_FIELDS", "SEG_FIELDS"]

#: Table I, verbatim.
METRIC_DEFINITIONS: dict[str, str] = {
    "uid": "User ID of the job run",
    "exe": "Absolute directory of the application executable",
    "module": "Name of the Darshan module data being collected",
    "ProducerName": "Name of the compute node the application is running on",
    "switches": "Number of times access alternated between read and write",
    "file": "Absolute directory of the filename where the operations are performed",
    "rank": "Rank of the processes at I/O",
    "flushes": (
        "Number of 'flush' operations. It is the HDF5 file flush operations "
        "for H5F, and the dataset flush operations for H5D"
    ),
    "record_id": "Darshan file record ID of the file the dataset belongs to",
    "max_byte": "Highest offset byte read and written per operation",
    "type": (
        "The type of JSON data being published: MOD for gathering module "
        "data or MET for gathering static meta data"
    ),
    "job_id": "The Job ID of the application run",
    "op": "Type of operation being performed (i.e. read, write, open, close)",
    "cnt": (
        "The count of the operations performed per module per rank. "
        "Resets to 0 after each 'close' operation"
    ),
    "seg": "A list containing metrics names per operation per rank",
    "seg:pt_sel": "HDF5 number of different access selections",
    "seg:dur": (
        "Duration of each operation performed for the given rank (i.e. a "
        "rank takes 'X' time to perform a r/w/o/c operation)"
    ),
    "seg:len": "Number of bytes read/written per operation per rank",
    "seg:ndims": "HDF5 number of dimensions in dataset's dataspace",
    "seg:reg_hslab": "HDF5 number of regular hyperslabs",
    "seg:irreg_hslab": "HDF5 number of irregular hyperslabs",
    "seg:data_set": "HDF5 dataset name",
    "seg:npoints": "HDF5 number of points in dataset's dataspace",
    "seg:timestamp": "End time of given operation per rank (in epoch time)",
}

#: Top-level JSON field order (Figure 3).
MESSAGE_FIELDS = (
    "uid",
    "exe",
    "job_id",
    "rank",
    "ProducerName",
    "file",
    "record_id",
    "module",
    "type",
    "max_byte",
    "switches",
    "flushes",
    "cnt",
    "op",
    "seg",
)

#: Per-segment field order (Figure 3).
SEG_FIELDS = (
    "data_set",
    "pt_sel",
    "irreg_hslab",
    "reg_hslab",
    "ndims",
    "npoints",
    "off",
    "len",
    "dur",
    "timestamp",
)
