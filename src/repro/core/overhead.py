"""Overhead arithmetic for Table II.

The paper computes ``% Overhead`` from mean runtimes over five
repetitions of "Darshan only" vs "Darshan-LDMS Connector" (dC) runs,
and plots Figure 5 with 95 % confidence intervals.  These helpers hold
exactly that math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _stats

__all__ = ["percent_overhead", "mean_confidence_interval", "OverheadResult"]


def percent_overhead(baseline_s: float, with_connector_s: float) -> float:
    """``(dC - Darshan) / Darshan × 100``; negative when dC ran faster
    (the paper's campaign-drift artefact)."""
    if baseline_s <= 0:
        raise ValueError("baseline runtime must be positive")
    return (with_connector_s - baseline_s) / baseline_s * 100.0


def mean_confidence_interval(samples, confidence: float = 0.95):
    """(mean, half-width) of the Student-t CI used by Figure 5."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    if sem == 0.0:
        return mean, 0.0
    half = float(sem * _stats.t.ppf((1 + confidence) / 2.0, arr.size - 1))
    return mean, half


@dataclass(frozen=True)
class OverheadResult:
    """One Table II cell group: a (config, file system) column."""

    label: str
    filesystem: str
    darshan_runtimes: tuple
    connector_runtimes: tuple
    avg_messages: float
    message_rate: float

    @property
    def darshan_mean(self) -> float:
        return float(np.mean(self.darshan_runtimes))

    @property
    def connector_mean(self) -> float:
        return float(np.mean(self.connector_runtimes))

    @property
    def overhead_percent(self) -> float:
        return percent_overhead(self.darshan_mean, self.connector_mean)

    def as_row(self) -> dict:
        """Flat dict in the shape of one Table II column."""
        return {
            "config": self.label,
            "filesystem": self.filesystem,
            "avg_messages": round(self.avg_messages),
            "rate_msgs_per_s": self.message_rate,
            "darshan_runtime_s": self.darshan_mean,
            "dC_runtime_s": self.connector_mean,
            "overhead_percent": self.overhead_percent,
        }
