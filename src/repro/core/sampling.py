"""n-th-event sampling — the paper's proposed overhead fix (§VIII).

"we plan to further develop the Darshan LDMS Integration framework to
allow users to collect every n-th I/O event detected by Darshan."

Design decisions (documented because the paper leaves them open):

* sampling applies to data ops (read/write) only — open/close events
  carry the static metadata analyses join on, and there are few of
  them, so they are always published;
* the counter is per (module, rank), so every rank's I/O pattern stays
  uniformly represented rather than starving late ranks;
* the *first* data event of each stride is published (``k % n == 1``),
  so n=1 means "publish everything".
"""

from __future__ import annotations

from repro.darshan.runtime import IOEvent

__all__ = ["EventSampler"]


class EventSampler:
    """Admit every n-th read/write event per (module, rank)."""

    def __init__(self, every_n: int = 1):
        if every_n < 1:
            raise ValueError(f"every_n must be >= 1, got {every_n}")
        self.every_n = every_n
        self._counts: dict[tuple[str, int], int] = {}
        self.admitted = 0
        self.suppressed = 0

    def admit(self, event: IOEvent) -> bool:
        """True when this event should be published."""
        if event.op not in ("read", "write") or self.every_n == 1:
            self.admitted += 1
            return True
        key = (event.module, event.context.rank)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count % self.every_n == 1:
            self.admitted += 1
            return True
        self.suppressed += 1
        return False

    @property
    def sampling_fraction(self) -> float:
        """Fraction of observed events actually admitted so far."""
        total = self.admitted + self.suppressed
        return self.admitted / total if total else 1.0
