"""Darshan: application-level I/O characterization (reimplemented).

Mirrors the structure of the real tool the paper modifies:

* ``darshan-runtime`` (:mod:`repro.darshan.runtime`,
  :mod:`repro.darshan.modules`) — per-module instrumentation wrapping
  the POSIX/STDIO/MPIIO/HDF5 layers, accumulating per-(file, rank)
  counter records and, when DXT is enabled, full per-operation segment
  traces;
* ``darshan-util`` (:mod:`repro.darshan.logfile`) — the end-of-job log
  writer and a ``darshan-parser``-style reader;
* the paper's **timestamp modification**: vanilla Darshan keeps only
  times relative to job start (from ``clock_gettime``); the modified
  runtime threads an absolute-timestamp struct pointer through every
  module, exposed here as the ``absolute_timestamps`` flag and the
  :class:`~repro.darshan.runtime.IOEvent` objects delivered to run-time
  event listeners (which is where the Darshan-LDMS connector attaches).
"""

from repro.darshan.counters import MODULE_COUNTERS, MODULE_FCOUNTERS, record_id_for
from repro.darshan.records import DarshanRecord, NameRecord
from repro.darshan.dxt import DxtSegment, DxtTracer
from repro.darshan.heatmap import Heatmap
from repro.darshan.runtime import DarshanConfig, DarshanRuntime, IOEvent
from repro.darshan.logfile import DarshanLog, parse_log, write_log
from repro.darshan.summary import job_summary, render_job_summary

__all__ = [
    "DarshanConfig",
    "DarshanLog",
    "DarshanRecord",
    "DarshanRuntime",
    "DxtSegment",
    "DxtTracer",
    "Heatmap",
    "IOEvent",
    "MODULE_COUNTERS",
    "MODULE_FCOUNTERS",
    "NameRecord",
    "job_summary",
    "parse_log",
    "record_id_for",
    "render_job_summary",
    "write_log",
]
