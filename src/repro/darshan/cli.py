"""darshan-parser: command-line log inspection.

Usage::

    python -m repro.darshan.cli <logfile> [--module POSIX] [--dxt]

Prints the job header, per-module totals and (optionally) per-record
counters and DXT segments, in the spirit of the real ``darshan-parser``
text output.
"""

from __future__ import annotations

import argparse
import sys

from repro.darshan.logfile import DarshanLog, LogFormatError, parse_log

__all__ = ["main", "render_log"]


def render_log(log: DarshanLog, module: str | None = None, show_dxt: bool = False) -> str:
    """The parser's text rendering (returned, not printed, for tests)."""
    lines = [
        "# darshan log (reproduction format)",
        f"# exe: {log.exe}",
        f"# uid: {log.uid}",
        f"# jobid: {log.job_id}",
        f"# nprocs: {log.nprocs}",
        f"# start_time: {log.start_time:.6f}",
        f"# end_time: {log.end_time:.6f}",
        f"# run time: {log.runtime_seconds:.6f}",
        f"# modules: {', '.join(log.modules())}",
        "",
    ]
    summary = log.summary()
    for mod in log.modules():
        if module is not None and mod != module:
            continue
        lines.append(f"# *** {mod} module totals ***")
        for name, value in sorted(summary[mod].items()):
            if isinstance(value, float):
                lines.append(f"total_{name}: {value:.6f}")
            else:
                lines.append(f"total_{name}: {value}")
        lines.append("")
        lines.append(f"# *** {mod} per-record counters ***")
        for rec in log.records_for(mod):
            path = log.path_for(rec.record_id)
            for name, value in rec.counters.items():
                lines.append(f"{mod}\t{rec.rank}\t{rec.record_id}\t{name}\t{value}\t{path}")
        lines.append("")
    if show_dxt:
        lines.append("# *** DXT segments ***")
        lines.append("# module\trank\trecord_id\top\toffset\tlength\tstart\tend")
        for (mod, rank, rid), segments in sorted(log.dxt_segments.items()):
            if module is not None and mod != module:
                continue
            for seg in segments:
                lines.append(
                    f"{mod}\t{rank}\t{rid}\t{seg.op}\t{seg.offset}\t"
                    f"{seg.length}\t{seg.start:.6f}\t{seg.end:.6f}"
                )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.darshan.cli``."""
    parser = argparse.ArgumentParser(
        prog="darshan-parser", description="Parse a reproduction Darshan log."
    )
    parser.add_argument("logfile", help="path to a log written by write_log()")
    parser.add_argument("--module", help="restrict output to one module")
    parser.add_argument("--dxt", action="store_true", help="include DXT segments")
    parser.add_argument(
        "--summary", action="store_true",
        help="darshan-job-summary style report instead of raw counters",
    )
    args = parser.parse_args(argv)
    try:
        log = parse_log(args.logfile)
    except (LogFormatError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.summary:
        from repro.darshan.summary import render_job_summary

        print(render_job_summary(log))
    else:
        print(render_log(log, module=args.module, show_dxt=args.dxt))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
