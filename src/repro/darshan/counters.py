"""Counter vocabularies per Darshan module.

A faithful subset of the real tool's counter names (darshan-log-format
headers), covering everything the connector's JSON messages and the
paper's analyses consume.  Integer counters accumulate occurrences and
byte totals; ``F_``-prefixed float counters hold (job-relative) times.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "MODULE_COUNTERS",
    "MODULE_FCOUNTERS",
    "SIZE_BUCKETS",
    "SUPPORTED_MODULES",
    "record_id_for",
    "size_bucket_suffix",
]

#: Access-size histogram bucket upper bounds (bytes), like the real
#: tool's ``*_SIZE_READ_0_100`` .. ``*_SIZE_READ_1G_PLUS`` counters.
SIZE_BUCKETS = [
    (0, 100, "0_100"),
    (100, 1024, "100_1K"),
    (1024, 10 * 1024, "1K_10K"),
    (10 * 1024, 100 * 1024, "10K_100K"),
    (100 * 1024, 2**20, "100K_1M"),
    (2**20, 4 * 2**20, "1M_4M"),
    (4 * 2**20, 10 * 2**20, "4M_10M"),
    (10 * 2**20, 100 * 2**20, "10M_100M"),
    (100 * 2**20, 2**30, "100M_1G"),
    (2**30, None, "1G_PLUS"),
]


#: (op, bucket label) -> pre-built suffix; the f-string and ``.upper()``
#: only run once per distinct pair, not once per access.
_SUFFIX_CACHE: dict[tuple[str, str], str] = {}


def size_bucket_suffix(op: str, nbytes: int) -> str:
    """The histogram counter suffix for an access of ``nbytes``."""
    label = SIZE_BUCKETS[-1][2]
    for lo, hi, name in SIZE_BUCKETS:
        if hi is None or nbytes < hi:
            label = name
            break
    cached = _SUFFIX_CACHE.get((op, label))
    if cached is not None:
        return cached
    suffix = f"SIZE_{op.upper()}_{label}"
    _SUFFIX_CACHE[(op, label)] = suffix
    return suffix


_SIZE_COUNTERS = [
    f"SIZE_{op}_{name}" for op in ("READ", "WRITE") for _, _, name in SIZE_BUCKETS
]

_COMMON_COUNTERS = [
    "OPENS",
    "CLOSES",
    "READS",
    "WRITES",
    "BYTES_READ",
    "BYTES_WRITTEN",
    "MAX_BYTE_READ",
    "MAX_BYTE_WRITTEN",
    "RW_SWITCHES",
    # Access-pattern counters: SEQ = at a higher offset than the
    # previous op; CONSEC = immediately adjacent to it.
    "SEQ_READS",
    "SEQ_WRITES",
    "CONSEC_READS",
    "CONSEC_WRITES",
] + _SIZE_COUNTERS

_COMMON_FCOUNTERS = [
    "F_OPEN_START_TIMESTAMP",
    "F_OPEN_END_TIMESTAMP",
    "F_CLOSE_START_TIMESTAMP",
    "F_CLOSE_END_TIMESTAMP",
    "F_READ_START_TIMESTAMP",
    "F_READ_END_TIMESTAMP",
    "F_WRITE_START_TIMESTAMP",
    "F_WRITE_END_TIMESTAMP",
    "F_READ_TIME",
    "F_WRITE_TIME",
    "F_META_TIME",
]


def _prefixed(prefix: str, names: list[str]) -> list[str]:
    return [f"{prefix}_{n}" for n in names]


#: Integer counters per module.
MODULE_COUNTERS: dict[str, list[str]] = {
    "POSIX": _prefixed("POSIX", _COMMON_COUNTERS)
    + ["POSIX_SEEKS", "POSIX_STATS", "POSIX_FSYNCS"],
    "STDIO": _prefixed("STDIO", _COMMON_COUNTERS) + ["STDIO_FLUSHES"],
    "MPIIO": _prefixed("MPIIO", ["OPENS", "CLOSES", "RW_SWITCHES"])
    + [
        "MPIIO_INDEP_READS",
        "MPIIO_INDEP_WRITES",
        "MPIIO_COLL_READS",
        "MPIIO_COLL_WRITES",
        "MPIIO_BYTES_READ",
        "MPIIO_BYTES_WRITTEN",
        "MPIIO_MAX_BYTE_READ",
        "MPIIO_MAX_BYTE_WRITTEN",
    ],
    "H5F": ["H5F_OPENS", "H5F_CLOSES", "H5F_FLUSHES"],
    "H5D": _prefixed("H5D", _COMMON_COUNTERS)
    + [
        "H5D_FLUSHES",
        "H5D_POINT_SELECTS",
        "H5D_REGULAR_HYPERSLAB_SELECTS",
        "H5D_IRREGULAR_HYPERSLAB_SELECTS",
        "H5D_DATASPACE_NDIMS",
        "H5D_DATASPACE_NPOINTS",
    ],
    # LUSTRE is a "static" module: striping layout, no op counters.
    "LUSTRE": [
        "LUSTRE_STRIPE_SIZE",
        "LUSTRE_STRIPE_WIDTH",
        "LUSTRE_STRIPE_OFFSET",
        "LUSTRE_OSTS",
    ],
}

#: Float (time) counters per module.
MODULE_FCOUNTERS: dict[str, list[str]] = {
    "POSIX": _prefixed("POSIX", _COMMON_FCOUNTERS),
    "STDIO": _prefixed("STDIO", _COMMON_FCOUNTERS),
    "MPIIO": _prefixed("MPIIO", _COMMON_FCOUNTERS),
    "H5F": _prefixed("H5F", _COMMON_FCOUNTERS),
    "H5D": _prefixed("H5D", _COMMON_FCOUNTERS),
    "LUSTRE": [],
}

SUPPORTED_MODULES = tuple(MODULE_COUNTERS)


#: path -> record id memo (a campaign touches each path thousands of
#: times; the hash is pure, so one digest per distinct path suffices).
_RECORD_ID_CACHE: dict[str, int] = {}


def record_id_for(path: str) -> int:
    """Darshan file record id: a stable 64-bit hash of the path.

    The real tool hashes the path with a 64-bit jenkins hash; any stable
    64-bit digest preserves the semantics (equal paths collide across
    ranks and modules, which is what joins records together).
    """
    rid = _RECORD_ID_CACHE.get(path)
    if rid is None:
        digest = hashlib.blake2b(path.encode("utf-8"), digest_size=8).digest()
        # Mask to 63 bits so the id survives signed-int64 columns downstream.
        rid = int.from_bytes(digest, "little") & 0x7FFF_FFFF_FFFF_FFFF
        _RECORD_ID_CACHE[path] = rid
    return rid
