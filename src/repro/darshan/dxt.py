"""DXT: Darshan eXtended Tracing.

Where the base modules keep *aggregate* counters, DXT records every
individual operation as a segment — (op, offset, length, start, end) —
per (module, rank, file record).  The paper's connector exists exactly
because DXT gives per-event fidelity; the connector adds the *absolute*
timestamp and run-time delivery that DXT's post-mortem trace lacks.

Like the real implementation, the tracer bounds memory per record
(``max_segments_per_record``); overflowing records stop tracing and are
flagged, so tests can exercise the truncation path.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DxtSegment", "DxtTracer"]

_TRACED_OPS = ("read", "write")


@dataclass(frozen=True)
class DxtSegment:
    """One traced I/O segment (times are job-relative, like real DXT)."""

    op: str
    offset: int
    length: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class DxtTracer:
    """Per-(module, rank, record) segment store with a memory bound."""

    #: Modules real DXT traces (POSIX and MPI-IO layers only).
    TRACED_MODULES = ("POSIX", "MPIIO")

    def __init__(self, max_segments_per_record: int = 1 << 20):
        if max_segments_per_record < 1:
            raise ValueError("max_segments_per_record must be >= 1")
        self.max_segments_per_record = max_segments_per_record
        self._segments: dict[tuple[str, int, int], list[DxtSegment]] = {}
        self._overflowed: set[tuple[str, int, int]] = set()

    def trace(
        self,
        module: str,
        rank: int,
        record_id: int,
        op: str,
        offset: int,
        length: int,
        start: float,
        end: float,
    ) -> bool:
        """Record one segment.  Returns False when dropped (not a traced
        module/op, or the record hit its memory bound)."""
        if module not in self.TRACED_MODULES or op not in _TRACED_OPS:
            return False
        key = (module, rank, record_id)
        if key in self._overflowed:
            return False
        segs = self._segments.setdefault(key, [])
        if len(segs) >= self.max_segments_per_record:
            self._overflowed.add(key)
            return False
        segs.append(DxtSegment(op, offset, length, start, end))
        return True

    # -- queries ---------------------------------------------------------

    def segments(self, module: str, rank: int, record_id: int) -> list[DxtSegment]:
        return list(self._segments.get((module, rank, record_id), ()))

    def all_segments(self) -> dict[tuple[str, int, int], list[DxtSegment]]:
        return {k: list(v) for k, v in self._segments.items()}

    def overflowed(self, module: str, rank: int, record_id: int) -> bool:
        return (module, rank, record_id) in self._overflowed

    @property
    def total_segments(self) -> int:
        return sum(len(v) for v in self._segments.values())
