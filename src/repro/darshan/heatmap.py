"""The HEATMAP module: time-binned I/O intensity per rank.

Modern Darshan ships a heatmap module that histograms read/write bytes
into fixed-count time bins per rank, *doubling the bin width* whenever
the run outgrows the bin array — giving a constant-memory intensity
picture of the whole run.  We reproduce that structure: it complements
DXT (full per-op fidelity, unbounded memory) and the connector (run-time
streaming) as the third way Darshan exposes temporal behaviour.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Heatmap"]


class Heatmap:
    """Per-(rank, op) byte histogram over job-relative time."""

    OPS = ("read", "write")

    def __init__(self, n_bins: int = 128, initial_bin_width_s: float = 0.1):
        if n_bins < 2 or n_bins % 2:
            raise ValueError("n_bins must be an even integer >= 2")
        if initial_bin_width_s <= 0:
            raise ValueError("initial_bin_width_s must be positive")
        self.n_bins = n_bins
        self.bin_width_s = initial_bin_width_s
        self._grids: dict[tuple[int, str], np.ndarray] = {}
        self.total_bytes = {op: 0 for op in self.OPS}

    # -- recording ---------------------------------------------------------

    def record(self, rank: int, op: str, nbytes: int, start: float, end: float) -> None:
        """Spread ``nbytes`` across the bins overlapped by [start, end).

        Times are job-relative seconds.  The grid doubles its bin width
        (collapsing bins pairwise) until ``end`` fits.
        """
        if op not in self.OPS:
            return
        if nbytes <= 0:
            return
        if start < 0 or end < start:
            raise ValueError(f"bad interval [{start}, {end}]")
        while end >= self.n_bins * self.bin_width_s:
            self._double_bin_width()
        grid = self._grids.get((rank, op))
        if grid is None:
            grid = np.zeros(self.n_bins)
            self._grids[(rank, op)] = grid
        first = int(start / self.bin_width_s)
        last = min(int(end / self.bin_width_s), self.n_bins - 1)
        if first == last:
            grid[first] += nbytes
        else:
            # Proportional split over the covered bins.
            duration = end - start
            for b in range(first, last + 1):
                lo = max(start, b * self.bin_width_s)
                hi = min(end, (b + 1) * self.bin_width_s)
                grid[b] += nbytes * (hi - lo) / duration
        self.total_bytes[op] += nbytes

    def _double_bin_width(self) -> None:
        self.bin_width_s *= 2
        for key, grid in self._grids.items():
            folded = grid.reshape(self.n_bins // 2, 2).sum(axis=1)
            new = np.zeros(self.n_bins)
            new[: self.n_bins // 2] = folded
            self._grids[key] = new

    # -- queries -------------------------------------------------------------

    def ranks(self) -> list[int]:
        return sorted({rank for rank, _ in self._grids})

    def grid(self, rank: int, op: str) -> np.ndarray:
        """The rank's histogram (zeros when it did no such ops)."""
        return np.array(self._grids.get((rank, op), np.zeros(self.n_bins)))

    def matrix(self, op: str) -> np.ndarray:
        """(ranks x bins) matrix for one op — the figure Darshan draws."""
        ranks = self.ranks()
        if not ranks:
            return np.zeros((0, self.n_bins))
        return np.vstack([self.grid(r, op) for r in ranks])

    def conservation_check(self) -> bool:
        """Every recorded byte is in some bin (modulo float error)."""
        for op in self.OPS:
            binned = sum(
                g.sum() for (r, o), g in self._grids.items() if o == op
            )
            if not np.isclose(binned, self.total_bytes[op], rtol=1e-9):
                return False
        return True

    def to_payload(self) -> dict:
        """JSON-ready serialization (for the log writer)."""
        return {
            "n_bins": self.n_bins,
            "bin_width_s": self.bin_width_s,
            "grids": [
                {"rank": rank, "op": op, "bins": grid.tolist()}
                for (rank, op), grid in sorted(self._grids.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Heatmap":
        hm = cls(n_bins=payload["n_bins"], initial_bin_width_s=payload["bin_width_s"])
        for entry in payload["grids"]:
            grid = np.asarray(entry["bins"], dtype=float)
            hm._grids[(entry["rank"], entry["op"])] = grid
            hm.total_bytes[entry["op"]] += int(round(grid.sum()))
        return hm
