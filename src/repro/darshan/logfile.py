"""darshan-util: the end-of-job log and its writer/parser.

The real tool writes a compressed binary log that ``darshan-parser``
renders as text.  We keep the same lifecycle — runtime finalizes into a
:class:`DarshanLog`, :func:`write_log` persists it (magic header +
zlib-compressed JSON payload), :func:`parse_log` loads it back — and
provide the ``darshan-parser``-style per-module aggregation via
:meth:`DarshanLog.summary`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.darshan.dxt import DxtSegment
from repro.darshan.records import DarshanRecord, NameRecord

__all__ = ["DarshanLog", "write_log", "parse_log", "LogFormatError"]

_MAGIC = b"DSHNRPR1"


class LogFormatError(RuntimeError):
    """The file is not a log this parser understands."""


@dataclass
class DarshanLog:
    """Everything darshan-runtime knows at shutdown."""

    job_id: int
    uid: int
    exe: str
    nprocs: int
    start_time: float
    end_time: float
    records: list[DarshanRecord]
    names: dict[int, NameRecord]
    dxt_segments: dict[tuple[str, int, int], list[DxtSegment]] = field(
        default_factory=dict
    )
    #: HEATMAP module data (None when the module was disabled).
    heatmap: object = None

    @property
    def runtime_seconds(self) -> float:
        return self.end_time - self.start_time

    # -- darshan-parser-style views -------------------------------------------

    def modules(self) -> list[str]:
        """Module names present, sorted."""
        return sorted({r.module for r in self.records})

    def records_for(self, module: str) -> list[DarshanRecord]:
        return [r for r in self.records if r.module == module]

    def path_for(self, record_id: int) -> str:
        try:
            return self.names[record_id].path
        except KeyError:
            raise KeyError(f"record id {record_id} not in name table") from None

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-module aggregate totals (the parser's 'total' lines)."""
        out: dict[str, dict[str, float]] = {}
        for rec in self.records:
            agg = out.setdefault(rec.module, {})
            for name, value in rec.counters.items():
                if name.endswith(("MAX_BYTE_READ", "MAX_BYTE_WRITTEN")):
                    agg[name] = max(agg.get(name, 0), value)
                else:
                    agg[name] = agg.get(name, 0) + value
            for name, value in rec.fcounters.items():
                if name.endswith("_TIME"):
                    agg[name] = agg.get(name, 0.0) + value
        return out

    def dxt_record_count(self) -> int:
        return sum(len(v) for v in self.dxt_segments.values())


def write_log(log: DarshanLog, path: str | Path) -> None:
    """Serialize ``log`` to ``path`` (magic + zlib-compressed JSON)."""
    payload = {
        "job": {
            "job_id": log.job_id,
            "uid": log.uid,
            "exe": log.exe,
            "nprocs": log.nprocs,
            "start_time": log.start_time,
            "end_time": log.end_time,
        },
        "names": {str(rid): nr.path for rid, nr in log.names.items()},
        "records": [
            {
                "module": r.module,
                "record_id": r.record_id,
                "rank": r.rank,
                "counters": r.counters,
                "fcounters": r.fcounters,
            }
            for r in log.records
        ],
        "dxt": [
            {
                "module": module,
                "rank": rank,
                "record_id": rid,
                "segments": [
                    [s.op, s.offset, s.length, s.start, s.end] for s in segs
                ],
            }
            for (module, rank, rid), segs in log.dxt_segments.items()
        ],
        "heatmap": log.heatmap.to_payload() if log.heatmap is not None else None,
    }
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    Path(path).write_bytes(_MAGIC + zlib.compress(raw, level=6))


def parse_log(path: str | Path) -> DarshanLog:
    """Load a log written by :func:`write_log`."""
    blob = Path(path).read_bytes()
    if not blob.startswith(_MAGIC):
        raise LogFormatError(f"{path}: bad magic (not a reproduction Darshan log)")
    try:
        payload = json.loads(zlib.decompress(blob[len(_MAGIC):]))
    except (zlib.error, json.JSONDecodeError) as exc:
        raise LogFormatError(f"{path}: corrupt log payload") from exc

    job = payload["job"]
    records = [
        DarshanRecord(
            module=r["module"],
            record_id=r["record_id"],
            rank=r["rank"],
            counters=r["counters"],
            fcounters=r["fcounters"],
        )
        for r in payload["records"]
    ]
    names = {
        int(rid): NameRecord(int(rid), p) for rid, p in payload["names"].items()
    }
    dxt: dict[tuple[str, int, int], list[DxtSegment]] = {}
    for entry in payload["dxt"]:
        key = (entry["module"], entry["rank"], entry["record_id"])
        dxt[key] = [DxtSegment(*seg) for seg in entry["segments"]]
    heatmap = None
    if payload.get("heatmap") is not None:
        from repro.darshan.heatmap import Heatmap

        heatmap = Heatmap.from_payload(payload["heatmap"])
    return DarshanLog(
        job_id=job["job_id"],
        uid=job["uid"],
        exe=job["exe"],
        nprocs=job["nprocs"],
        start_time=job["start_time"],
        end_time=job["end_time"],
        records=records,
        names=names,
        dxt_segments=dxt,
        heatmap=heatmap,
    )
