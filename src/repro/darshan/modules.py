"""Module hooks: the wrappers darshan-runtime interposes per layer.

One :class:`ModuleHook` instance wraps one client (POSIX, STDIO, MPIIO
file or HDF5 file).  It translates completed operations into counter
updates on the right :class:`~repro.darshan.records.DarshanRecord`,
feeds DXT, emits LUSTRE striping records for files living on Lustre,
and forwards every event through
:meth:`~repro.darshan.runtime.DarshanRuntime.observe` to run-time
listeners (the connector).
"""

from __future__ import annotations

from repro.darshan.counters import size_bucket_suffix
from repro.darshan.records import DarshanRecord, module_key_table
from repro.fs.base import OpRecord
from repro.fs.lustre import LustreFileSystem
from repro.fs.posix import IOContext

__all__ = ["ModuleHook"]

#: Modules that carry the common size-histogram / access-pattern counters.
_PATTERN_MODULES = ("POSIX", "STDIO", "H5D")

#: Access-pattern counter suffixes, pre-built (hot path: one lookup per
#: read/write instead of two f-string constructions).
_SEQ_SUFFIX = {"read": "SEQ_READS", "write": "SEQ_WRITES"}
_CONSEC_SUFFIX = {"read": "CONSEC_READS", "write": "CONSEC_WRITES"}


class ModuleHook:
    """Instrumentation hook bound to one client."""

    def __init__(self, runtime, client):
        self.runtime = runtime
        self.client = client
        # The file system underneath, when discoverable (PosixClient has
        # .fs; StdioClient has .posix.fs; MPIIO/H5 resolve per rank).
        self.fs = getattr(client, "fs", None)
        if self.fs is None and hasattr(client, "posix"):
            self.fs = client.posix.fs

    # -- hook contract ------------------------------------------------------

    def after_op(self, module: str, context: IOContext, record: OpRecord, handle):
        runtime = self.runtime
        if module not in runtime.config.enabled_modules:
            return
        rec = runtime.record_for(module, record.path, context.rank)
        self._update_counters(module, rec, record, runtime)
        if module == "POSIX":
            self._maybe_emit_lustre(context, record)
        hdf5 = self._hdf5_meta(record)
        yield from runtime.observe(module, context, record, rec, hdf5)

    # -- counter bookkeeping ----------------------------------------------------

    def _update_counters(
        self, module: str, rec: DarshanRecord, record: OpRecord, runtime
    ) -> None:
        op = record.op
        rel_start = record.start - runtime.start_time
        rel_end = record.end - runtime.start_time

        if module == "MPIIO":
            self._update_mpiio(rec, record, rel_start, rel_end)
            return

        if op == "read" or op == "write":
            # The two hot ops (tens of thousands per campaign) update
            # their counters through the per-module key table directly —
            # same keys, same order, same first/last stamp rules as the
            # DarshanRecord helpers, minus five method calls per event.
            self._update_rw(module, rec, record, runtime, op, rel_start, rel_end)
            if module == "H5D":
                self._update_h5d_meta(rec, record)
            return

        if op == "open":
            rec.inc("OPENS")
            rec.stamp("F_OPEN_START_TIMESTAMP", rel_start, first=True)
            rec.stamp("F_OPEN_END_TIMESTAMP", rel_end)
            rec.add_time("F_META_TIME", record.duration)
        elif op == "close":
            rec.inc("CLOSES")
            rec.stamp("F_CLOSE_START_TIMESTAMP", rel_start, first=True)
            rec.stamp("F_CLOSE_END_TIMESTAMP", rel_end)
            rec.add_time("F_META_TIME", record.duration)
        elif op == "fsync":
            if module == "POSIX":
                rec.inc("FSYNCS")
            else:  # STDIO fflush / H5 flush
                rec.inc("FLUSHES")
            rec.add_time("F_META_TIME", record.duration)
        elif op == "flush":
            rec.inc("FLUSHES")
        elif op == "stat":
            if module == "POSIX":
                rec.inc("STATS")
            rec.add_time("F_META_TIME", record.duration)

        if module == "H5D":
            self._update_h5d_meta(rec, record)

    def _update_rw(
        self, module, rec, record, runtime, op, rel_start, rel_end
    ) -> None:
        """Direct-key counter updates for the hot read/write ops.

        Behaviorally identical to the ``inc``/``maximize``/``stamp``/
        ``add_time`` helper sequence (plus :meth:`_rw_switch` and
        :meth:`_access_pattern`) — updates land on the same keys in the
        same order with the same first/last rules.
        """
        K = module_key_table(module)
        c = rec.counters
        fc = rec.fcounters
        nbytes = record.nbytes
        if op == "read":
            k_count, k_bytes, k_max = "READS", "BYTES_READ", "MAX_BYTE_READ"
            k_start = "F_READ_START_TIMESTAMP"
            k_end = "F_READ_END_TIMESTAMP"
            k_time = "F_READ_TIME"
            k_seq, k_consec = "SEQ_READS", "CONSEC_READS"
        else:
            k_count, k_bytes, k_max = "WRITES", "BYTES_WRITTEN", "MAX_BYTE_WRITTEN"
            k_start = "F_WRITE_START_TIMESTAMP"
            k_end = "F_WRITE_END_TIMESTAMP"
            k_time = "F_WRITE_TIME"
            k_seq, k_consec = "SEQ_WRITES", "CONSEC_WRITES"
        c[K[k_count]] += 1
        c[K[k_bytes]] += nbytes
        if nbytes:
            key = K[k_max]
            max_byte = record.offset + nbytes - 1
            if max_byte > c[key]:
                c[key] = max_byte
        key = K[k_start]
        current = fc[key]
        if current == 0.0 or rel_start < current:
            fc[key] = rel_start
        key = K[k_end]
        if rel_end > fc[key]:
            fc[key] = rel_end
        fc[K[k_time]] += record.duration
        # _rw_switch, inlined.
        rw_key = (module, rec.record_id, rec.rank)
        last_rw = runtime._last_rw.get(rw_key)
        if last_rw is not None and last_rw != op:
            c[K["RW_SWITCHES"]] += 1
        runtime._last_rw[rw_key] = op
        # _access_pattern, inlined.
        if module in _PATTERN_MODULES:
            c[K[size_bucket_suffix(op, nbytes)]] += 1
            ext_key = (module, rec.record_id, rec.rank, op)
            last_end = runtime._last_extent.get(ext_key)
            if last_end is not None:
                if record.offset >= last_end:
                    c[K[k_seq]] += 1
                if record.offset == last_end:
                    c[K[k_consec]] += 1
            runtime._last_extent[ext_key] = record.offset + nbytes

    def _update_h5d_meta(self, rec, record) -> None:
        h5 = self._hdf5_meta(record)
        if h5 is not None:
            # Selection counters are cumulative on the dataset; flush
            # records carry -1 sentinels, which must not clobber them.
            if h5["pt_sel"] >= 0:
                rec.maximize("POINT_SELECTS", h5["pt_sel"])
            if h5["reg_hslab"] >= 0:
                rec.maximize("REGULAR_HYPERSLAB_SELECTS", h5["reg_hslab"])
            if h5["irreg_hslab"] >= 0:
                rec.maximize("IRREGULAR_HYPERSLAB_SELECTS", h5["irreg_hslab"])
            if h5["ndims"] >= 0:
                rec.set_counter("DATASPACE_NDIMS", h5["ndims"])
            if h5["npoints"] >= 0:
                rec.maximize("DATASPACE_NPOINTS", h5["npoints"])

    def _update_mpiio(self, rec, record, rel_start, rel_end) -> None:
        op = record.op
        if op == "open":
            rec.inc("OPENS")
            rec.stamp("F_OPEN_START_TIMESTAMP", rel_start, first=True)
            rec.stamp("F_OPEN_END_TIMESTAMP", rel_end)
            rec.add_time("F_META_TIME", record.duration)
        elif op == "close":
            rec.inc("CLOSES")
            rec.stamp("F_CLOSE_START_TIMESTAMP", rel_start, first=True)
            rec.stamp("F_CLOSE_END_TIMESTAMP", rel_end)
            rec.add_time("F_META_TIME", record.duration)
        elif op == "read":
            rec.inc("COLL_READS" if record.collective else "INDEP_READS")
            rec.inc("BYTES_READ", record.nbytes)
            if record.nbytes:
                rec.maximize("MAX_BYTE_READ", record.offset + record.nbytes - 1)
            rec.stamp("F_READ_START_TIMESTAMP", rel_start, first=True)
            rec.stamp("F_READ_END_TIMESTAMP", rel_end)
            rec.add_time("F_READ_TIME", record.duration)
            self._rw_switch("MPIIO", rec, "read")
        elif op == "write":
            rec.inc("COLL_WRITES" if record.collective else "INDEP_WRITES")
            rec.inc("BYTES_WRITTEN", record.nbytes)
            if record.nbytes:
                rec.maximize("MAX_BYTE_WRITTEN", record.offset + record.nbytes - 1)
            rec.stamp("F_WRITE_START_TIMESTAMP", rel_start, first=True)
            rec.stamp("F_WRITE_END_TIMESTAMP", rel_end)
            rec.add_time("F_WRITE_TIME", record.duration)
            self._rw_switch("MPIIO", rec, "write")

    def _rw_switch(self, module: str, rec: DarshanRecord, direction: str) -> None:
        key = (module, rec.record_id, rec.rank)
        last = self.runtime._last_rw.get(key)
        if last is not None and last != direction:
            rec.inc("RW_SWITCHES")
        self.runtime._last_rw[key] = direction

    def _access_pattern(
        self, module: str, rec: DarshanRecord, direction: str, record: OpRecord
    ) -> None:
        """Size histogram + sequential/consecutive access counters."""
        if module not in _PATTERN_MODULES:
            return
        rec.inc(size_bucket_suffix(direction, record.nbytes))
        key = (module, rec.record_id, rec.rank, direction)
        last_end = self.runtime._last_extent.get(key)
        if last_end is not None:
            if record.offset >= last_end:
                rec.inc(_SEQ_SUFFIX[direction])
            if record.offset == last_end:
                rec.inc(_CONSEC_SUFFIX[direction])
        self.runtime._last_extent[key] = record.offset + record.nbytes

    # -- LUSTRE static module -------------------------------------------------------

    def _maybe_emit_lustre(self, context: IOContext, record: OpRecord) -> None:
        if record.op != "open" or not isinstance(self.fs, LustreFileSystem):
            return
        if "LUSTRE" not in self.runtime.config.enabled_modules:
            return
        rec = self.runtime.record_for("LUSTRE", record.path, context.rank)
        params = self.fs.params
        rec.set_counter("STRIPE_SIZE", params.stripe_size_bytes)
        rec.set_counter("STRIPE_WIDTH", params.stripe_count)
        rec.set_counter("STRIPE_OFFSET", self.fs.stripe_offset(record.path))
        rec.set_counter("OSTS", params.n_osts)

    # -- HDF5 metadata ---------------------------------------------------------------

    @staticmethod
    def _hdf5_meta(record: OpRecord) -> dict | None:
        if not hasattr(record, "data_set"):
            return None
        return {
            "data_set": record.data_set,
            "ndims": record.ndims,
            "npoints": record.npoints,
            "pt_sel": record.pt_sel,
            "reg_hslab": record.reg_hslab,
            "irreg_hslab": record.irreg_hslab,
        }
