"""Per-(module, file, rank) counter records and the name table.

A :class:`DarshanRecord` is the unit the real tool stores in its log:
one bundle of counters for one file record id, one rank and one module.
:class:`NameRecord` maps record ids back to paths (the log's name table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.darshan.counters import MODULE_COUNTERS, MODULE_FCOUNTERS

__all__ = ["DarshanRecord", "NameRecord", "module_key_table"]

#: (module, suffix) -> validated "<MODULE>_<suffix>" key.  Counter names
#: are a per-module constant, so the f-string build and the two
#: membership checks in :meth:`DarshanRecord._key` only need to run once
#: per distinct (module, suffix) — not once per counter update.
_KEY_CACHE: dict[tuple[str, str], str] = {}

_MODULE_KEY_TABLES: dict[str, dict[str, str]] = {}


def module_key_table(module: str) -> dict[str, str]:
    """suffix -> full counter/fcounter key for ``module``.

    The hot counter-update paths index ``rec.counters`` directly with
    keys from this table instead of going through :meth:`DarshanRecord`
    helper methods; a suffix the module does not define is simply
    absent, so misuse still raises ``KeyError`` like ``_key`` would.
    """
    table = _MODULE_KEY_TABLES.get(module)
    if table is None:
        prefix = len(module) + 1
        table = {
            name[prefix:]: name
            for name in (*MODULE_COUNTERS[module], *MODULE_FCOUNTERS[module])
        }
        _MODULE_KEY_TABLES[module] = table
    return table


@dataclass(frozen=True)
class NameRecord:
    """Record-id → path mapping entry."""

    record_id: int
    path: str


@dataclass
class DarshanRecord:
    """Counters for one (module, record_id, rank) triple."""

    module: str
    record_id: int
    rank: int
    counters: dict = field(default_factory=dict)
    fcounters: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.module not in MODULE_COUNTERS:
            raise ValueError(f"unknown Darshan module {self.module!r}")
        for name in MODULE_COUNTERS[self.module]:
            self.counters.setdefault(name, 0)
        for name in MODULE_FCOUNTERS[self.module]:
            self.fcounters.setdefault(name, 0.0)

    # -- counter updates ----------------------------------------------------

    def inc(self, suffix: str, amount: int = 1) -> None:
        """Increment the module-prefixed counter ``<MODULE>_<suffix>``."""
        self.counters[self._key(suffix)] += amount

    def maximize(self, suffix: str, value: int) -> None:
        """Raise the module-prefixed counter to ``value`` if larger."""
        key = self._key(suffix)
        if value > self.counters[key]:
            self.counters[key] = value

    def set_counter(self, suffix: str, value: int) -> None:
        self.counters[self._key(suffix)] = value

    def add_time(self, suffix: str, seconds: float) -> None:
        self.fcounters[self._key(suffix)] += seconds

    def stamp(self, suffix: str, when: float, *, first: bool = False) -> None:
        """Record a timestamp fcounter.

        With ``first=True`` only the earliest value is kept (START
        timestamps); otherwise the latest wins (END timestamps).
        """
        key = self._key(suffix)
        current = self.fcounters[key]
        if first:
            if current == 0.0 or when < current:
                self.fcounters[key] = when
        else:
            if when > current:
                self.fcounters[key] = when

    def get(self, suffix: str) -> int:
        return self.counters[self._key(suffix)]

    def fget(self, suffix: str) -> float:
        return self.fcounters[self._key(suffix)]

    def _key(self, suffix: str) -> str:
        module = self.module
        cached = _KEY_CACHE.get((module, suffix))
        if cached is not None:
            return cached
        key = f"{module}_{suffix}"
        if key not in self.counters and key not in self.fcounters:
            raise KeyError(f"module {self.module} has no counter {key}")
        _KEY_CACHE[(module, suffix)] = key
        return key
