"""darshan-runtime: job-scoped instrumentation state.

One :class:`DarshanRuntime` exists per application run (the real library
initializes at ``MPI_Init`` and shuts down at ``MPI_Finalize``).  It

* owns the per-(module, file, rank) counter records and the name table;
* owns the DXT tracer;
* emulates ``clock_gettime`` via :meth:`wtime` — vanilla Darshan stores
  only these job-relative times;
* implements the paper's modification: with
  ``config.absolute_timestamps`` the runtime threads the absolute time
  through every module (the "time struct pointer" of Section IV-A) and
  delivers a run-time :class:`IOEvent` to registered listeners — the
  seam where the Darshan-LDMS connector plugs in.

Listeners are generator-based and run on the application rank's clock,
so whatever time a listener charges (JSON formatting!) directly slows
the application — reproducing the paper's overhead mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.darshan.counters import (
    MODULE_COUNTERS,
    SUPPORTED_MODULES,
    record_id_for,
)
from repro.darshan.dxt import DxtTracer
from repro.darshan.records import DarshanRecord, NameRecord
from repro.fs.base import OpRecord
from repro.fs.posix import IOContext
from repro.sim import Environment

__all__ = ["DarshanConfig", "DarshanRuntime", "IOEvent"]

#: Ops that produce run-time events (Table I: read, write, open, close).
_EVENT_OPS = frozenset({"open", "close", "read", "write"})

#: module -> its RW_SWITCHES counter key, for the per-event read in
#: :meth:`DarshanRuntime.observe` (modules without the counter are
#: absent, so a misuse still raises ``KeyError`` like ``.get`` would).
_RW_SWITCHES_KEY = {
    m: f"{m}_RW_SWITCHES"
    for m in SUPPORTED_MODULES
    if f"{m}_RW_SWITCHES" in MODULE_COUNTERS[m]
}


@dataclass(frozen=True)
class DarshanConfig:
    """Runtime feature switches (the real tool's environment variables)."""

    enable_dxt: bool = True
    #: HEATMAP module: constant-memory time-binned intensity per rank.
    enable_heatmap: bool = True
    #: The paper's modification: expose absolute timestamps to listeners.
    absolute_timestamps: bool = True
    enabled_modules: tuple = SUPPORTED_MODULES
    max_dxt_segments_per_record: int = 1 << 20
    heatmap_bins: int = 128

    def __post_init__(self) -> None:
        unknown = set(self.enabled_modules) - set(SUPPORTED_MODULES)
        if unknown:
            raise ValueError(f"unknown Darshan modules: {sorted(unknown)}")


@dataclass(frozen=True)
class IOEvent:
    """One instrumented I/O event, as seen by run-time listeners.

    ``start``/``end`` are absolute (epoch-like) times when the runtime
    was built with ``absolute_timestamps``; otherwise they are
    job-relative, which is all vanilla Darshan can provide.
    """

    module: str
    op: str
    path: str
    record_id: int
    context: IOContext
    offset: int
    nbytes: int
    start: float
    end: float
    cnt: int
    switches: int
    flushes: int
    max_byte: int
    collective: bool = False
    #: HDF5 metadata (data_set/ndims/npoints/pt_sel/reg_hslab/irreg_hslab)
    #: or None for non-HDF5 modules.
    hdf5: dict | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def timestamp(self) -> float:
        """The paper's headline metric: absolute end time of the op."""
        return self.end


class DarshanRuntime:
    """Instrumentation state for one application run."""

    def __init__(
        self,
        env: Environment,
        *,
        job_id: int,
        uid: int,
        exe: str,
        nprocs: int,
        config: DarshanConfig = DarshanConfig(),
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.env = env
        self.config = config
        self.job_id = job_id
        self.uid = uid
        self.exe = exe
        self.nprocs = nprocs
        self.start_time = env.now
        self.end_time: float | None = None

        self.records: dict[tuple[str, int, int], DarshanRecord] = {}
        self.names: dict[int, NameRecord] = {}
        self.dxt = DxtTracer(config.max_dxt_segments_per_record) if config.enable_dxt else None
        if config.enable_heatmap:
            from repro.darshan.heatmap import Heatmap

            self.heatmap = Heatmap(n_bins=config.heatmap_bins)
        else:
            self.heatmap = None
        self._listeners: list = []
        # Per-(module, rank) op count since last close (Table I "cnt").
        self._op_counts: dict[tuple[str, int], int] = {}
        # Per-(module, record, rank) last data direction, for RW_SWITCHES.
        self._last_rw: dict[tuple[str, int, int], str] = {}
        # Per-(module, record, rank, op) last end offset, for SEQ/CONSEC.
        self._last_extent: dict[tuple[str, int, int, str], int] = {}
        #: Total events observed (all modules, all ranks).
        self.total_events = 0

    # -- clock ------------------------------------------------------------

    def wtime(self) -> float:
        """Job-relative seconds, vanilla Darshan's ``clock_gettime`` use."""
        return self.env.now - self.start_time

    # -- listeners -----------------------------------------------------------

    def add_event_listener(self, listener) -> None:
        """Register a run-time listener (generator ``on_io_event(event)``)."""
        if not hasattr(listener, "on_io_event"):
            raise TypeError(f"listener {listener!r} lacks on_io_event")
        self._listeners.append(listener)

    # -- instrumentation attachment ----------------------------------------------

    def instrument(self, client) -> None:
        """Wrap a POSIX/STDIO/MPIIO/H5 client with Darshan recording."""
        from repro.darshan.modules import ModuleHook

        client.add_hook(ModuleHook(self, client))

    # -- record access ---------------------------------------------------------

    def record_for(self, module: str, path: str, rank: int) -> DarshanRecord:
        rid = record_id_for(path)
        key = (module, rid, rank)
        rec = self.records.get(key)
        if rec is None:
            rec = DarshanRecord(module=module, record_id=rid, rank=rank)
            self.records[key] = rec
            self.names.setdefault(rid, NameRecord(rid, path))
        return rec

    def module_records(self, module: str) -> list[DarshanRecord]:
        return [r for (m, _, _), r in self.records.items() if m == module]

    # -- event plumbing (called by ModuleHook) --------------------------------------

    def observe(
        self,
        module: str,
        context: IOContext,
        op_record: OpRecord,
        darshan_record: DarshanRecord,
        hdf5: dict | None,
    ):
        """Generator: count the op, trace it, and fan out to listeners."""
        self.total_events += 1
        op = op_record.op
        rank = context.rank
        nbytes = op_record.nbytes
        offset = op_record.offset
        start_time = self.start_time
        if self.heatmap is not None and module == "POSIX":
            self.heatmap.record(
                rank,
                op,
                nbytes,
                op_record.start - start_time,
                op_record.end - start_time,
            )
        if self.dxt is not None:
            self.dxt.trace(
                module,
                rank,
                darshan_record.record_id,
                op,
                offset,
                nbytes,
                op_record.start - start_time,
                op_record.end - start_time,
            )
        if op not in _EVENT_OPS or not self._listeners:
            if op == "close":
                self._op_counts[(module, rank)] = 0
            return

        count_key = (module, rank)
        cnt = self._op_counts.get(count_key, 0) + 1
        self._op_counts[count_key] = 0 if op == "close" else cnt

        if op == "read" or op == "write":
            max_byte = offset + nbytes - 1
            switches = (
                darshan_record.counters[_RW_SWITCHES_KEY[module]]
                if module != "LUSTRE" else -1
            )
        else:
            max_byte = -1
            switches = -1
        if module in ("H5F", "H5D"):
            flushes = darshan_record.counters[module + "_FLUSHES"]
        else:
            flushes = -1

        if self.config.absolute_timestamps:
            start, end = op_record.start, op_record.end
        else:
            start = op_record.start - start_time
            end = op_record.end - start_time

        event = IOEvent(
            module=module,
            op=op,
            path=op_record.path,
            record_id=darshan_record.record_id,
            context=context,
            offset=offset,
            nbytes=nbytes,
            start=start,
            end=end,
            cnt=cnt,
            switches=switches,
            flushes=flushes,
            max_byte=max_byte,
            collective=op_record.collective,
            hdf5=hdf5,
        )
        for listener in self._listeners:
            yield from listener.on_io_event(event)

    # -- shutdown -----------------------------------------------------------------

    def finalize(self):
        """End-of-job reduction; returns the in-memory log object."""
        from repro.darshan.logfile import DarshanLog

        self.end_time = self.env.now
        return DarshanLog(
            job_id=self.job_id,
            uid=self.uid,
            exe=self.exe,
            nprocs=self.nprocs,
            start_time=self.start_time,
            end_time=self.end_time,
            records=list(self.records.values()),
            names=dict(self.names),
            dxt_segments=self.dxt.all_segments() if self.dxt else {},
            heatmap=self.heatmap,
        )
