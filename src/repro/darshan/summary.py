"""darshan-job-summary: the human-readable per-job report.

The real tool renders a PDF; we render structured text with the same
content blocks: the job header, per-module I/O volumes and time
breakdown, an estimated aggregate performance figure, the access-size
histogram, access-pattern ratios, the busiest files, and (when the
HEATMAP module ran) an ASCII intensity strip per op.
"""

from __future__ import annotations

import numpy as np

from repro.darshan.counters import SIZE_BUCKETS
from repro.darshan.logfile import DarshanLog

__all__ = ["job_summary", "render_job_summary"]


def job_summary(log: DarshanLog) -> dict:
    """The report's data, as a dict (render separately)."""
    summary = log.summary()
    modules = {}
    for mod in log.modules():
        agg = summary[mod]
        bytes_read = agg.get(f"{mod}_BYTES_READ", 0)
        bytes_written = agg.get(f"{mod}_BYTES_WRITTEN", 0)
        read_time = agg.get(f"{mod}_F_READ_TIME", 0.0)
        write_time = agg.get(f"{mod}_F_WRITE_TIME", 0.0)
        meta_time = agg.get(f"{mod}_F_META_TIME", 0.0)
        io_time = read_time + write_time + meta_time
        modules[mod] = {
            "bytes_read": bytes_read,
            "bytes_written": bytes_written,
            "reads": agg.get(f"{mod}_READS", 0),
            "writes": agg.get(f"{mod}_WRITES", 0),
            "opens": agg.get(f"{mod}_OPENS", 0),
            "read_time_s": read_time,
            "write_time_s": write_time,
            "meta_time_s": meta_time,
            # The classic darshan-job-summary "estimated performance":
            # moved bytes over cumulative I/O time.
            "est_mib_per_s": (
                (bytes_read + bytes_written) / 2**20 / io_time if io_time > 0 else 0.0
            ),
        }

    histogram = {"read": {}, "write": {}}
    posix = summary.get("POSIX", {})
    for _, _, name in SIZE_BUCKETS:
        histogram["read"][name] = posix.get(f"POSIX_SIZE_READ_{name}", 0)
        histogram["write"][name] = posix.get(f"POSIX_SIZE_WRITE_{name}", 0)

    total_reads = posix.get("POSIX_READS", 0)
    total_writes = posix.get("POSIX_WRITES", 0)
    patterns = {
        "seq_read_pct": _pct(posix.get("POSIX_SEQ_READS", 0), total_reads),
        "seq_write_pct": _pct(posix.get("POSIX_SEQ_WRITES", 0), total_writes),
        "consec_read_pct": _pct(posix.get("POSIX_CONSEC_READS", 0), total_reads),
        "consec_write_pct": _pct(posix.get("POSIX_CONSEC_WRITES", 0), total_writes),
    }

    # Busiest files by moved bytes (POSIX layer).
    per_file: dict[int, int] = {}
    for rec in log.records_for("POSIX"):
        moved = rec.get("BYTES_READ") + rec.get("BYTES_WRITTEN")
        per_file[rec.record_id] = per_file.get(rec.record_id, 0) + moved
    busiest = [
        {"path": log.path_for(rid), "bytes": moved}
        for rid, moved in sorted(per_file.items(), key=lambda kv: -kv[1])[:5]
    ]

    return {
        "job": {
            "job_id": log.job_id,
            "uid": log.uid,
            "exe": log.exe,
            "nprocs": log.nprocs,
            "runtime_s": log.runtime_seconds,
        },
        "modules": modules,
        "size_histogram": histogram,
        "access_patterns": patterns,
        "busiest_files": busiest,
        "heatmap": log.heatmap,
    }


def _pct(part: float, whole: float) -> float:
    return 100.0 * part / whole if whole else 0.0


def render_job_summary(log: DarshanLog, width: int = 72) -> str:
    """The report as text."""
    data = job_summary(log)
    job = data["job"]
    lines = [
        "=" * width,
        f"darshan job summary — job {job['job_id']} ({job['exe']})",
        "=" * width,
        f"uid: {job['uid']}   nprocs: {job['nprocs']}   "
        f"runtime: {job['runtime_s']:.2f} s",
        "",
        "per-module I/O:",
        f"  {'module':<8} {'opens':>7} {'reads':>8} {'writes':>8} "
        f"{'MiB read':>10} {'MiB written':>12} {'est MiB/s':>10}",
    ]
    for mod, m in sorted(data["modules"].items()):
        lines.append(
            f"  {mod:<8} {m['opens']:>7} {m['reads']:>8} {m['writes']:>8} "
            f"{m['bytes_read'] / 2**20:>10.1f} {m['bytes_written'] / 2**20:>12.1f} "
            f"{m['est_mib_per_s']:>10.1f}"
        )
    lines += ["", "POSIX access sizes:"]
    hist = data["size_histogram"]
    top = max(
        [*hist["read"].values(), *hist["write"].values(), 1]
    )
    for _, _, name in SIZE_BUCKETS:
        r, w = hist["read"][name], hist["write"][name]
        if r == 0 and w == 0:
            continue
        bar_r = "#" * max(int(r / top * 24), 1 if r else 0)
        bar_w = "#" * max(int(w / top * 24), 1 if w else 0)
        lines.append(f"  {name:>9}  R {r:>8} {bar_r:<24} W {w:>8} {bar_w}")
    p = data["access_patterns"]
    lines += [
        "",
        "access patterns (POSIX):",
        f"  sequential: {p['seq_read_pct']:.0f}% of reads, "
        f"{p['seq_write_pct']:.0f}% of writes",
        f"  consecutive: {p['consec_read_pct']:.0f}% of reads, "
        f"{p['consec_write_pct']:.0f}% of writes",
        "",
        "busiest files:",
    ]
    for f in data["busiest_files"]:
        lines.append(f"  {f['bytes'] / 2**20:>10.1f} MiB  {f['path']}")
    if data["heatmap"] is not None and data["heatmap"].ranks():
        lines += ["", "I/O intensity over time (all ranks):"]
        hm = data["heatmap"]
        for op in ("read", "write"):
            series = hm.matrix(op).sum(axis=0)
            peak = series.max() or 1.0
            strip = "".join(
                "▁▂▃▄▅▆▇█"[min(int(v / peak * 7.999), 7)] if v > 0 else " "
                for v in series[: width - 10]
            )
            lines.append(f"  {op:>5} |{strip}|")
    lines.append("=" * width)
    return "\n".join(lines)
