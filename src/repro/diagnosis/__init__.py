"""repro.diagnosis: live runtime diagnosis of the monitoring pipeline.

The paper's claim is *run-time* diagnosis; this package delivers it for
the reproduction's own pipeline.  A :class:`DiagnosisEngine` runs as a
periodic process **inside simulated time**, evaluating declarative
:class:`~repro.diagnosis.rules.Rule`\\ s (rank imbalance, throughput
collapse vs a trailing baseline, latency-SLO breach, spill/dead-letter
growth, store stalls, queue backlogs) over sliding windows fed by a
live tail on DSOS ingest and the existing telemetry surfaces.  Alerts
move ``pending → firing → resolved`` with ``for_duration`` hysteresis
and land in an :class:`~repro.diagnosis.alerts.IncidentLog`; when a
fault plan is armed, :mod:`~repro.diagnosis.scoring` correlates the
incidents against the injector's ``AppliedFault`` ground truth —
per-fault detection latency, precision and recall.

Like telemetry, the whole subsystem is opt-in and observation-only:
its evaluation ticks are *weak* simulation events and its sampling is
read-only, so a seeded campaign is byte-identical with the engine
armed or absent (pinned by the property suite).
"""

from repro.diagnosis.alerts import FIRING, PENDING, RESOLVED, Alert, IncidentLog
from repro.diagnosis.engine import DiagnosisConfig, DiagnosisEngine, WindowView
from repro.diagnosis.explain import (
    CLASSIFIERS,
    EXPLAIN_METRICS,
    STRATEGY_WEIGHTS,
    VERDICT_CLASSES,
    BottleneckVerdict,
    ExplainReport,
    ExplainScore,
    Recommendation,
    check_explain,
    explain_campaign,
    explain_gauges,
    explain_job,
    explain_plan,
    score_verdicts,
)
from repro.diagnosis.features import FeatureVector, job_features
from repro.diagnosis.forensics import (
    BundleDiff,
    CaptureResult,
    bundle_timeline,
    capture_campaign,
    check_forensics,
    diff_bundles,
    match_bundles,
    timeline_panel,
)
from repro.diagnosis.rules import Rule, RuleEval, default_rules
from repro.diagnosis.scoring import (
    DETECTORS,
    DiagnosisScore,
    FaultWindow,
    fault_windows,
    score_incidents,
)
from repro.diagnosis.signals import (
    Signal,
    SignalCatalog,
    default_catalog,
    expected_signals,
)
from repro.diagnosis.tail import IngestTail
from repro.diagnosis.windows import SeriesWindow

__all__ = [
    "Alert",
    "BottleneckVerdict",
    "BundleDiff",
    "CLASSIFIERS",
    "CaptureResult",
    "DETECTORS",
    "DiagnosisConfig",
    "DiagnosisEngine",
    "DiagnosisScore",
    "EXPLAIN_METRICS",
    "ExplainReport",
    "ExplainScore",
    "FIRING",
    "FaultWindow",
    "FeatureVector",
    "IncidentLog",
    "IngestTail",
    "PENDING",
    "RESOLVED",
    "Recommendation",
    "Rule",
    "RuleEval",
    "STRATEGY_WEIGHTS",
    "SeriesWindow",
    "Signal",
    "SignalCatalog",
    "VERDICT_CLASSES",
    "WindowView",
    "bundle_timeline",
    "capture_campaign",
    "check_explain",
    "check_forensics",
    "default_catalog",
    "default_rules",
    "diff_bundles",
    "expected_signals",
    "explain_campaign",
    "explain_gauges",
    "explain_job",
    "explain_plan",
    "fault_windows",
    "job_features",
    "match_bundles",
    "score_incidents",
    "score_verdicts",
    "timeline_panel",
]
