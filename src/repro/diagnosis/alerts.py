"""Alert lifecycle and the incident log.

An :class:`Alert` moves ``pending → firing → resolved``:

* a rule whose condition holds creates a *pending* alert;
* the condition must keep holding for the rule's ``for_duration_s``
  before the alert *fires* (hysteresis — one bad window doesn't page);
* a pending alert whose condition clears is discarded silently;
* a firing alert whose condition clears *resolves* and stays in the
  :class:`IncidentLog` as history.

All timestamps are simulated seconds (absolute epoch, like every other
clock in the world).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Alert", "IncidentLog", "PENDING", "FIRING", "RESOLVED"]

PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"


@dataclass
class Alert:
    """One rule activation moving through the lifecycle."""

    rule: str
    severity: str
    t_pending: float
    state: str = PENDING
    t_fired: float | None = None
    t_resolved: float | None = None
    #: Worst observed rule value while the alert was active.
    peak_value: float = 0.0
    threshold: float = 0.0
    detail: str = ""
    #: Position in the :class:`IncidentLog` (assigned when the alert
    #: fires and is recorded; -1 while pending/discarded).  Forensic
    #: bundles cross-reference incidents by this id.
    incident_id: int = -1

    def fire(self, now: float) -> None:
        if self.state != PENDING:
            raise RuntimeError(f"cannot fire an alert in state {self.state!r}")
        self.state = FIRING
        self.t_fired = now

    def resolve(self, now: float) -> None:
        if self.state != FIRING:
            raise RuntimeError(f"cannot resolve an alert in state {self.state!r}")
        self.state = RESOLVED
        self.t_resolved = now

    def observe(self, value: float, detail: str) -> None:
        """Update the running worst-case while the condition holds."""
        if abs(value) >= abs(self.peak_value):
            self.peak_value = value
            self.detail = detail

    @property
    def duration_s(self) -> float | None:
        """Firing → resolved span (``None`` until both have happened)."""
        if self.t_fired is None or self.t_resolved is None:
            return None
        return self.t_resolved - self.t_fired

    def to_dict(self, epoch: float = 0.0) -> dict:
        """JSON-friendly view, times relative to ``epoch``."""
        return {
            "id": self.incident_id,
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "t_pending": self.t_pending - epoch,
            "t_fired": None if self.t_fired is None else self.t_fired - epoch,
            "t_resolved": (
                None if self.t_resolved is None else self.t_resolved - epoch
            ),
            "duration_s": self.duration_s,
            "peak_value": self.peak_value,
            "threshold": self.threshold,
            "detail": self.detail,
        }

    def to_json(self, epoch: float = 0.0) -> str:
        """Byte-stable serialization: sorted keys, compact separators,
        ``repr`` float formatting (shortest round-trip) — the same
        stability contract as ``repro trace --json``."""
        return json.dumps(self.to_dict(epoch), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: dict, epoch: float = 0.0) -> "Alert":
        """Rebuild an alert from :meth:`to_dict` output (round-trip)."""
        return cls(
            rule=d["rule"],
            severity=d["severity"],
            t_pending=d["t_pending"] + epoch,
            state=d["state"],
            t_fired=None if d["t_fired"] is None else d["t_fired"] + epoch,
            t_resolved=(
                None if d["t_resolved"] is None else d["t_resolved"] + epoch
            ),
            peak_value=d["peak_value"],
            threshold=d["threshold"],
            detail=d["detail"],
            incident_id=d["id"],
        )


@dataclass
class IncidentLog:
    """Every alert that ever reached ``firing``, in firing order."""

    incidents: list = field(default_factory=list)

    def record(self, alert: Alert) -> None:
        alert.incident_id = len(self.incidents)
        self.incidents.append(alert)

    def firing(self) -> list:
        """Alerts currently firing (not yet resolved)."""
        return [a for a in self.incidents if a.state == FIRING]

    def for_rule(self, rule: str) -> list:
        return [a for a in self.incidents if a.rule == rule]

    def __len__(self) -> int:
        return len(self.incidents)

    def __iter__(self):
        return iter(self.incidents)

    def to_dict(self, epoch: float = 0.0) -> dict:
        return {
            "incidents": [a.to_dict(epoch) for a in self.incidents],
            "count": len(self.incidents),
        }

    def to_json(self, epoch: float = 0.0) -> str:
        """Byte-stable serialization (see :meth:`Alert.to_json`)."""
        return json.dumps(self.to_dict(epoch), sort_keys=True,
                          separators=(",", ":"))

    def render_text(self, epoch: float = 0.0) -> str:
        lines = ["== incident log =="]
        if not self.incidents:
            lines.append("(no incidents)")
            return "\n".join(lines)
        lines.append(
            f"{'rule':<22} {'severity':<9} {'state':<9} {'fired':>9} "
            f"{'resolved':>9} {'value':>10} detail"
        )
        for a in self.incidents:
            fired = "-" if a.t_fired is None else f"{a.t_fired - epoch:9.3f}"
            resolved = (
                "-" if a.t_resolved is None else f"{a.t_resolved - epoch:9.3f}"
            )
            lines.append(
                f"{a.rule:<22} {a.severity:<9} {a.state:<9} {fired:>9} "
                f"{resolved:>9} {a.peak_value:>10.4g} {a.detail}"
            )
        return "\n".join(lines)
