"""Alert lifecycle and the incident log.

An :class:`Alert` moves ``pending → firing → resolved``:

* a rule whose condition holds creates a *pending* alert;
* the condition must keep holding for the rule's ``for_duration_s``
  before the alert *fires* (hysteresis — one bad window doesn't page);
* a pending alert whose condition clears is discarded silently;
* a firing alert whose condition clears *resolves* and stays in the
  :class:`IncidentLog` as history.

All timestamps are simulated seconds (absolute epoch, like every other
clock in the world).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Alert", "IncidentLog", "PENDING", "FIRING", "RESOLVED"]

PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"


@dataclass
class Alert:
    """One rule activation moving through the lifecycle."""

    rule: str
    severity: str
    t_pending: float
    state: str = PENDING
    t_fired: float | None = None
    t_resolved: float | None = None
    #: Worst observed rule value while the alert was active.
    peak_value: float = 0.0
    threshold: float = 0.0
    detail: str = ""

    def fire(self, now: float) -> None:
        if self.state != PENDING:
            raise RuntimeError(f"cannot fire an alert in state {self.state!r}")
        self.state = FIRING
        self.t_fired = now

    def resolve(self, now: float) -> None:
        if self.state != FIRING:
            raise RuntimeError(f"cannot resolve an alert in state {self.state!r}")
        self.state = RESOLVED
        self.t_resolved = now

    def observe(self, value: float, detail: str) -> None:
        """Update the running worst-case while the condition holds."""
        if abs(value) >= abs(self.peak_value):
            self.peak_value = value
            self.detail = detail

    def to_dict(self, epoch: float = 0.0) -> dict:
        """JSON-friendly view, times relative to ``epoch``."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "t_pending": self.t_pending - epoch,
            "t_fired": None if self.t_fired is None else self.t_fired - epoch,
            "t_resolved": (
                None if self.t_resolved is None else self.t_resolved - epoch
            ),
            "peak_value": self.peak_value,
            "threshold": self.threshold,
            "detail": self.detail,
        }


@dataclass
class IncidentLog:
    """Every alert that ever reached ``firing``, in firing order."""

    incidents: list = field(default_factory=list)

    def record(self, alert: Alert) -> None:
        self.incidents.append(alert)

    def firing(self) -> list:
        """Alerts currently firing (not yet resolved)."""
        return [a for a in self.incidents if a.state == FIRING]

    def for_rule(self, rule: str) -> list:
        return [a for a in self.incidents if a.rule == rule]

    def __len__(self) -> int:
        return len(self.incidents)

    def __iter__(self):
        return iter(self.incidents)

    def render_text(self, epoch: float = 0.0) -> str:
        lines = ["== incident log =="]
        if not self.incidents:
            lines.append("(no incidents)")
            return "\n".join(lines)
        lines.append(
            f"{'rule':<22} {'severity':<9} {'state':<9} {'fired':>9} "
            f"{'resolved':>9} {'value':>10} detail"
        )
        for a in self.incidents:
            fired = "-" if a.t_fired is None else f"{a.t_fired - epoch:9.3f}"
            resolved = (
                "-" if a.t_resolved is None else f"{a.t_resolved - epoch:9.3f}"
            )
            lines.append(
                f"{a.rule:<22} {a.severity:<9} {a.state:<9} {fired:>9} "
                f"{resolved:>9} {a.peak_value:>10.4g} {a.detail}"
            )
        return "\n".join(lines)
