"""The streaming diagnosis engine: rules evaluated *inside* sim time.

A :class:`DiagnosisEngine` arms against a campaign
:class:`~repro.experiments.world.World` as a periodic simulated
process.  Every ``eval_period_s`` of simulated time it samples the live
surfaces — the DSOS ingest tail, the telemetry collector's histograms,
every daemon's ``stats_snapshot()``, connector spill ledgers — into
sliding-window series, evaluates its declarative
:class:`~repro.diagnosis.rules.Rule` set, and drives alerts through the
``pending → firing → resolved`` lifecycle into an
:class:`~repro.diagnosis.alerts.IncidentLog`.

Purity: the engine's ticks are *weak* simulation events (see
:meth:`repro.sim.Environment.schedule`), so they can never extend a
run; evaluation is read-only, draws no randomness and schedules nothing
but its own next weak tick.  A seeded campaign with the engine armed is
byte-identical to one without — pinned by the property suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diagnosis.alerts import FIRING, PENDING, RESOLVED, Alert, IncidentLog
from repro.diagnosis.rules import default_rules
from repro.diagnosis.tail import IngestTail
from repro.diagnosis.windows import SeriesWindow
from repro.telemetry.collector import END_TO_END

__all__ = ["DiagnosisConfig", "DiagnosisEngine", "SAMPLED_SERIES", "WindowView"]

#: Every series the engine samples on each tick, as ``(name, unit,
#: description)`` — the declarative registry :meth:`DiagnosisEngine._sample`
#: iterates and the signal catalog (:mod:`repro.diagnosis.signals`) is
#: checked against: a series added here without a catalog entry fails
#: the catalog completeness check (``repro fleet --catalog --check``).
SAMPLED_SERIES = (
    ("stored_total", "messages",
     "messages landed in DSOS so far (cumulative)"),
    ("published_total", "messages",
     "messages published on compute daemons so far (cumulative)"),
    ("e2e_count", "messages",
     "stored messages with a measured end-to-end latency"),
    ("e2e_total_s", "seconds",
     "sum of end-to-end latencies over all stored messages"),
    ("daemons_failed", "daemons",
     "fabric daemons currently reporting failed"),
    ("forward_queue_depth", "messages",
     "total forward-outbox depth across the fabric"),
    ("retries_total", "sends",
     "forward send retries so far (cumulative)"),
    ("dead_letters_total", "messages",
     "messages dead-lettered after exhausted retries (cumulative)"),
    ("slow_pending", "messages",
     "messages deferred by an active slow-store episode"),
    ("spill_parked", "events",
     "events parked in connector spill buffers awaiting replay"),
    ("ingest_backlog", "messages",
     "queue depth + slow-store deferrals + spill-parked events"),
    ("store_replicas_down", "daemons",
     "dsosd replicas currently crashed (0 on a legacy flat cluster)"),
    ("store_under_replicated", "objects",
     "objects below min(R, live replicas) copies — repair owes them"),
    ("store_replica_lag", "objects",
     "worst applied-object gap between live replicas of one shard"),
    ("store_shard_skew", "objects",
     "visible-object spread between the fullest and emptiest shard"),
)


@dataclass(frozen=True)
class DiagnosisConfig:
    """Tuning for one engine: cadence, windows, rule thresholds."""

    #: Simulated seconds between rule evaluations.
    eval_period_s: float = 0.25
    #: Sliding-window width rules evaluate over.
    window_s: float = 1.0
    #: Default firing hysteresis: a condition must hold this long.
    for_duration_s: float = 0.5
    #: End-to-end latency SLO (windowed mean, seconds).
    latency_slo_s: float = 0.5
    #: Minimum stored messages in a window before the SLO rule speaks.
    slo_min_count: int = 10
    #: ``stored rate < collapse_frac * baseline`` counts as a collapse.
    collapse_frac: float = 0.25
    #: Trailing windows forming the collapse baseline.
    baseline_windows: int = 4
    #: Baseline rates below this (msgs/s) are "idle", not a baseline.
    min_baseline_rate: float = 20.0
    #: Σ forward outbox depth that counts as a backlog.
    queue_depth_threshold: int = 512
    #: Rank imbalance: worst rank > ratio × mean, over >= min events.
    imbalance_ratio: float = 4.0
    imbalance_min_events: int = 64
    #: Replica lag (objects) a quorum-replicated store may carry before
    #: the replica_lag rule speaks.
    replica_lag_threshold: int = 0
    #: Shard skew (objects between fullest and emptiest shard) before
    #: the shard_skew rule speaks.  Small campaigns are legitimately
    #: skewed — job-hash routing puts one job on one shard — so the
    #: default only catches fleet-scale imbalance.
    shard_skew_threshold: int = 1024
    #: Rule set override (None = :func:`default_rules` from this config).
    rules: tuple | None = None

    def __post_init__(self):
        if self.eval_period_s <= 0:
            raise ValueError("eval_period_s must be positive")
        if self.window_s < self.eval_period_s:
            raise ValueError("window_s must be >= eval_period_s")
        if self.for_duration_s < 0:
            raise ValueError("for_duration_s must be >= 0")


class WindowView:
    """What a rule sees at one tick: the windows, nothing else."""

    def __init__(self, engine: "DiagnosisEngine", now: float):
        self._engine = engine
        self.now = now
        self.window_s = engine.config.window_s

    def series(self, name: str) -> SeriesWindow:
        return self._engine.series(name)

    def rank_window_counts(self) -> dict[int, int]:
        """Stored messages per rank within the trailing window."""
        return self._engine.tail.rank_counts(self.now, self.window_s)

    def slowest_trace(self) -> tuple[float, str] | None:
        """``(e2e_latency_s, trace_id)`` of the slowest stored message
        so far — the exemplar a latency alert cites so an operator can
        jump straight to ``repro trace --trace-id``.  Read-only off the
        collector; ``None`` before anything stored."""
        return self._engine.world.telemetry.slowest_stored


class DiagnosisEngine:
    """Streaming rule evaluation against one world, in sim time."""

    def __init__(self, world, config: DiagnosisConfig | None = None):
        if getattr(world, "telemetry", None) is None:
            raise RuntimeError(
                "diagnosis needs pipeline telemetry; build the world with "
                "WorldConfig(telemetry=True, diagnosis=...)"
            )
        self.world = world
        self.config = config or DiagnosisConfig()
        self.rules = (
            self.config.rules
            if self.config.rules is not None
            else default_rules(self.config)
        )
        self.incidents = IncidentLog()
        self.tail = IngestTail(world.store)
        self._series: dict[str, SeriesWindow] = {}
        #: rule name -> SeriesWindow of evaluated values (dashboards).
        self.rule_series: dict[str, SeriesWindow] = {
            rule.name: SeriesWindow(rule.name) for rule in self.rules
        }
        self._active: dict[str, Alert] = {}
        self.ticks = 0
        self._armed = False
        #: ``cb(engine, now)`` after each evaluation tick (the flight
        #: recorder snapshots rule windows here).  Host-side observers
        #: only: callbacks must be read-only and schedule nothing.
        self.tick_observers: list = []
        #: ``cb(alert, transition, now)`` on each lifecycle transition
        #: (``pending`` / ``firing`` / ``resolved``).  Same purity bar.
        self.transition_observers: list = []

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        """Start the periodic evaluation process (weak ticks only)."""
        if self._armed:
            raise RuntimeError("diagnosis engine already armed")
        self._armed = True
        self.world.env.every(self.config.eval_period_s, self.tick, weak=True)

    def add_tick_observer(self, callback) -> None:
        self.tick_observers.append(callback)

    def add_transition_observer(self, callback) -> None:
        self.transition_observers.append(callback)

    # -- sampling ------------------------------------------------------

    def series(self, name: str) -> SeriesWindow:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = SeriesWindow(name)
        return s

    def _sample(self, now: float) -> None:
        world = self.world
        fabric = world.fabric
        collector = world.telemetry

        failed = 0
        queue_depth = 0
        retries = 0
        dead_letters = 0
        for daemon in fabric.all_daemons():
            snap = daemon.stats_snapshot()
            failed += 1 if snap["failed"] else 0
            for fwd in snap["forwards"]:
                queue_depth += fwd["queue_depth"]
                retries += fwd["retries"]
                dead_letters += fwd["dead_letters"]

        published = sum(
            d.streams.stats.published for d in fabric.compute_daemons.values()
        )
        spill_parked = sum(
            c.stats.events_spilled - c.stats.events_replayed
            for c in world.connectors
        )
        slow_pending = world.store.slow_pending

        e2e = collector.histograms.get(END_TO_END)
        e2e_count = e2e.count if e2e is not None else 0
        e2e_total = e2e.total if e2e is not None else 0.0

        stored = self.tail.messages
        backlog = queue_depth + slow_pending + spill_parked
        store_health = world.dsos.cluster.health_summary()

        values = {
            "stored_total": stored,
            "published_total": published,
            "e2e_count": e2e_count,
            "e2e_total_s": e2e_total,
            "daemons_failed": failed,
            "forward_queue_depth": queue_depth,
            "retries_total": retries,
            "dead_letters_total": dead_letters,
            "slow_pending": slow_pending,
            "spill_parked": spill_parked,
            "ingest_backlog": backlog,
            "store_replicas_down": store_health["replicas_down"],
            "store_under_replicated": store_health["under_replicated"],
            "store_replica_lag": store_health["replica_lag"],
            "store_shard_skew": store_health["shard_skew"],
        }
        for name, _, _ in SAMPLED_SERIES:
            self.series(name).append(now, values[name])

    # -- evaluation ----------------------------------------------------

    def tick(self) -> None:
        """One evaluation: sample, evaluate every rule, drive alerts."""
        now = self.world.env.now
        self.ticks += 1
        self._sample(now)
        view = WindowView(self, now)
        for rule in self.rules:
            ev = rule.evaluate(view)
            self.rule_series[rule.name].append(now, ev.value)
            self._drive(rule, ev, now)
        for callback in self.tick_observers:
            callback(self, now)

    def _notify(self, alert: Alert, transition: str, now: float) -> None:
        for callback in self.transition_observers:
            callback(alert, transition, now)

    def _drive(self, rule, ev, now: float) -> None:
        alert = self._active.get(rule.name)
        if ev.active:
            if alert is None:
                alert = Alert(
                    rule=rule.name, severity=rule.severity,
                    t_pending=now, threshold=ev.threshold,
                )
                self._active[rule.name] = alert
                self._notify(alert, PENDING, now)
            alert.observe(ev.value, ev.detail)
            if (
                alert.state == PENDING
                and now - alert.t_pending >= rule.for_duration_s
            ):
                alert.fire(now)
                self.incidents.record(alert)
                self._notify(alert, FIRING, now)
        elif alert is not None:
            if alert.state == FIRING:
                alert.resolve(now)
                self._notify(alert, RESOLVED, now)
            # A pending alert whose condition cleared is hysteresis
            # doing its job: discard silently.
            del self._active[rule.name]

    # -- introspection -------------------------------------------------

    def firing(self) -> list:
        """Alerts firing right now."""
        return self.incidents.firing()

    def all_series(self) -> dict[str, SeriesWindow]:
        return dict(self._series)
