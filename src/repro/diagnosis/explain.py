"""Explainable bottleneck classification over one job's evidence.

The paper's end goal is not alert firing but *explanation*: telling a
user at run time **why** their I/O is slow.  This module runs a set of
interpretable, weighted heuristic *strategies* over a
:class:`~repro.diagnosis.features.FeatureVector` plus the incident log,
each emitting a scored :class:`BottleneckVerdict` naming one of
:data:`VERDICT_CLASSES` with the exact feature thresholds that fired,
evidence links (incident ids, rules, catalog signals, the slowest
trace) and actionable :class:`Recommendation`\\ s.

Attribution is observable-only — strategies may read features and
incidents, never the injected ground truth.  The ground truth is used
*after* classification: :func:`score_verdicts` folds the
:class:`~repro.faults.injector.FaultInjector` log through
:func:`~repro.diagnosis.scoring.fault_windows` and the
:data:`CLASSIFIERS` map (the verdict-level sibling of
:data:`~repro.diagnosis.scoring.DETECTORS`) into per-class
precision/recall/confusion — ``repro explain --check`` requires both
at 1.0 on the slow and columnar lanes, with a fault-free control run
classifying ``healthy``.

Everything is a deterministic pure read over a finished world: a
campaign explained post-hoc is byte-identical to one never explained —
pinned by the explain property suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.diagnosis.scoring import fault_windows

__all__ = [
    "CLASSIFIERS",
    "EXPLAIN_METRICS",
    "BottleneckVerdict",
    "ExplainReport",
    "ExplainScore",
    "Recommendation",
    "STRATEGY_WEIGHTS",
    "VERDICT_CLASSES",
    "check_explain",
    "explain_campaign",
    "explain_gauges",
    "explain_job",
    "explain_plan",
    "score_verdicts",
]

#: Every verdict class a strategy may emit, sorted.
VERDICT_CLASSES = (
    "app_imbalance",
    "fs_contention",
    "healthy",
    "metadata",
    "network_transport",
    "pipeline_self_inflicted",
)

#: Fault class -> verdict classes that count as classifying it
#: correctly (the verdict-level sibling of ``scoring.DETECTORS``; the
#: census test pins that every fault class appears in both).
CLASSIFIERS = {
    "daemon_crash": frozenset({"pipeline_self_inflicted"}),
    "link_partition": frozenset({"network_transport"}),
    "link_degrade": frozenset({"network_transport"}),
    "slow_store": frozenset({"fs_contention"}),
    "store_crash": frozenset({"pipeline_self_inflicted"}),
    "flaky_transport": frozenset({"network_transport"}),
}

#: Strategy name -> weight (the score each contributes at full
#: evidence strength).  Ordering ties in the report are broken by
#: (-score, class, strategy), so weights double as display priority.
STRATEGY_WEIGHTS = {
    "daemon_health": 1.0,
    "store_health": 0.95,
    "storage_stall": 0.9,
    "transport_pressure": 0.85,
    "rank_imbalance": 0.7,
    "metadata_mix": 0.6,
}

#: Explain-layer self-metrics (catalogued in ``signals.py``, exported
#: per cluster via OpenMetrics).
EXPLAIN_METRICS = (
    ("explain_verdicts", "verdicts",
     "bottleneck verdicts emitted for the scanned job (healthy "
     "baseline included)"),
    ("explain_confidence", "score",
     "confidence score of the primary bottleneck verdict (0-1)"),
    ("explain_strategies_fired", "strategies",
     "classifier strategies whose thresholds fired for the scanned job"),
    ("explain_healthy", "boolean",
     "1 when the primary verdict is healthy (no bottleneck named)"),
)


@dataclass(frozen=True)
class Recommendation:
    """One actionable step attached to a verdict."""

    action: str
    rationale: str

    def to_dict(self) -> dict:
        return {"action": self.action, "rationale": self.rationale}


@dataclass
class BottleneckVerdict:
    """One strategy's scored classification with its evidence."""

    cls: str
    score: float
    strategy: str
    #: The exact ``feature comparator threshold`` strings that fired.
    thresholds_fired: tuple = ()
    #: Evidence links: ``{"incidents": [ids], "rules": [...],
    #: "signals": [...], "trace_id": str, "windows": {...}}``.
    evidence: dict = field(default_factory=dict)
    recommendations: tuple = ()

    def __post_init__(self):
        if self.cls not in VERDICT_CLASSES:
            raise ValueError(f"unknown verdict class {self.cls!r}")
        if not 0.0 <= self.score <= 1.0:
            raise ValueError("score must be in [0, 1]")

    def to_dict(self) -> dict:
        return {
            "class": self.cls,
            "score": self.score,
            "strategy": self.strategy,
            "thresholds_fired": list(self.thresholds_fired),
            "evidence": self.evidence,
            "recommendations": [r.to_dict() for r in self.recommendations],
        }


# -- evidence helpers ------------------------------------------------------


def _rule_signals(rules) -> list[str]:
    """Catalog signal names feeding any of ``rules`` (evidence links
    into the signal catalog)."""
    from repro.diagnosis.signals import default_catalog

    return sorted(
        s.name for s in default_catalog() if s.rule and s.rule in set(rules)
    )


def _evidence(incidents, features, *, windows: dict | None = None) -> dict:
    """One verdict's evidence-link block, deterministic ordering."""
    rules = sorted({a.rule for a in incidents})
    return {
        "incidents": sorted(a.incident_id for a in incidents),
        "rules": rules,
        "signals": _rule_signals(rules),
        "trace_id": features.slowest_trace_id,
        "windows": dict(sorted((windows or {}).items())),
    }


def _fired(thresholds: list) -> tuple:
    """Keep the threshold strings whose predicate held."""
    return tuple(text for text, held in thresholds if held)


def _score(weight: float, strength: float) -> float:
    """Weighted, clamped evidence strength -> verdict score."""
    return round(weight * max(0.0, min(1.0, strength)), 4)


# -- strategies ------------------------------------------------------------
#
# Each strategy is ``f(features, incidents, engine) -> verdict | None``.
# ``incidents`` is the fired incident list; ``engine`` gives read-only
# access to the sampled series for time-of-fire attribution (e.g. "was
# a daemon down when this latency alert fired?").


def _at_fire(engine, series: str, alert) -> float:
    return engine.series(series).value_at(alert.t_fired)


def _strategy_daemon_health(features, incidents, engine):
    """Monitoring-pipeline daemon failures: the pipeline hurt itself."""
    direct = [a for a in incidents if a.rule in ("daemon_down",
                                                 "spill_growth")]
    # Retries/dead letters only implicate the pipeline when a daemon
    # was actually down as they fired (otherwise they belong to the
    # transport strategy).
    collateral = [
        a for a in incidents
        if a.rule in ("retry_growth", "deadletter_growth")
        and _at_fire(engine, "daemons_failed", a) > 0
    ]
    thresholds = _fired([
        (f"daemons_failed_peak={features.daemons_failed_peak:g} > 0",
         features.daemons_failed_peak > 0),
        (f"spill_parked_peak={features.spill_parked_peak:g} > 0",
         features.spill_parked_peak > 0),
    ])
    if not (direct or (thresholds and collateral)):
        return None
    strength = 0.6 + 0.1 * len(direct) + 0.05 * len(collateral)
    return BottleneckVerdict(
        cls="pipeline_self_inflicted",
        score=_score(STRATEGY_WEIGHTS["daemon_health"], strength),
        strategy="daemon_health",
        thresholds_fired=thresholds,
        evidence=_evidence(direct + collateral, features, windows={
            "daemons_failed_peak": features.daemons_failed_peak,
            "spill_parked_peak": features.spill_parked_peak,
        }),
        recommendations=(
            Recommendation(
                "restart or fail over the crashed aggregation daemon",
                "spill buffers park events while an ldmsd is down; the "
                "application's I/O itself is healthy",
            ),
            Recommendation(
                "verify connector spill replay drained after recovery",
                "parked events replay on reconnect; a non-zero residue "
                "means monitoring data loss, not application slowness",
            ),
        ),
    )


def _strategy_store_health(features, incidents, engine):
    """Replicated-store degradation: also the pipeline's own fault."""
    store_rules = ("under_replication", "replica_lag", "shard_skew")
    direct = [a for a in incidents if a.rule in store_rules]
    thresholds = _fired([
        (f"store_replicas_down_peak={features.store_replicas_down_peak:g}"
         " > 0", features.store_replicas_down_peak > 0),
        (f"store_under_replicated_peak="
         f"{features.store_under_replicated_peak:g} > 0",
         features.store_under_replicated_peak > 0),
        (f"store_replica_lag_peak={features.store_replica_lag_peak:g} > 0",
         features.store_replica_lag_peak > 0),
    ])
    if not (direct or features.store_replicas_down_peak > 0):
        return None
    strength = 0.6 + 0.1 * len(direct) + 0.1 * min(
        features.store_replicas_down_peak, 2.0)
    return BottleneckVerdict(
        cls="pipeline_self_inflicted",
        score=_score(STRATEGY_WEIGHTS["store_health"], strength),
        strategy="store_health",
        thresholds_fired=thresholds,
        evidence=_evidence(direct, features, windows={
            "store_replicas_down_peak": features.store_replicas_down_peak,
            "store_under_replicated_peak":
                features.store_under_replicated_peak,
        }),
        recommendations=(
            Recommendation(
                "restart the crashed dsosd replica and let anti-entropy "
                "repair close the gap",
                "quorum ingest kept writes durable; under-replication "
                "is a monitoring-store risk, not an application fault",
            ),
        ),
    )


def _strategy_storage_stall(features, incidents, engine):
    """Storage-side contention: the store stalled or op durations track
    the file system's load factor (the LASSi signal)."""
    direct = [a for a in incidents if a.rule in ("store_stall",
                                                 "throughput_collapse")]
    correlated = (not features.fs_load_degenerate
                  and abs(features.fs_load_r) >= 0.6)
    thresholds = _fired([
        (f"slow_pending_peak={features.slow_pending_peak:g} > 0",
         features.slow_pending_peak > 0),
        (f"|fs_load_r|={abs(features.fs_load_r):.3f} >= 0.6", correlated),
    ])
    if not (direct or correlated):
        return None
    strength = 0.6 + 0.15 * len(direct) + (0.2 if correlated else 0.0)
    recs = [
        Recommendation(
            "check the storage backend for a stall episode; deferred "
            "ingest drains once it lifts",
            "messages queued behind the store during the stall window — "
            "read/write segments themselves kept completing",
        ),
    ]
    if correlated:
        recs.append(Recommendation(
            f"reschedule against {features.fs_name} off-peak or rebalance "
            f"the job across file systems",
            f"op durations track the {features.fs_name} load factor "
            f"(r={features.fs_load_r:.2f}) — shared-load contention",
        ))
    return BottleneckVerdict(
        cls="fs_contention",
        score=_score(STRATEGY_WEIGHTS["storage_stall"], strength),
        strategy="storage_stall",
        thresholds_fired=thresholds,
        evidence=_evidence(direct, features, windows={
            "slow_pending_peak": features.slow_pending_peak,
            "fs_load_r": features.fs_load_r,
            "read_risk": features.read_risk,
            "write_risk": features.write_risk,
        }),
        recommendations=tuple(recs),
    )


def _strategy_transport_pressure(features, incidents, engine):
    """Network/transport pressure not explained by daemon or store
    failures at fire time."""
    transport_rules = ("latency_slo", "queue_backlog", "retry_growth")
    attributed = [
        a for a in incidents
        if a.rule in transport_rules
        and _at_fire(engine, "daemons_failed", a) == 0
        and _at_fire(engine, "slow_pending", a) == 0
        and _at_fire(engine, "store_replicas_down", a) == 0
    ]
    if not attributed:
        return None
    thresholds = _fired([
        (f"queue_depth_peak={features.queue_depth_peak:g} > 0",
         features.queue_depth_peak > 0),
        (f"retries_total={features.retries_total:g} > 0",
         features.retries_total > 0),
    ])
    strength = 0.6 + 0.1 * len(attributed)
    return BottleneckVerdict(
        cls="network_transport",
        score=_score(STRATEGY_WEIGHTS["transport_pressure"], strength),
        strategy="transport_pressure",
        thresholds_fired=thresholds,
        evidence=_evidence(attributed, features, windows={
            "queue_depth_peak": features.queue_depth_peak,
            "retries_total": features.retries_total,
        }),
        recommendations=(
            Recommendation(
                "inspect the compute-to-aggregator links for degradation "
                "or partition",
                "latency/backlog alerts fired while every daemon and the "
                "store were healthy — the transport itself is implicated",
            ),
            Recommendation(
                "follow the slowest trace's forward hop for the gating "
                "link", "the exemplar trace pinpoints which hop absorbed "
                "the latency",
            ),
        ),
    )


def _strategy_rank_imbalance(features, incidents, engine):
    """Application-side rank imbalance (the app's own I/O shape)."""
    direct = [a for a in incidents if a.rule == "rank_imbalance"]
    ratio_threshold = engine.config.imbalance_ratio
    min_events = engine.config.imbalance_min_events
    skewed = (features.rank_imbalance_ratio >= ratio_threshold
              and features.n_events >= min_events)
    if not (direct or skewed):
        return None
    thresholds = _fired([
        (f"rank_imbalance_ratio={features.rank_imbalance_ratio:.3f} >= "
         f"{ratio_threshold:g}", skewed),
    ])
    strength = 0.6 + 0.2 * len(direct) + (0.2 if skewed else 0.0)
    return BottleneckVerdict(
        cls="app_imbalance",
        score=_score(STRATEGY_WEIGHTS["rank_imbalance"], strength),
        strategy="rank_imbalance",
        thresholds_fired=thresholds,
        evidence=_evidence(direct, features, windows={
            "rank_imbalance_ratio": features.rank_imbalance_ratio,
            "busiest_rank": features.busiest_rank,
        }),
        recommendations=(
            Recommendation(
                f"rebalance I/O off rank {features.busiest_rank} "
                f"(collective buffering or two-phase I/O)",
                "one rank carries a disproportionate share of the "
                "job's I/O events",
            ),
        ),
    )


def _strategy_metadata_mix(features, incidents, engine):
    """Metadata-dominated op mix: opens/closes crowd out data ops."""
    heavy = (features.workload_class == "metadata-intensive"
             or features.metadata_op_fraction > 0.5)
    if not heavy or features.n_events == 0:
        return None
    thresholds = _fired([
        (f"metadata_op_fraction={features.metadata_op_fraction:.3f} > 0.5",
         features.metadata_op_fraction > 0.5),
        (f"workload_class={features.workload_class} == "
         f"metadata-intensive",
         features.workload_class == "metadata-intensive"),
    ])
    return BottleneckVerdict(
        cls="metadata",
        score=_score(STRATEGY_WEIGHTS["metadata_mix"],
                     0.6 + 0.4 * features.metadata_op_fraction),
        strategy="metadata_mix",
        thresholds_fired=thresholds,
        evidence=_evidence([], features, windows={
            "metadata_op_fraction": features.metadata_op_fraction,
            "n_opens": features.n_opens,
        }),
        recommendations=(
            Recommendation(
                "batch file opens or switch to a shared-file layout",
                "metadata ops dominate the event stream; data transfers "
                "are not the bottleneck",
            ),
        ),
    )


_STRATEGIES = (
    _strategy_daemon_health,
    _strategy_store_health,
    _strategy_storage_stall,
    _strategy_transport_pressure,
    _strategy_rank_imbalance,
    _strategy_metadata_mix,
)


# -- the report ------------------------------------------------------------


@dataclass
class ExplainReport:
    """One job's full explanation: features plus ranked verdicts."""

    job_id: int
    features: object
    verdicts: list = field(default_factory=list)

    @property
    def primary(self) -> BottleneckVerdict:
        return self.verdicts[0]

    @property
    def healthy(self) -> bool:
        return self.primary.cls == "healthy"

    def classes(self) -> list[str]:
        """Sorted distinct verdict classes this report emitted."""
        return sorted({v.cls for v in self.verdicts})

    def to_dict(self, epoch: float = 0.0) -> dict:
        return {
            "job_id": self.job_id,
            "features": self.features.to_dict(),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "primary": self.primary.cls,
            "healthy": self.healthy,
        }

    def to_json(self, epoch: float = 0.0) -> str:
        """Byte-stable serialization (sorted keys, compact)."""
        return json.dumps(self.to_dict(epoch), sort_keys=True,
                          separators=(",", ":"))

    def render_text(self, epoch: float = 0.0) -> str:
        lines = [f"== bottleneck verdicts (job {self.job_id}) =="]
        lines.append(
            f"{'class':<24} {'score':>6} {'strategy':<19} evidence"
        )
        for v in self.verdicts:
            ev = v.evidence or {}
            bits = []
            if ev.get("incidents"):
                bits.append("incidents=" + ",".join(
                    str(i) for i in ev["incidents"]))
            if ev.get("rules"):
                bits.append("rules=" + ",".join(ev["rules"]))
            lines.append(
                f"{v.cls:<24} {v.score:>6.2f} {v.strategy:<19} "
                + ("; ".join(bits) if bits else "-")
            )
            for t in v.thresholds_fired:
                lines.append(f"    fired: {t}")
            for r in v.recommendations:
                lines.append(f"    -> {r.action}")
        lines.append(f"primary: {self.primary.cls} "
                     f"(score {self.primary.score:.2f})")
        return "\n".join(lines)


def explain_job(world, job_id: int) -> ExplainReport:
    """Classify one finished job's bottleneck, with evidence.

    Strictly post-hoc and read-only: derives the feature vector, runs
    every strategy, and ranks the verdicts by ``(-score, class)``.  A
    run with no strategy firing gets the ``healthy`` baseline verdict.
    """
    from repro.diagnosis.features import job_features

    engine = world.diagnosis
    features = job_features(world, job_id)
    incidents = [a for a in engine.incidents if a.t_fired is not None]

    verdicts = []
    for strategy in _STRATEGIES:
        verdict = strategy(features, incidents, engine)
        if verdict is not None:
            verdicts.append(verdict)
    verdicts.sort(key=lambda v: (-v.score, v.cls, v.strategy))
    if not verdicts:
        verdicts.append(BottleneckVerdict(
            cls="healthy", score=1.0, strategy="baseline",
            thresholds_fired=("no strategy threshold fired",),
            evidence=_evidence([], features),
            recommendations=(),
        ))
    return ExplainReport(job_id=job_id, features=features,
                         verdicts=verdicts)


def explain_gauges(report: ExplainReport) -> dict:
    """The report condensed into the catalogued explain gauges."""
    return {
        "explain_verdicts": len(report.verdicts),
        "explain_confidence": report.primary.score,
        "explain_strategies_fired": sum(
            1 for v in report.verdicts if v.strategy != "baseline"
        ),
        "explain_healthy": 1 if report.healthy else 0,
    }


# -- ground-truth scoring --------------------------------------------------


@dataclass
class ExplainScore:
    """Verdicts correlated with injected-fault ground truth."""

    #: Verdict classes the injected faults demand (``["healthy"]`` on
    #: a clean run).
    expected: list = field(default_factory=list)
    #: Verdict classes the report emitted.
    emitted: list = field(default_factory=list)
    #: ``fault class -> {"expected": [...], "matched": bool}``.
    confusion: dict = field(default_factory=dict)

    @property
    def recall(self) -> float:
        if not self.expected:
            return 1.0
        hit = sum(1 for c in self.expected if c in self.emitted)
        return hit / len(self.expected)

    @property
    def precision(self) -> float:
        if not self.emitted:
            return 1.0
        hit = sum(1 for c in self.emitted if c in self.expected)
        return hit / len(self.emitted)

    def missing_classes(self) -> list[str]:
        return sorted(c for c in self.expected if c not in self.emitted)

    def unexpected_classes(self) -> list[str]:
        return sorted(c for c in self.emitted if c not in self.expected)

    def ok(self) -> bool:
        return self.recall == 1.0 and self.precision == 1.0

    def to_dict(self) -> dict:
        return {
            "expected": list(self.expected),
            "emitted": list(self.emitted),
            "confusion": self.confusion,
            "recall": self.recall,
            "precision": self.precision,
            "missing": self.missing_classes(),
            "unexpected": self.unexpected_classes(),
            "ok": self.ok(),
        }

    def render_text(self) -> str:
        lines = ["== classification scorecard =="]
        lines.append(f"{'fault class':<18} {'expected verdict':<26} matched")
        for cls in sorted(self.confusion):
            row = self.confusion[cls]
            lines.append(
                f"{cls:<18} {','.join(row['expected']):<26} "
                f"{'yes' if row['matched'] else 'NO'}"
            )
        lines.append(
            f"recall={self.recall:.0%} precision={self.precision:.0%}"
        )
        missing = self.missing_classes()
        if missing:
            lines.append("MISSING verdict classes: " + ", ".join(missing))
        unexpected = self.unexpected_classes()
        if unexpected:
            lines.append("UNEXPECTED verdict classes: "
                         + ", ".join(unexpected))
        return "\n".join(lines)


def score_verdicts(verdicts, applied) -> ExplainScore:
    """Correlate emitted verdicts with the applied-fault log.

    Class-level, like :meth:`DiagnosisScore.classes`: every injected
    fault class must be covered by a verdict in its
    :data:`CLASSIFIERS` set (recall), and every emitted non-healthy
    verdict class must be demanded by some injected class (precision).
    A clean run expects exactly ``healthy``.
    """
    windows = fault_windows(applied)
    fault_classes = sorted({w.cls for w in windows})
    expected = sorted({
        vc for cls in fault_classes for vc in CLASSIFIERS.get(cls, ())
    }) or ["healthy"]
    emitted = sorted({v.cls for v in verdicts})
    confusion = {
        cls: {
            "expected": sorted(CLASSIFIERS.get(cls, ())),
            "matched": bool(set(CLASSIFIERS.get(cls, ()))
                            & set(emitted)),
        }
        for cls in fault_classes
    }
    return ExplainScore(expected=expected, emitted=emitted,
                        confusion=confusion)


# -- the campaign ----------------------------------------------------------


def explain_plan():
    """The explain chaos plan: the diagnose campaign's three classes
    plus a replicated-store crash — every fault class ``repro explain
    --check`` scores against (DaemonCrash, LinkDegrade, SlowStore,
    StoreCrash).

    The windows are deliberately *disjoint* (degrade, then slow store,
    then the two pipeline faults) so each verdict's attribution is
    honest: when ``queue_backlog`` fires mid-degrade nothing else is
    broken, so the transport strategy's at-fire-time exclusions
    (``daemons_failed == 0``, ``slow_pending == 0``, replicas up) hold,
    and conversely the retry storm that follows the daemon crash is
    *not* creditable to the network.  The degrade hits the
    ``head``--``shirley`` aggregation trunk — the one link every
    L1→L2 forward crosses — with a factor large enough that message
    serialization, not propagation, dominates and the forward queue
    visibly builds.
    """
    from repro.faults import (
        DaemonCrash,
        FaultPlan,
        LinkDegrade,
        SlowStore,
        StoreCrash,
    )

    return FaultPlan((
        LinkDegrade("head", "shirley", at=0.2, duration=0.4, factor=1e6),
        SlowStore(at=0.9, duration=0.4),
        DaemonCrash("l1", at=1.6, down_for=0.5),
        StoreCrash(0, at=1.7, down_for=0.6, tear_tail=True),
    ))


@dataclass
class ExplainCampaign:
    """One explain campaign: the world, its job, and the report."""

    world: object
    result: object
    report: ExplainReport

    @property
    def epoch(self) -> float:
        return self.world.config.epoch

    @property
    def applied(self) -> list:
        injector = self.world.fault_injector
        return [] if injector is None else injector.applied

    @property
    def score(self) -> ExplainScore:
        return score_verdicts(self.report.verdicts, self.applied)


def explain_campaign(seed: int = 42, *, fast: bool = True,
                     columnar: bool = False,
                     faults="explain") -> ExplainCampaign:
    """Run the four-class chaos campaign and explain its job.

    Replicated store (2 shards × 2 replicas, quorum 2) so the
    ``StoreCrash`` class is injectable; diagnosis + flight recorder
    armed at the forensics cadence, with ``queue_depth_threshold``
    lowered to 64 so the trunk-degrade's queue build (≈100 messages on
    this job) crosses it while the clean control (peak 0) stays clear.
    ``faults=None`` is the clean control run.  The report's verdicts
    ride the flight recorder as the ``verdicts`` evidence stream.
    """
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.diagnosis import DiagnosisConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.ldms.resilience import RetryPolicy
    from repro.telemetry.flightrec import FlightRecorderConfig

    plan = explain_plan() if faults == "explain" else faults
    diag = DiagnosisConfig(
        eval_period_s=0.05, window_s=0.25, for_duration_s=0.1,
        latency_slo_s=0.25, slo_min_count=8, queue_depth_threshold=64,
    )
    flight = FlightRecorderConfig(
        tick_period_s=0.05, pre_window_s=0.5, post_window_s=0.25,
    )
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, columnar=columnar, faults=plan,
        retry=RetryPolicy(), standby_l1=True, diagnosis=diag,
        flightrec=flight, dsos_shards=2, dsos_replication=2,
        dsos_write_quorum=2,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=24,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(spill=True, fast_lane=fast),
        inter_job_gap_s=0.0,
    )
    world.flight_recorder.flush()
    report = explain_job(world, result.job_id)
    world.flight_recorder.record_verdicts(report)
    return ExplainCampaign(world=world, result=result, report=report)


# -- the --check body ------------------------------------------------------

#: ``(label, fast_lane, columnar)`` lanes ``--check`` exercises.
CHECK_LANES = (("slow", False, False), ("columnar", True, True))


def check_explain(seed: int = 42, lanes=CHECK_LANES):
    """The ``repro explain --check`` verdict.

    Per lane: (1) the four-class chaos campaign classifies with
    per-class precision and recall 1.0 against injected ground truth,
    (2) the report JSON is byte-stable across same-seed reruns, and
    (3) the fault-free control run classifies ``healthy``.  Returns
    ``(ok, lines)``.
    """
    ok = True
    lines = []
    for label, fast, columnar in lanes:
        first = explain_campaign(seed, fast=fast, columnar=columnar)
        second = explain_campaign(seed, fast=fast, columnar=columnar)
        if first.report.to_json() != second.report.to_json():
            ok = False
            lines.append(f"FAIL[{label}]: explain report not byte-stable "
                         f"across same-seed runs")
        score = first.score
        if not score.ok():
            ok = False
            detail = []
            if score.missing_classes():
                detail.append("missing: "
                              + ", ".join(score.missing_classes()))
            if score.unexpected_classes():
                detail.append("unexpected: "
                              + ", ".join(score.unexpected_classes()))
            lines.append(
                f"FAIL[{label}]: recall={score.recall:.0%} "
                f"precision={score.precision:.0%}"
                + (" (" + "; ".join(detail) + ")" if detail else "")
            )
        clean = explain_campaign(seed, fast=fast, columnar=columnar,
                                 faults=None)
        if not clean.report.healthy or clean.report.classes() != ["healthy"]:
            ok = False
            lines.append(
                f"FAIL[{label}]: clean run classified "
                + ", ".join(clean.report.classes()) + " (want healthy)"
            )
        if not any(ln.startswith(f"FAIL[{label}]") for ln in lines):
            lines.append(
                f"OK[{label}]: classes {', '.join(score.emitted)} "
                f"(recall={score.recall:.0%} "
                f"precision={score.precision:.0%}); clean run healthy"
            )
    return ok, lines
