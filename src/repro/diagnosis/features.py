"""Per-job feature vectors for bottleneck explanation.

The explanation layer (:mod:`repro.diagnosis.explain`) never looks at
raw events — it classifies a :class:`FeatureVector` distilled from what
the stack already observes about one job:

* **op mix / access sizes** — :func:`~repro.webservices.signatures.io_signature`
  over the job's stored ``darshan_data`` rows (counts, byte volumes,
  mean sizes, event rate, workload class);
* **rank and phase structure** — events per rank (imbalance ratio) and
  Figure-8 write phases from :mod:`repro.webservices.analysis`;
* **pipeline dynamics** — whole-run peaks of the diagnosis engine's
  sampled :class:`~repro.diagnosis.windows.SeriesWindow` set (queue
  depth, spill, retries, dead letters, failed daemons, store health);
* **FS contention** — the LASSi-style read/write *risk* (fraction of
  the job's rank-time spent inside read/write segments) plus the
  Pearson correlation of op durations against each file system's load
  factor (:func:`~repro.webservices.correlation.correlate_durations_with_metric`),
  carrying the ``degenerate`` flag through so "flat load" is
  distinguishable from "no correlation";
* **exemplar trace** — the slowest stored end-to-end trace id, the
  drill-down link every verdict cites.

Everything here is a pure read over a finished world: no events are
scheduled, no randomness is drawn, nothing is mutated.  A campaign with
a post-hoc :func:`job_features` call is byte-identical to one without —
pinned by the explain property suite.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.webservices.analysis import (
    count_write_phases,
    rows_to_dataframe,
    timeline,
)
from repro.webservices.correlation import correlate_durations_with_metric
from repro.webservices.dataframe import DataFrameError
from repro.webservices.signatures import classify_workload, io_signature

__all__ = ["FeatureVector", "job_features"]

#: Load-factor samples synthesized per job span for the FS correlation.
_LOAD_SAMPLES = 33

#: Buckets the job span is divided into for the duration/load join.
_LOAD_BUCKETS = 8


@dataclass(frozen=True)
class FeatureVector:
    """Everything the classifier strategies are allowed to see."""

    job_id: int

    # -- op mix / access sizes (darshan counters) ----------------------
    workload_class: str = "idle"
    n_events: int = 0
    n_reads: int = 0
    n_writes: int = 0
    n_opens: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    mean_read_size: float = 0.0
    mean_write_size: float = 0.0
    mean_op_dur_s: float = 0.0
    duration_s: float = 0.0
    event_rate_per_s: float = 0.0
    #: Fraction of events that are not data ops (opens/closes/etc).
    metadata_op_fraction: float = 0.0
    write_phases: int = 0

    # -- rank structure (span trees / per-rank counts) -----------------
    n_ranks: int = 0
    #: Busiest rank's event count over the per-rank mean (1.0 = even).
    rank_imbalance_ratio: float = 0.0
    busiest_rank: int = -1

    # -- pipeline dynamics (engine series, whole-run peaks) ------------
    queue_depth_peak: float = 0.0
    ingest_backlog_peak: float = 0.0
    spill_parked_peak: float = 0.0
    slow_pending_peak: float = 0.0
    retries_total: float = 0.0
    dead_letters_total: float = 0.0
    daemons_failed_peak: float = 0.0
    store_replicas_down_peak: float = 0.0
    store_under_replicated_peak: float = 0.0
    store_replica_lag_peak: float = 0.0
    store_shard_skew_peak: float = 0.0

    # -- FS contention (LASSi-style risk + load correlation) -----------
    #: File system whose load factor correlates strongest with op
    #: durations ("" when the join was degenerate everywhere).
    fs_name: str = ""
    fs_load_r: float = 0.0
    fs_load_p: float = 1.0
    #: True when every bucketed series was constant (quiet world) or
    #: the join had too few buckets — "no information", not "no
    #: correlation" (the satellite-hardened correlation contract).
    fs_load_degenerate: bool = True
    #: Fraction of the job's rank-time (wall duration × ranks) spent
    #: inside read segments — the LASSi-style read risk, kept in [0, 1]
    #: by normalizing concurrent per-rank segments.
    read_risk: float = 0.0
    #: Fraction of the job's rank-time spent inside write segments.
    write_risk: float = 0.0

    # -- exemplar trace ------------------------------------------------
    slowest_trace_id: str = ""
    slowest_trace_e2e_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-friendly view (field order fixed by the dataclass)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _rank_features(df) -> tuple[int, float, int]:
    """``(n_ranks, imbalance_ratio, busiest_rank)`` from event counts."""
    ranks = df.col("rank").astype(int)
    uniq, counts = np.unique(ranks, return_counts=True)
    if len(uniq) == 0:
        return 0, 0.0, -1
    mean = float(counts.mean())
    busiest = int(np.argmax(counts))
    ratio = float(counts[busiest]) / mean if mean > 0 else 0.0
    return int(len(uniq)), ratio, int(uniq[busiest])


def _fs_correlation(world, df, t0: float, t1: float) -> dict:
    """Strongest op-duration/load-factor correlation across the
    world's file systems, via the shared correlation machinery."""
    best = {"fs_name": "", "pearson_r": 0.0, "p_value": 1.0,
            "degenerate": True}
    span = t1 - t0
    if span <= 0:
        return best
    bucket_s = span / _LOAD_BUCKETS
    sample_ts = t0 + np.arange(_LOAD_SAMPLES) * (span / (_LOAD_SAMPLES - 1))
    for fs_name in sorted(world.loads):
        load = world.loads[fs_name]
        metric_rows = [
            {"metric": "load_factor", "timestamp": float(t),
             "value": float(load.factor(float(t)))}
            for t in sample_ts
        ]
        try:
            corr = correlate_durations_with_metric(
                df, metric_rows, bucket_s=bucket_s,
            )
        except (DataFrameError, ValueError):
            continue
        if corr["degenerate"]:
            continue
        if abs(corr["pearson_r"]) > abs(best["pearson_r"]):
            best = {
                "fs_name": fs_name,
                "pearson_r": corr["pearson_r"],
                "p_value": corr["p_value"],
                "degenerate": False,
            }
    return best


def job_features(world, job_id: int) -> FeatureVector:
    """Distill one job's stored evidence into a :class:`FeatureVector`.

    Requires a diagnosis engine on the world (the pipeline-dynamics
    block reads its sampled series).  Pure read-only: safe to call on
    any finished campaign without perturbing it.
    """
    engine = getattr(world, "diagnosis", None)
    if engine is None:
        raise RuntimeError(
            "explain needs the diagnosis engine's sampled series; build "
            "the world with WorldConfig(diagnosis=DiagnosisConfig(...))"
        )

    rows = list(world.query_job(job_id))
    if not rows:
        return FeatureVector(job_id=job_id, busiest_rank=-1)
    df = rows_to_dataframe(rows)

    sig = io_signature(df)
    data_ops = sig["n_reads"] + sig["n_writes"]
    metadata_fraction = 1.0 - data_ops / len(df) if len(df) else 0.0

    tl = timeline(df, job_id)
    duration = sig["duration_s"]
    # Phase gap scaled to the job (the Figure-8 default of 2 s assumes
    # production-length jobs); floor keeps zero-duration jobs defined.
    gap_s = max(duration / 8.0, 1e-6)
    phases = count_write_phases(tl, gap_s=gap_s)

    n_ranks, imbalance, busiest = _rank_features(df)

    whole_run = float("inf")
    peaks = {
        name: engine.series(name).max_over(whole_run)
        for name in (
            "forward_queue_depth", "ingest_backlog", "spill_parked",
            "slow_pending", "daemons_failed", "store_replicas_down",
            "store_under_replicated", "store_replica_lag",
            "store_shard_skew",
        )
    }

    stamps = df.col("timestamp").astype(float)
    t0, t1 = float(stamps.min()), float(stamps.max())
    corr = _fs_correlation(world, df, t0, t1)

    durs = df.col("seg_dur").astype(float)
    op = df.col("op")
    read_time = float(durs[op == "read"].sum())
    write_time = float(durs[op == "write"].sum())
    # Ranks do I/O concurrently, so segment time is normalized against
    # rank-time (duration × ranks) to keep the risks inside [0, 1].
    rank_time = duration * max(n_ranks, 1)
    read_risk = read_time / rank_time if rank_time > 0 else 0.0
    write_risk = write_time / rank_time if rank_time > 0 else 0.0

    slowest = None
    if getattr(world, "telemetry", None) is not None:
        slowest = world.telemetry.slowest_stored

    return FeatureVector(
        job_id=job_id,
        workload_class=classify_workload(sig),
        n_events=len(df),
        n_reads=sig["n_reads"],
        n_writes=sig["n_writes"],
        n_opens=sig["n_opens"],
        bytes_read=sig["bytes_read"],
        bytes_written=sig["bytes_written"],
        mean_read_size=sig["mean_read_size"],
        mean_write_size=sig["mean_write_size"],
        mean_op_dur_s=sig["mean_op_dur_s"],
        duration_s=duration,
        event_rate_per_s=sig["event_rate_per_s"],
        metadata_op_fraction=metadata_fraction,
        write_phases=phases,
        n_ranks=n_ranks,
        rank_imbalance_ratio=imbalance,
        busiest_rank=busiest,
        queue_depth_peak=peaks["forward_queue_depth"],
        ingest_backlog_peak=peaks["ingest_backlog"],
        spill_parked_peak=peaks["spill_parked"],
        slow_pending_peak=peaks["slow_pending"],
        retries_total=engine.series("retries_total").latest,
        dead_letters_total=engine.series("dead_letters_total").latest,
        daemons_failed_peak=peaks["daemons_failed"],
        store_replicas_down_peak=peaks["store_replicas_down"],
        store_under_replicated_peak=peaks["store_under_replicated"],
        store_replica_lag_peak=peaks["store_replica_lag"],
        store_shard_skew_peak=peaks["store_shard_skew"],
        fs_name=corr["fs_name"],
        fs_load_r=corr["pearson_r"],
        fs_load_p=corr["p_value"],
        fs_load_degenerate=corr["degenerate"],
        read_risk=read_risk,
        write_risk=write_risk,
        slowest_trace_id="" if slowest is None else slowest[1],
        slowest_trace_e2e_s=0.0 if slowest is None else slowest[0],
    )
