"""Post-incident forensics over flight-recorder bundles.

Three tools over :class:`~repro.telemetry.flightrec.ForensicBundle`
snapshots, plus the capture campaign that produces them:

* :func:`bundle_timeline` — the merged cross-layer event sequence of
  one bundle (alerts, rule windows, span tails, recovery hops, store
  census, probes, faults on one sim-time axis), renderable through the
  PanelData machinery (:func:`timeline_panel`) into the console.
* :func:`diff_bundles` — clean-run vs faulted-run comparison: which
  streams diverged first, with the sim-time of first divergence.
* :func:`match_bundles` — evidence correlation against injected
  ground truth: every fault class must have produced at least one
  bundle whose evidence names a signal feeding a detecting rule
  (:data:`~repro.diagnosis.scoring.DETECTORS`).

:func:`capture_campaign` runs the standard chaos plan with telemetry,
diagnosis and the flight recorder armed; :func:`check_forensics` is the
``repro forensics --capture --check`` body — it runs that campaign on
the requested lanes and verifies fault-class coverage, per-ring
reconciliation and bundle byte-stability across repeated same-seed
runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.diagnosis.scoring import DETECTORS, fault_windows

__all__ = [
    "BundleDiff",
    "CaptureResult",
    "ClassMatch",
    "StreamDivergence",
    "bundle_timeline",
    "capture_campaign",
    "chaos_plan",
    "check_forensics",
    "diff_bundles",
    "diff_panel",
    "match_bundles",
    "timeline_panel",
]


# -- timeline reconstruction ---------------------------------------------


def _event_detail(stream: str, record: dict) -> str:
    """One compact deterministic detail string for a timeline row."""
    if stream == "rules":
        active = [
            f"{name}={value:g}"
            for name, value in sorted(record.get("values", {}).items())
            if value
        ]
        return " ".join(active[:4]) if active else "(all quiet)"
    skip = {"t", "event"}
    parts = []
    for key in sorted(record):
        if key in skip or record[key] in (None, ""):
            continue
        value = record[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def bundle_timeline(bundle) -> list[dict]:
    """The bundle's streams merged onto one sim-time axis.

    Rows are ``{"t", "stream", "event", "detail"}`` sorted by
    ``(t, stream, arrival order)`` — a deterministic total order, so the
    rendered timeline is byte-stable for byte-stable bundles.
    """
    rows = []
    for stream in sorted(bundle.streams):
        for index, record in enumerate(bundle.records(stream)):
            rows.append((
                record["t"], stream, index,
                {
                    "t": record["t"],
                    "stream": stream,
                    "event": record.get("event", ""),
                    "detail": _event_detail(stream, record),
                },
            ))
    rows.sort(key=lambda item: (item[0], item[1], item[2]))
    return [row for _, _, _, row in rows]


def timeline_panel(bundle):
    """The timeline as a console table panel (PanelData machinery)."""
    from repro.webservices.grafana import PanelData

    payload = [
        {
            "t": f"{row['t']:9.3f}",
            "stream": row["stream"],
            "event": row["event"],
            "detail": row["detail"],
        }
        for row in bundle_timeline(bundle)
    ]
    title = (
        f"bundle {bundle.bundle_id} · {bundle.trigger_kind}"
        f"({bundle.trigger_detail}) @ {bundle.t_trigger:.3f}s"
    )
    return PanelData(title=title, viz="table", payload=payload,
                     rows_queried=len(payload))


# -- bundle diffing ------------------------------------------------------


@dataclass(frozen=True)
class StreamDivergence:
    """First point where one stream's record sequences disagree."""

    stream: str
    #: Sim-time of the first diverging record (epoch-relative).
    t: float
    #: Index into the overlap-windowed record sequences.
    index: int
    a_event: str
    b_event: str

    def to_dict(self) -> dict:
        return {
            "stream": self.stream,
            "t": self.t,
            "index": self.index,
            "a": self.a_event,
            "b": self.b_event,
        }


@dataclass
class BundleDiff:
    """Clean-run vs faulted-run comparison of two bundles."""

    a_id: str
    b_id: str
    #: Window overlap the comparison ran over (``None`` = no overlap,
    #: nothing compared).
    overlap: tuple | None
    divergences: list = field(default_factory=list)

    @property
    def first(self) -> StreamDivergence | None:
        """The earliest-diverging stream (ties broken by stream name)."""
        if not self.divergences:
            return None
        return min(self.divergences, key=lambda d: (d.t, d.stream))

    def identical(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        first = self.first
        return {
            "a": self.a_id,
            "b": self.b_id,
            "overlap": None if self.overlap is None else list(self.overlap),
            "divergences": [d.to_dict() for d in sorted(
                self.divergences, key=lambda d: (d.t, d.stream))],
            "first_divergence": None if first is None else first.to_dict(),
        }


def _record_label(record: dict | None, other: dict | None) -> str:
    if record is None:
        return "(absent)"
    event = record.get("event", "")
    if event == "windows" and other is not None and other.get("event") == "windows":
        mine, theirs = record.get("values", {}), other.get("values", {})
        differing = [
            f"{name}={mine.get(name, 0.0):g}"
            for name in sorted(set(mine) | set(theirs))
            if mine.get(name) != theirs.get(name)
        ]
        return "windows " + " ".join(differing[:3]) if differing else "windows"
    detail = _event_detail("", record)
    return f"{event} {detail}".strip() if detail else event


def diff_bundles(a, b) -> BundleDiff:
    """Which streams diverged first, and when.

    Both bundles' records are restricted to the overlap of their two
    windows first (a clean-run snapshot spans the whole run; a trigger
    bundle only its ±window), then compared record-by-record per
    stream.  A length mismatch past the common prefix diverges at the
    first unmatched record.
    """
    lo = max(a.window[0], b.window[0])
    hi = min(a.window[1], b.window[1])
    if lo > hi:
        return BundleDiff(a.bundle_id, b.bundle_id, overlap=None)
    diff = BundleDiff(a.bundle_id, b.bundle_id, overlap=(lo, hi))
    for stream in sorted(set(a.streams) | set(b.streams)):
        ra = [r for r in a.records(stream) if lo <= r["t"] <= hi]
        rb = [r for r in b.records(stream) if lo <= r["t"] <= hi]
        for index in range(max(len(ra), len(rb))):
            rec_a = ra[index] if index < len(ra) else None
            rec_b = rb[index] if index < len(rb) else None
            if rec_a == rec_b:
                continue
            times = [r["t"] for r in (rec_a, rec_b) if r is not None]
            diff.divergences.append(StreamDivergence(
                stream=stream,
                t=min(times),
                index=index,
                a_event=_record_label(rec_a, rec_b),
                b_event=_record_label(rec_b, rec_a),
            ))
            break
    return diff


def diff_panel(diff: BundleDiff):
    """The diff as a console table panel."""
    from repro.webservices.grafana import PanelData

    payload = [
        {
            "t": f"{d.t:9.3f}",
            "stream": d.stream,
            "a": d.a_event,
            "b": d.b_event,
        }
        for d in sorted(diff.divergences, key=lambda d: (d.t, d.stream))
    ]
    first = diff.first
    verdict = (
        "identical in overlap" if first is None
        else f"first divergence: {first.stream} @ {first.t:.3f}s"
    )
    return PanelData(
        title=f"diff {diff.a_id} vs {diff.b_id} — {verdict}",
        viz="table", payload=payload, rows_queried=len(payload),
    )


# -- ground-truth correlation --------------------------------------------


@dataclass
class ClassMatch:
    """Bundles whose evidence names a signal detecting one fault class."""

    cls: str
    windows: int
    #: ``bundle_id -> sorted matching signal names`` (non-empty).
    bundles: dict = field(default_factory=dict)

    @property
    def matched(self) -> bool:
        return bool(self.bundles)

    def to_dict(self) -> dict:
        return {
            "class": self.cls,
            "windows": self.windows,
            "bundles": {k: list(v) for k, v in sorted(self.bundles.items())},
            "matched": self.matched,
        }


def match_bundles(applied, bundles, epoch: float,
                  grace_s: float = 1.0) -> dict[str, ClassMatch]:
    """Correlate frozen bundles against the injected-fault log.

    A bundle matches a fault class iff its trigger time falls inside
    one of the class's fault windows (plus ``grace_s`` past the end —
    alerts fire with hysteresis) *and* its evidence names at least one
    signal feeding a rule in :data:`DETECTORS` for that class.
    """
    from repro.diagnosis.signals import default_catalog

    signal_rule = {s.name: s.rule for s in default_catalog() if s.rule}
    matches: dict[str, ClassMatch] = {}
    windows = fault_windows(applied)
    for window in windows:
        match = matches.setdefault(window.cls, ClassMatch(window.cls, 0))
        match.windows += 1
        detectors = DETECTORS.get(window.cls, frozenset())
        t_begin = window.t_begin - epoch
        t_end = (
            math.inf if window.t_end is None
            else window.t_end - epoch + grace_s
        )
        for bundle in bundles:
            if not t_begin <= bundle.t_trigger <= t_end:
                continue
            hit_rules = detectors & set(bundle.evidence.get("rules", ()))
            signals = sorted(
                name for name in bundle.evidence.get("signals", ())
                if signal_rule.get(name) in hit_rules
            )
            if signals:
                match.bundles.setdefault(bundle.bundle_id, signals)
    return matches


# -- the capture campaign ------------------------------------------------


def chaos_plan(fail_after: int = 50):
    """The standard diagnosis chaos plan: an L1 crash (message-count
    triggered), a degraded compute→head link, and a store stall —
    the same three fault classes ``repro diagnose`` scores against."""
    from repro.faults import DaemonCrash, FaultPlan, LinkDegrade, SlowStore

    return FaultPlan((
        DaemonCrash("l1", after_messages=fail_after, down_for=0.5),
        LinkDegrade("nid00001", "head", at=0.2, duration=0.3, factor=50.0),
        SlowStore(at=0.1, duration=0.4),
    ))


@dataclass
class CaptureResult:
    """One recorder-armed campaign: the world and what it froze."""

    world: object
    result: object
    recorder: object

    @property
    def bundles(self) -> list:
        return self.recorder.bundles

    @property
    def epoch(self) -> float:
        return self.world.config.epoch

    @property
    def applied(self) -> list:
        injector = self.world.fault_injector
        return [] if injector is None else injector.applied

    def find(self, bundle_id: str):
        return self.recorder.bundle(bundle_id)


def capture_campaign(seed: int = 42, *, fast: bool = True,
                     columnar: bool = False, faults="chaos",
                     fail_after: int = 50,
                     snapshot_id: str | None = None) -> CaptureResult:
    """Run the chaos campaign with diagnosis + flight recorder armed.

    ``faults="chaos"`` injects :func:`chaos_plan`; pass ``None`` for a
    clean control run (give it a ``snapshot_id`` so the recorder
    freezes a whole-run bundle to diff against).  Pending triggers are
    flushed after the drain, so a trigger near the end of the run still
    freezes its bundle.
    """
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.diagnosis import DiagnosisConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.ldms.resilience import RetryPolicy
    from repro.telemetry.flightrec import FlightRecorderConfig

    plan = chaos_plan(fail_after) if faults == "chaos" else faults
    diag = DiagnosisConfig(
        eval_period_s=0.05, window_s=0.25, for_duration_s=0.1,
        latency_slo_s=0.25, slo_min_count=8,
    )
    flight = FlightRecorderConfig(
        tick_period_s=0.05, pre_window_s=0.5, post_window_s=0.25,
    )
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, columnar=columnar, faults=plan,
        retry=RetryPolicy(), standby_l1=True, diagnosis=diag,
        flightrec=flight,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(spill=True, fast_lane=fast),
        inter_job_gap_s=0.0,
    )
    world.flight_recorder.flush()
    if snapshot_id is not None:
        world.flight_recorder.snapshot(bundle_id=snapshot_id)
    return CaptureResult(world=world, result=result,
                         recorder=world.flight_recorder)


# -- the --check body ----------------------------------------------------

#: ``(label, fast_lane, columnar)`` lanes ``--check`` exercises: the
#: slow reference lane and the columnar lane (whose spine must refuse
#: to arm under the recorder and fall back bit-identically).
CHECK_LANES = (("slow", False, False), ("columnar", True, True))


def check_forensics(seed: int = 42, lanes=CHECK_LANES):
    """The ``repro forensics --capture --check`` verdict.

    Per lane: run the chaos capture twice with the same seed and
    require (1) bundle JSON byte-stable across the runs, (2) every
    ring reconciling ``captured == retained + evicted``, and (3) every
    injected fault class matched by at least one bundle whose evidence
    names a detecting signal.  Returns ``(ok, lines)``.
    """
    ok = True
    lines = []
    for label, fast, columnar in lanes:
        first = capture_campaign(seed, fast=fast, columnar=columnar)
        second = capture_campaign(seed, fast=fast, columnar=columnar)
        frozen = [b.to_canonical_json() for b in first.bundles]
        refrozen = [b.to_canonical_json() for b in second.bundles]
        if frozen != refrozen:
            ok = False
            lines.append(f"FAIL[{label}]: bundle JSON not byte-stable "
                         f"across same-seed runs")
        if not first.bundles:
            ok = False
            lines.append(f"FAIL[{label}]: no bundles frozen under the "
                         f"chaos plan")
        stale = [
            name for name, good in first.recorder.reconciliation().items()
            if not good
        ]
        if stale:
            ok = False
            lines.append(f"FAIL[{label}]: rings do not reconcile: "
                         + ", ".join(sorted(stale)))
        matches = match_bundles(first.applied, first.bundles, first.epoch)
        unmatched = sorted(
            cls for cls, match in matches.items() if not match.matched
        )
        if unmatched:
            ok = False
            lines.append(f"FAIL[{label}]: fault classes without a "
                         f"matching bundle: " + ", ".join(unmatched))
        if not any((ln.startswith(f"FAIL[{label}]")) for ln in lines):
            classes = ", ".join(sorted(matches))
            lines.append(
                f"OK[{label}]: {len(first.bundles)} bundle(s); classes "
                f"matched with named signals: {classes}; rings reconcile"
            )
    return ok, lines
