"""Declarative diagnosis rules.

A :class:`Rule` is pure data plus a pure evaluation function: every
tick the engine hands it a :class:`~repro.diagnosis.engine.WindowView`
(sliding windows over the live surfaces) and the rule answers with a
:class:`RuleEval` — is the condition holding, at what value, against
what threshold.  Rules never touch the world, never draw randomness and
never schedule anything; the engine owns the alert lifecycle.

:func:`default_rules` builds the standard rule set from a
:class:`~repro.diagnosis.engine.DiagnosisConfig` — the LASSi-style
metric rules the ISSUE names: daemon down, end-to-end latency SLO,
throughput collapse vs a trailing baseline, store stall / ingest
backlog, forwarder queue backlog, rank I/O imbalance, spill growth,
retry growth and dead-letter growth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rule", "RuleEval", "default_rules"]

#: Severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class RuleEval:
    """One tick's verdict for one rule."""

    active: bool
    value: float
    threshold: float
    detail: str = ""


@dataclass(frozen=True)
class Rule:
    """A named, windowed condition with firing hysteresis."""

    name: str
    severity: str
    description: str
    #: The condition must hold this long before the alert fires.
    for_duration_s: float
    #: ``evaluate(view) -> RuleEval`` — pure, observation-only.
    evaluate: object

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.for_duration_s < 0:
            raise ValueError("for_duration_s must be >= 0")
        if not callable(self.evaluate):
            raise TypeError("evaluate must be callable")


# -- the standard rule set -------------------------------------------------


def _daemon_down(view) -> RuleEval:
    n = view.series("daemons_failed").latest
    return RuleEval(n > 0, n, 0, f"{n:.0f} daemon(s) down")


def _latency_slo(slo_s: float, min_count: int):
    def evaluate(view) -> RuleEval:
        count = view.series("e2e_count").delta(view.window_s)
        total = view.series("e2e_total_s").delta(view.window_s)
        if count < min_count:
            return RuleEval(False, 0.0, slo_s, "too few stored messages")
        mean = total / count
        detail = f"window mean e2e {mean:.4f}s over {count:.0f} msgs"
        exemplar = view.slowest_trace()
        if exemplar is not None:
            worst_s, trace_id = exemplar
            detail += f"; worst {worst_s:.4f}s trace {trace_id}"
        return RuleEval(mean > slo_s, mean, slo_s, detail)

    return evaluate


def _throughput_collapse(collapse_frac: float, baseline_windows: int,
                         min_baseline_rate: float):
    def evaluate(view) -> RuleEval:
        stored = view.series("stored_total")
        baseline = stored.baseline_rate(view.window_s, baseline_windows)
        if baseline < min_baseline_rate:
            return RuleEval(False, 0.0, collapse_frac, "no baseline yet")
        current = stored.rate(view.window_s)
        backlog = view.series("ingest_backlog").latest
        ratio = current / baseline
        # A quiesced pipeline (job over, nothing owed) is not a
        # collapse: only alert while messages are known to be stuck.
        active = ratio < collapse_frac and backlog > 0
        return RuleEval(
            active, ratio, collapse_frac,
            f"stored rate {current:.1f}/s vs baseline {baseline:.1f}/s, "
            f"backlog {backlog:.0f}",
        )

    return evaluate


def _store_stall(view) -> RuleEval:
    pending = view.series("slow_pending").latest
    return RuleEval(
        pending > 0, pending, 0, f"{pending:.0f} messages deferred by store"
    )


def _queue_backlog(depth_threshold: int):
    def evaluate(view) -> RuleEval:
        depth = view.series("forward_queue_depth").latest
        return RuleEval(
            depth > depth_threshold, depth, depth_threshold,
            f"Σ forward outbox depth {depth:.0f}",
        )

    return evaluate


def _rank_imbalance(ratio_threshold: float, min_events: int):
    def evaluate(view) -> RuleEval:
        counts = view.rank_window_counts()
        total = sum(counts.values())
        if len(counts) < 2 or total < min_events:
            return RuleEval(False, 1.0, ratio_threshold, "too few events")
        mean = total / len(counts)
        worst_rank, worst = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        ratio = worst / mean
        return RuleEval(
            ratio > ratio_threshold, ratio, ratio_threshold,
            f"rank {worst_rank}: {worst} of {total} stored events "
            f"(x{ratio:.1f} the mean)",
        )

    return evaluate


def _spill_growth(view) -> RuleEval:
    parked = view.series("spill_parked").latest
    return RuleEval(
        parked > 0, parked, 0, f"{parked:.0f} events parked in spill buffers"
    )


def _retry_growth(view) -> RuleEval:
    retries = view.series("retries_total").delta(view.window_s)
    return RuleEval(
        retries > 0, retries, 0, f"{retries:.0f} forward retries in window"
    )


def _under_replication(view) -> RuleEval:
    down = view.series("store_replicas_down").latest
    under = view.series("store_under_replicated").latest
    return RuleEval(
        down + under > 0, down + under, 0,
        f"{down:.0f} replica(s) down, {under:.0f} object(s) below quorum copies",
    )


def _replica_lag(lag_threshold: int):
    def evaluate(view) -> RuleEval:
        lag = view.series("store_replica_lag").latest
        return RuleEval(
            lag > lag_threshold, lag, lag_threshold,
            f"worst live-replica gap {lag:.0f} objects",
        )

    return evaluate


def _shard_skew(skew_threshold: int):
    def evaluate(view) -> RuleEval:
        skew = view.series("store_shard_skew").latest
        return RuleEval(
            skew > skew_threshold, skew, skew_threshold,
            f"fullest vs emptiest shard differ by {skew:.0f} objects",
        )

    return evaluate


def _deadletter_growth(view) -> RuleEval:
    dead = view.series("dead_letters_total").delta(view.window_s)
    return RuleEval(
        dead > 0, dead, 0, f"{dead:.0f} messages dead-lettered in window"
    )


def default_rules(config) -> tuple:
    """The standard set, thresholds from a ``DiagnosisConfig``."""
    hold = config.for_duration_s
    return (
        Rule(
            "daemon_down", "critical",
            "a fabric daemon reports failed", hold, _daemon_down,
        ),
        Rule(
            "latency_slo", "warning",
            "windowed mean end-to-end latency breaches the SLO", hold,
            _latency_slo(config.latency_slo_s, config.slo_min_count),
        ),
        Rule(
            "throughput_collapse", "warning",
            "stored rate collapsed vs the trailing baseline with a backlog",
            hold,
            _throughput_collapse(
                config.collapse_frac, config.baseline_windows,
                config.min_baseline_rate,
            ),
        ),
        Rule(
            "store_stall", "critical",
            "DSOS ingest is deferring messages (slow-store episode)", hold,
            _store_stall,
        ),
        Rule(
            "queue_backlog", "warning",
            "forwarder outboxes are backing up", hold,
            _queue_backlog(config.queue_depth_threshold),
        ),
        Rule(
            "rank_imbalance", "info",
            "one rank dominates the stored I/O event stream", hold,
            _rank_imbalance(config.imbalance_ratio, config.imbalance_min_events),
        ),
        Rule(
            "spill_growth", "warning",
            "connector spill buffers hold unreplayed events", hold,
            _spill_growth,
        ),
        Rule(
            "retry_growth", "warning",
            "forwarders are retrying sends", hold, _retry_growth,
        ),
        Rule(
            "deadletter_growth", "critical",
            "messages are being dead-lettered", hold, _deadletter_growth,
        ),
        Rule(
            "under_replication", "critical",
            "a dsosd replica is down or objects sit below quorum copies",
            hold, _under_replication,
        ),
        Rule(
            "replica_lag", "warning",
            "live replicas of one shard have diverged (repair owed)", hold,
            _replica_lag(config.replica_lag_threshold),
        ),
        Rule(
            "shard_skew", "info",
            "object placement across shards is badly imbalanced", hold,
            _shard_skew(config.shard_skew_threshold),
        ),
    )
