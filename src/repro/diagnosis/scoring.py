"""Incident correlation against injected-fault ground truth.

A chaos campaign knows exactly what it broke and when — the
:class:`~repro.faults.injector.FaultInjector`'s ``applied`` log.  This
module folds that log into *fault windows* (begin/end pairs per fault),
maps each fault class to the alert rules that should see it, and scores
the engine's :class:`~repro.diagnosis.alerts.IncidentLog` against the
windows: per-fault detection and latency, class-level recall, and
precision (alerts that match no window are false positives).

``repro diagnose --check`` passes iff every injected fault class was
detected *and* a fault-free control run fired zero alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DETECTORS",
    "DiagnosisScore",
    "FaultWindow",
    "fault_windows",
    "score_incidents",
]

#: ``applied-log begin kind -> (fault class, matching end kind)``.
_BEGIN_KINDS = {
    "daemon_crash": ("daemon_crash", "daemon_recover"),
    "link_partition": ("link_partition", "link_heal"),
    "link_degrade": ("link_degrade", "link_restore"),
    "slow_store_begin": ("slow_store", "slow_store_end"),
    "store_crash": ("store_crash", "store_recover"),
    "flaky_on": ("flaky_transport", "flaky_off"),
}

#: Fault class -> alert rules that count as detecting it.
DETECTORS = {
    "daemon_crash": frozenset(
        {"daemon_down", "spill_growth", "deadletter_growth", "retry_growth"}
    ),
    "link_partition": frozenset(
        {"retry_growth", "queue_backlog", "spill_growth", "latency_slo"}
    ),
    "link_degrade": frozenset(
        {"latency_slo", "queue_backlog", "retry_growth"}
    ),
    "slow_store": frozenset({"store_stall", "throughput_collapse"}),
    "store_crash": frozenset(
        {"under_replication", "replica_lag", "shard_skew"}
    ),
    "flaky_transport": frozenset({"retry_growth", "deadletter_growth"}),
}


@dataclass(frozen=True)
class FaultWindow:
    """One injected fault's active interval (ground truth)."""

    cls: str
    t_begin: float
    #: ``None`` = never ended (permanent crash / run ended first).
    t_end: float | None
    detail: str


def _pair_key(kind: str, detail: str) -> str:
    """What ties a begin entry to its end entry across detail drift
    (``a -- b x10`` degrades restore as ``a -- b``; store entries
    carry per-event annotations after the daemon name)."""
    if kind.startswith("link_"):
        return " -- ".join(detail.split(" -- ")[:2]).split(" x")[0]
    if kind.startswith("store_"):
        return detail.split(" ")[0]
    return detail.split(" p=")[0]


def fault_windows(applied) -> list[FaultWindow]:
    """Fold an ``AppliedFault`` log into begin/end windows, in order."""
    windows: list[FaultWindow] = []
    open_slots: dict[tuple[str, str], list[int]] = {}
    for entry in applied:
        begun = _BEGIN_KINDS.get(entry.kind)
        if begun is not None:
            cls, end_kind = begun
            windows.append(
                FaultWindow(cls, entry.t, None, entry.detail)
            )
            open_slots.setdefault(
                (end_kind, _pair_key(entry.kind, entry.detail)), []
            ).append(len(windows) - 1)
            continue
        slot = open_slots.get((entry.kind, _pair_key(entry.kind, entry.detail)))
        if slot:
            i = slot.pop(0)
            w = windows[i]
            windows[i] = FaultWindow(w.cls, w.t_begin, entry.t, w.detail)
    return windows


@dataclass
class Detection:
    """Scoring outcome for one fault window."""

    window: FaultWindow
    detected: bool = False
    rule: str | None = None
    t_fired: float | None = None

    @property
    def latency_s(self) -> float | None:
        """Fault begin -> first matching alert firing."""
        if self.t_fired is None:
            return None
        return self.t_fired - self.window.t_begin


@dataclass
class DiagnosisScore:
    """The full correlation of an incident log with fault ground truth."""

    detections: list = field(default_factory=list)
    #: Firing alerts that matched no fault window.
    false_positives: list = field(default_factory=list)
    #: Firing alerts that matched at least one window.
    matched_alerts: int = 0
    total_alerts: int = 0

    @property
    def recall(self) -> float:
        if not self.detections:
            return 1.0
        return sum(d.detected for d in self.detections) / len(self.detections)

    @property
    def precision(self) -> float:
        if self.total_alerts == 0:
            return 1.0
        return self.matched_alerts / self.total_alerts

    def classes(self) -> dict[str, bool]:
        """Fault class -> was any window of that class detected?"""
        out: dict[str, bool] = {}
        for d in self.detections:
            out[d.window.cls] = out.get(d.window.cls, False) or d.detected
        return out

    def undetected_classes(self) -> list[str]:
        return sorted(c for c, ok in self.classes().items() if not ok)

    def ok(self) -> bool:
        """Every injected fault class detected by at least one alert."""
        return not self.undetected_classes()

    # -- rendering -----------------------------------------------------

    def render_text(self, epoch: float = 0.0) -> str:
        lines = ["== fault detection scorecard =="]
        lines.append(
            f"{'class':<16} {'t_fault':>9} {'detected':<9} {'rule':<22} "
            f"{'latency':>9}"
        )
        for d in self.detections:
            latency = "-" if d.latency_s is None else f"{d.latency_s:8.3f}s"
            lines.append(
                f"{d.window.cls:<16} {d.window.t_begin - epoch:>9.3f} "
                f"{'yes' if d.detected else 'NO':<9} {d.rule or '-':<22} "
                f"{latency:>9}"
            )
        lines.append(
            f"recall={self.recall:.0%} precision={self.precision:.0%} "
            f"false_positives={len(self.false_positives)}"
        )
        missing = self.undetected_classes()
        if missing:
            lines.append(f"UNDETECTED fault classes: {', '.join(missing)}")
        return "\n".join(lines)

    def to_dict(self, epoch: float = 0.0) -> dict:
        return {
            "detections": [
                {
                    "class": d.window.cls,
                    "detail": d.window.detail,
                    "t_begin": d.window.t_begin - epoch,
                    "t_end": (
                        None if d.window.t_end is None
                        else d.window.t_end - epoch
                    ),
                    "detected": d.detected,
                    "rule": d.rule,
                    "detection_latency_s": d.latency_s,
                }
                for d in self.detections
            ],
            "classes": self.classes(),
            "recall": self.recall,
            "precision": self.precision,
            "false_positives": len(self.false_positives),
            "total_alerts": self.total_alerts,
            "ok": self.ok(),
        }


def score_incidents(
    incidents, applied, *, grace_s: float = 1.0
) -> DiagnosisScore:
    """Correlate an incident log with an applied-fault log.

    An alert matches a window when its rule is in the window class's
    detector set and it fired inside ``[t_begin, t_end + grace_s]``
    (windows with no end stay open to the end of the run).  Each
    window's detection is the *earliest* matching alert — its latency
    is the headline "how fast did we see it" number.
    """
    windows = fault_windows(applied)
    fired = [a for a in incidents if a.t_fired is not None]
    detections = [Detection(w) for w in windows]
    matched: set[int] = set()

    for det in detections:
        rules = DETECTORS.get(det.window.cls, frozenset())
        t_end = det.window.t_end
        best: tuple[float, int] | None = None
        for i, alert in enumerate(fired):
            if alert.rule not in rules:
                continue
            if alert.t_fired < det.window.t_begin:
                continue
            if t_end is not None and alert.t_fired > t_end + grace_s:
                continue
            matched.add(i)
            if best is None or alert.t_fired < best[0]:
                best = (alert.t_fired, i)
        if best is not None:
            det.detected = True
            det.t_fired = best[0]
            det.rule = fired[best[1]].rule

    score = DiagnosisScore(
        detections=detections,
        false_positives=[a for i, a in enumerate(fired) if i not in matched],
        matched_alerts=len(matched),
        total_alerts=len(fired),
    )
    return score
