"""The signal catalog: every metric, alert and gauge the stack emits.

One registry, assembled from the emitting modules' own declarative
tables — :data:`~repro.diagnosis.engine.SAMPLED_SERIES`, the default
:mod:`~repro.diagnosis.rules` set, the telemetry hop-stage histograms,
:data:`~repro.fleet.probe.PROBE_METRICS` and the scorecard components —
so it cannot silently drift from the code: :meth:`SignalCatalog.missing`
re-derives the expected names from those live registries, and the CI
catalog-completeness check (``repro fleet --catalog --check``) fails if
anything the stack emits is absent here.

Each :class:`Signal` carries name, unit, kind, the source site that
emits it, and — where one exists — the diagnosis rule it feeds, so the
console page and the OpenMetrics exposition
(:mod:`repro.telemetry.exporter`) can both be generated from the same
rows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Signal", "SignalCatalog", "default_catalog", "expected_signals"]

#: Valid signal kinds (OpenMetrics-ish; "alert" and "score" are ours).
KINDS = ("counter", "gauge", "histogram", "alert", "score")


@dataclass(frozen=True)
class Signal:
    """One catalogued emission site."""

    name: str
    unit: str
    kind: str
    #: Dotted module path of the site that emits it.
    source: str
    description: str
    #: Name of the diagnosis rule this signal feeds, if any.
    rule: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown signal kind {self.kind!r}")
        if not self.name:
            raise ValueError("signal name must be non-empty")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unit": self.unit,
            "kind": self.kind,
            "source": self.source,
            "description": self.description,
            "rule": self.rule,
        }


class SignalCatalog:
    """Ordered, unique-by-name registry of :class:`Signal` rows."""

    def __init__(self):
        self._signals: dict[str, Signal] = {}

    def register(self, signal: Signal) -> Signal:
        if signal.name in self._signals:
            raise ValueError(f"signal {signal.name!r} already catalogued")
        self._signals[signal.name] = signal
        return signal

    def __iter__(self):
        return iter(sorted(self._signals.values(), key=lambda s: s.name))

    def __len__(self) -> int:
        return len(self._signals)

    def __contains__(self, name: str) -> bool:
        return name in self._signals

    def get(self, name: str) -> Signal | None:
        return self._signals.get(name)

    def names(self) -> list[str]:
        return sorted(self._signals)

    def missing(self) -> list[str]:
        """Emitted-but-uncatalogued names (empty == catalog complete).

        The expected set is re-derived from the emitting modules' live
        registries on every call, so adding a sampled series, a rule, a
        hop stage or a probe metric without a catalog row shows up here
        (and fails ``repro fleet --catalog --check``).
        """
        return sorted(expected_signals() - set(self._signals))

    def complete(self) -> bool:
        return not self.missing()

    def to_rows(self) -> list[dict]:
        """Console-table rows, sorted by (kind, name)."""
        return [
            {
                "name": s.name,
                "kind": s.kind,
                "unit": s.unit,
                "source": s.source,
                "rule": s.rule or "-",
                "description": s.description,
            }
            for s in sorted(self._signals.values(),
                            key=lambda s: (s.kind, s.name))
        ]

    def to_dict(self) -> dict:
        return {
            "signals": [s.to_dict() for s in self],
            "count": len(self),
            "complete": self.complete(),
            "missing": self.missing(),
        }


def expected_signals() -> set:
    """Every signal name the stack's live registries say it emits."""
    from repro.diagnosis.engine import SAMPLED_SERIES
    from repro.diagnosis.explain import EXPLAIN_METRICS
    from repro.dsos.cluster import STORE_METRICS
    from repro.fleet.probe import PROBE_METRICS
    from repro.fleet.scorecard import COMPONENT_WEIGHTS
    from repro.telemetry.collector import END_TO_END
    from repro.telemetry.flightrec import RECORDER_METRICS
    from repro.telemetry.trace import (
        STAGE_BUS,
        STAGE_FORWARD,
        STAGE_INGEST,
        STAGE_PUBLISH,
        STAGE_RECEIVE,
    )

    expected = {name for name, _, _ in SAMPLED_SERIES}
    expected |= {name for name, _, _ in STORE_METRICS}
    expected |= {f"alert_{rule.name}" for rule in _standard_rules()}
    expected |= {
        f"hop_latency_{stage}"
        for stage in (STAGE_PUBLISH, STAGE_BUS, STAGE_FORWARD,
                      STAGE_RECEIVE, STAGE_INGEST, END_TO_END)
    }
    expected |= {name for name, _, _ in PROBE_METRICS}
    expected |= {name for name, _, _ in RECORDER_METRICS}
    expected |= {name for name, _, _ in EXPLAIN_METRICS}
    expected |= {"health_score"}
    expected |= {f"score_deduction_{c}" for c in COMPONENT_WEIGHTS}
    return expected


def _standard_rules() -> tuple:
    """The default rule set under default thresholds (names/severities
    are what the catalog needs; thresholds do not matter here)."""
    from repro.diagnosis.engine import DiagnosisConfig
    from repro.diagnosis.rules import default_rules

    return default_rules(DiagnosisConfig())


#: Series that only ever increase (everything else sampled is a gauge).
_CUMULATIVE_SERIES = {
    "stored_total", "published_total", "e2e_count", "e2e_total_s",
    "retries_total", "dead_letters_total",
}


def default_catalog() -> SignalCatalog:
    """The complete catalog for the current stack, built from the same
    live registries :func:`expected_signals` reads."""
    from repro.diagnosis.engine import SAMPLED_SERIES
    from repro.diagnosis.explain import EXPLAIN_METRICS
    from repro.dsos.cluster import STORE_METRICS
    from repro.fleet.probe import PROBE_METRICS
    from repro.fleet.scorecard import COMPONENT_WEIGHTS
    from repro.telemetry.collector import END_TO_END
    from repro.telemetry.flightrec import RECORDER_METRICS
    from repro.telemetry.trace import (
        STAGE_BUS,
        STAGE_FORWARD,
        STAGE_INGEST,
        STAGE_PUBLISH,
        STAGE_RECEIVE,
    )

    # Which rule reads which sampled series (links catalog rows to the
    # diagnosis rule they feed; series without a rule are dashboards).
    series_rule = {
        "stored_total": "throughput_collapse",
        "e2e_count": "latency_slo",
        "e2e_total_s": "latency_slo",
        "daemons_failed": "daemon_down",
        "forward_queue_depth": "queue_backlog",
        "retries_total": "retry_growth",
        "dead_letters_total": "deadletter_growth",
        "slow_pending": "store_stall",
        "spill_parked": "spill_growth",
        "store_replicas_down": "under_replication",
        "store_under_replicated": "under_replication",
        "store_replica_lag": "replica_lag",
        "store_shard_skew": "shard_skew",
    }

    catalog = SignalCatalog()
    for name, unit, description in SAMPLED_SERIES:
        catalog.register(Signal(
            name=name, unit=unit,
            kind="counter" if name in _CUMULATIVE_SERIES else "gauge",
            source="repro.diagnosis.engine",
            description=description,
            rule=series_rule.get(name, ""),
        ))
    for rule in _standard_rules():
        catalog.register(Signal(
            name=f"alert_{rule.name}", unit="state", kind="alert",
            source="repro.diagnosis.rules",
            description=f"{rule.severity}: {rule.description}",
            rule=rule.name,
        ))
    stage_help = {
        STAGE_PUBLISH: "app rank to local ldmsd publish cost",
        STAGE_BUS: "delivery on one daemon's stream bus",
        STAGE_FORWARD: "outbox wait plus network transfer to the peer",
        STAGE_RECEIVE: "arrival processing at the peer daemon",
        STAGE_INGEST: "terminal DSOS store plugin ingest",
        END_TO_END: "publish to durable store, whole spine",
    }
    for stage, description in stage_help.items():
        catalog.register(Signal(
            name=f"hop_latency_{stage}", unit="seconds", kind="histogram",
            source="repro.telemetry.collector",
            description=f"hop latency histogram: {description}",
            rule="latency_slo" if stage == END_TO_END else "",
        ))
    for name, unit, description in STORE_METRICS:
        catalog.register(Signal(
            name=name, unit=unit,
            kind="counter" if name.endswith("_total") else "gauge",
            source="repro.dsos.cluster",
            description=description,
            rule="under_replication" if name in (
                "store_quorum_degraded_total", "store_rejected_writes_total",
            ) else "",
        ))
    for name, unit, description in PROBE_METRICS:
        catalog.register(Signal(
            name=name, unit=unit,
            kind="counter" if name.endswith("_total") else "gauge",
            source="repro.fleet.probe",
            description=description,
        ))
    for name, unit, description in RECORDER_METRICS:
        catalog.register(Signal(
            name=name, unit=unit,
            kind="counter" if name.endswith("_total") else "gauge",
            source="repro.telemetry.flightrec",
            description=description,
        ))
    for name, unit, description in EXPLAIN_METRICS:
        catalog.register(Signal(
            name=name, unit=unit, kind="gauge",
            source="repro.diagnosis.explain",
            description=description,
        ))
    catalog.register(Signal(
        name="health_score", unit="points", kind="score",
        source="repro.fleet.scorecard",
        description="per-cluster readiness score, 0-100, "
                    "100 minus the sum of component deductions",
    ))
    for component, weight in COMPONENT_WEIGHTS.items():
        catalog.register(Signal(
            name=f"score_deduction_{component}", unit="points", kind="score",
            source="repro.fleet.scorecard",
            description=f"scorecard deduction for the {component} "
                        f"component (capped at {weight})",
        ))
    return catalog
