"""The live tail on DSOS ingest.

The diagnosis engine cannot wait for a post-run report: it needs to see
events *land* while the simulation still runs.  :class:`IngestTail`
registers as an observer on the :class:`~repro.dsos.store_plugin.
DsosStreamStore` and records, at the simulated instant each message's
rows are stored, a ``(t, job_id, rank, n_rows)`` entry.  Windowed
queries over the tail feed the throughput and imbalance rules.

Observation-only: the tail appends to host-side lists; it draws no
randomness and schedules nothing, so a tailed run is bit-identical to
an untailed one.
"""

from __future__ import annotations

import bisect

from repro.telemetry.trace import parse_trace_id

__all__ = ["IngestTail"]


class IngestTail:
    """Time-ordered record of stored messages, windowed per rank."""

    def __init__(self, store):
        self.store = store
        self._t: list[float] = []
        self._entries: list[tuple[float, int, int, int]] = []
        self.messages = 0
        self.rows = 0
        store.add_ingest_observer(self._on_stored)

    def _on_stored(self, message, n_rows: int) -> None:
        now = self.store.daemon.env.now
        parsed = parse_trace_id(message.trace_id) or (-1, -1, -1)
        self._t.append(now)
        self._entries.append((now, parsed[0], parsed[1], n_rows))
        self.messages += 1
        self.rows += n_rows

    # -- windowed queries ----------------------------------------------

    def _window(self, now: float, window_s: float):
        start = bisect.bisect_left(self._t, now - window_s)
        end = bisect.bisect_right(self._t, now)
        return self._entries[start:end]

    def stored_in_window(self, now: float, window_s: float) -> int:
        """Messages stored within ``(now - window_s, now]``."""
        return len(self._window(now, window_s))

    def rank_counts(self, now: float, window_s: float) -> dict[int, int]:
        """Stored-message count per rank within the trailing window."""
        counts: dict[int, int] = {}
        for _, _, rank, _ in self._window(now, window_s):
            counts[rank] = counts.get(rank, 0) + 1
        return counts

    def job_counts(self, now: float, window_s: float) -> dict[int, int]:
        """Stored-message count per job within the trailing window."""
        counts: dict[int, int] = {}
        for _, job, _, _ in self._window(now, window_s):
            counts[job] = counts.get(job, 0) + 1
        return counts
