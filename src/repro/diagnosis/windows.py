"""Sliding-window series for streaming rule evaluation.

Each :class:`SeriesWindow` is a time-ordered sequence of samples the
diagnosis engine appends once per evaluation tick.  Rules query them as
*windows*: the latest value, the delta or rate over the trailing window,
and a trailing-baseline rate (the mean rate over the N windows that
precede the current one) for regression-style rules ("throughput
collapsed vs where it was a moment ago").

Counters sampled cumulatively (bus published, objects stored, retries)
use :meth:`delta`/:meth:`rate`; level samples (queue depth, pending
backlog) use :meth:`latest`/:meth:`max_over`.
"""

from __future__ import annotations

import bisect

__all__ = ["SeriesWindow"]


class SeriesWindow:
    """A time-stamped sample series with trailing-window queries."""

    def __init__(self, name: str):
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def append(self, t: float, value: float) -> None:
        """Record one sample; timestamps must be non-decreasing."""
        if self._t and t < self._t[-1]:
            raise ValueError(
                f"sample at t={t} precedes last sample at t={self._t[-1]}"
            )
        self._t.append(t)
        self._v.append(float(value))

    def __len__(self) -> int:
        return len(self._t)

    @property
    def latest(self) -> float:
        """Most recent sample value (0.0 before any sample)."""
        return self._v[-1] if self._v else 0.0

    @property
    def latest_t(self) -> float | None:
        return self._t[-1] if self._t else None

    # -- window queries ------------------------------------------------

    def _index_at(self, t: float) -> int:
        """Index of the last sample with timestamp <= ``t`` (-1: none)."""
        return bisect.bisect_right(self._t, t) - 1

    def value_at(self, t: float) -> float:
        """Sample value in effect at time ``t`` (0.0 before the first)."""
        i = self._index_at(t)
        return self._v[i] if i >= 0 else 0.0

    def delta(self, window_s: float) -> float:
        """Change of a cumulative counter over the trailing window."""
        if not self._v:
            return 0.0
        return self._v[-1] - self.value_at(self._t[-1] - window_s)

    def rate(self, window_s: float) -> float:
        """Per-second rate of a cumulative counter over the window."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        return self.delta(window_s) / window_s

    def baseline_rate(self, window_s: float, n_windows: int = 4) -> float:
        """Mean per-second rate over the ``n_windows`` windows *before*
        the current one — the trailing baseline regression rules
        compare against.  0.0 until enough history exists."""
        if not self._v or n_windows < 1:
            return 0.0
        end = self._t[-1] - window_s
        start = end - n_windows * window_s
        span = end - start
        if span <= 0:
            return 0.0
        return (self.value_at(end) - self.value_at(start)) / span

    def max_over(self, window_s: float) -> float:
        """Maximum level sample within the trailing window."""
        if not self._v:
            return 0.0
        cutoff = self._t[-1] - window_s
        best = self._v[-1]
        for i in range(len(self._v) - 1, -1, -1):
            if self._t[i] < cutoff:
                break
            if self._v[i] > best:
                best = self._v[i]
        return best

    def tail(self, window_s: float) -> list[tuple[float, float]]:
        """The ``(t, value)`` samples inside the trailing window —
        what the live dashboard's windowed refresh draws."""
        if not self._v:
            return []
        cutoff = self._t[-1] - window_s
        start = bisect.bisect_left(self._t, cutoff)
        return list(zip(self._t[start:], self._v[start:]))
