"""DSOS: the Distributed Scalable Object Store (reimplemented).

The paper stores every connector message in DSOS because it offers high
ingest rates and indexed queries over huge volumes.  The pieces modelled
here, matching Section IV-D:

* :class:`~repro.dsos.schema.Schema` — typed attributes plus *joint
  indices* (``job_rank_time`` etc.); "each index provided a different
  query performance", which the query stats expose;
* :class:`~repro.dsos.daemon.Dsosd` — one storage daemon holding a
  shard of each container partition;
* :class:`~repro.dsos.cluster.DsosCluster` — multiple ``dsosd``
  instances; ingest is distributed round-robin and queries fan out to
  all daemons in parallel, results merged in index order (exactly the
  DSOS client behaviour the paper describes);
* :class:`~repro.dsos.client.DsosClient` — the Python-API facade the
  analysis modules use;
* :mod:`repro.dsos.store_plugin` — the LDMS stream-store plugin that
  lands connector messages in the database.
"""

from repro.dsos.schema import Attr, Schema, SchemaError, DARSHAN_DATA_SCHEMA
from repro.dsos.index import SortedIndex
from repro.dsos.partition import PartitionedContainer, PartitionInfo
from repro.dsos.daemon import Dsosd
from repro.dsos.cluster import DsosCluster
from repro.dsos.query import Query, QueryResult, QueryStats
from repro.dsos.client import DsosClient
from repro.dsos.store_plugin import DsosStreamStore
from repro.dsos.metrics_schema import LDMS_METRICS_SCHEMA
from repro.dsos.metric_store import MetricStreamStore

__all__ = [
    "Attr",
    "DARSHAN_DATA_SCHEMA",
    "DsosClient",
    "DsosCluster",
    "Dsosd",
    "DsosStreamStore",
    "LDMS_METRICS_SCHEMA",
    "MetricStreamStore",
    "PartitionInfo",
    "PartitionedContainer",
    "Query",
    "QueryResult",
    "QueryStats",
    "Schema",
    "SchemaError",
    "SortedIndex",
]
