"""The DSOS Python client API facade.

The paper's analysis modules use the SOS/DSOS Python API; this client
mirrors the bits they need — container attach, typed ingest, parallel
indexed queries — and is the object handed to the web-services data
source.
"""

from __future__ import annotations

from repro.dsos.cluster import DsosCluster
from repro.dsos.query import QueryResult
from repro.dsos.schema import Schema

__all__ = ["DsosClient"]


class DsosClient:
    """Thin, friendly wrapper over a :class:`DsosCluster`."""

    def __init__(self, cluster: DsosCluster):
        self.cluster = cluster

    def ensure_schema(self, schema: Schema) -> None:
        """Attach a schema if it is not already present (idempotent)."""
        if schema.name not in self.cluster.schemas:
            self.cluster.attach_schema(schema)

    def insert(self, schema_name: str, obj: dict) -> None:
        self.cluster.insert(schema_name, obj)

    def insert_many(self, schema_name: str, objs) -> int:
        return self.cluster.insert_many(schema_name, objs)

    def count(self, schema_name: str) -> int:
        return self.cluster.count(schema_name)

    def query(
        self,
        schema_name: str,
        index_name: str,
        *,
        prefix: tuple | None = None,
        begin: tuple | None = None,
        end: tuple | None = None,
        where: list[tuple] | None = None,
        limit: int | None = None,
    ) -> QueryResult:
        """One-call query in the style of the SOS Python API examples."""
        q = self.cluster.query(schema_name, index_name)
        if prefix is not None:
            q.prefix(*prefix)
        if begin is not None or end is not None:
            q.range(begin, end)
        for clause in where or ():
            q.where(*clause)
        if limit is not None:
            q.limit(limit)
        return q.execute()
