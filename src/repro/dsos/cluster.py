"""A DSOS cluster: several dsosd daemons behind one ingest/query façade."""

from __future__ import annotations

from repro.dsos.daemon import Dsosd
from repro.dsos.query import Query
from repro.dsos.schema import Schema, SchemaError

__all__ = ["DsosCluster"]


class DsosCluster:
    """N daemons; ingest round-robins, queries fan out to all."""

    def __init__(self, name: str, n_daemons: int = 4):
        if n_daemons < 1:
            raise ValueError("need at least one dsosd")
        self.name = name
        self.daemons = [Dsosd(f"{name}-dsosd{i}") for i in range(n_daemons)]
        self.schemas: dict[str, Schema] = {}
        self._rr = 0

    def attach_schema(self, schema: Schema) -> None:
        """Register a schema on every daemon."""
        if schema.name in self.schemas:
            raise SchemaError(f"schema {schema.name!r} already attached")
        self.schemas[schema.name] = schema
        for d in self.daemons:
            d.attach_schema(schema)

    def schema(self, name: str) -> Schema:
        try:
            return self.schemas[name]
        except KeyError:
            raise SchemaError(f"cluster has no schema {name!r}") from None

    # -- ingest -----------------------------------------------------------

    def insert(self, schema_name: str, obj: dict, *, validate: bool = True) -> None:
        """Store one object on the next daemon (round-robin)."""
        self.schema(schema_name)  # existence check with good error
        daemon = self.daemons[self._rr]
        self._rr = (self._rr + 1) % len(self.daemons)
        daemon.insert(schema_name, obj, validate=validate)

    def insert_many(self, schema_name: str, objs, *, validate: bool = True) -> int:
        """Store a batch, equivalent to sequential :meth:`insert` calls.

        Round-robin equivalence: daemon ``i`` receives the slice
        ``objs[(i - rr) % nd :: nd]`` (in order), which is exactly the
        objects sequential inserts would have handed it, and the cursor
        advances by ``len(objs)`` — so batched and per-object ingest
        place every object identically.
        """
        objs = objs if isinstance(objs, list) else list(objs)
        self.schema(schema_name)  # existence check with good error
        daemons = self.daemons
        nd = len(daemons)
        if nd == 1:
            daemons[0].insert_many(schema_name, objs, validate=validate)
        else:
            rr = self._rr
            for i, daemon in enumerate(daemons):
                chunk = objs[(i - rr) % nd :: nd]
                if chunk:
                    daemon.insert_many(schema_name, chunk, validate=validate)
            self._rr = (rr + len(objs)) % nd
        return len(objs)

    def count(self, schema_name: str) -> int:
        return sum(d.count(schema_name) for d in self.daemons)

    # -- query ------------------------------------------------------------

    def query(self, schema_name: str, index_name: str) -> Query:
        """Start building a query against ``index_name``."""
        schema = self.schema(schema_name)
        if index_name not in schema.indices:
            raise SchemaError(
                f"schema {schema_name!r} has no index {index_name!r}; "
                f"available: {sorted(schema.indices)}"
            )
        return Query(self, schema_name, index_name)
