"""A DSOS cluster: several dsosd daemons behind one ingest/query façade.

Two wiring modes share this façade:

**Legacy** (``shards=1, replication=1``, the default): a flat bag of
daemons; ingest round-robins objects across them and queries fan out to
all.  This path is byte-identical to the pre-replication store — same
placement, same counters, same query results.

**Replicated** (``shards > 1`` or ``replication > 1``): ``shards × R``
daemons arranged as one replica set per shard.  Objects route to a
shard by job-hash (CRC-32 of the shard-key attribute), each write gets
a cluster-assigned per-shard sequence number — the object's identity
for anti-entropy — and lands on every live replica; the write is
*stored* once ``W`` replicas ack (``write_quorum``, majority by
default), *degraded* when ``0 < acks < W``, and *rejected* only when no
replica in the shard is alive.  Daemons run in WAL mode so a crash can
replay its log on restart, and the cluster-side repair pass pulls
whatever a torn tail lost from peer replicas.

The replica invariant the census tracks: after repair converges, every
surviving object has ``copies(obj) ≥ min(R, live_replicas)``.  Copy
counts are maintained incrementally (per-shard histogram updated on
write/crash/recover/repair), so the census is O(shards), not
O(objects) — cheap enough for the diagnosis engine to sample every
tick.  Crash, recovery, and repair must go through the cluster methods
(:meth:`crash_daemon` / :meth:`recover_daemon` / :meth:`repair_daemon`)
so this accounting stays exact.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass

from repro.dsos.daemon import Dsosd, StoreDownError
from repro.dsos.journal import WalRecovery
from repro.dsos.query import Query
from repro.dsos.schema import Schema, SchemaError

__all__ = ["DsosCluster", "IngestAck", "STORE_METRICS", "StoreCensus"]

#: Every store metric family the OpenMetrics exporter emits from a
#: replicated cluster's :meth:`DsosCluster.stats_snapshot`, as ``(name,
#: unit, description)`` — the signal catalog registers these rows, so a
#: family added here without a catalog entry fails ``repro fleet
#: --export --check``.  Per-daemon families carry ``{cluster, daemon,
#: shard}`` labels; cluster-level families carry ``{cluster}`` only.
STORE_METRICS = (
    ("store_objects", "objects",
     "objects applied on one dsosd replica"),
    ("store_crashes_total", "crashes",
     "times one dsosd replica crashed (cumulative)"),
    ("store_wal_records_total", "records",
     "WAL records durably appended on one replica (cumulative)"),
    ("store_wal_replayed_total", "records",
     "WAL records replayed across restarts on one replica (cumulative)"),
    ("store_wal_truncated_bytes_total", "bytes",
     "torn-tail bytes truncated at WAL recovery (cumulative)"),
    ("store_repair_pulled_total", "objects",
     "objects pulled from peers by anti-entropy repair (cumulative)"),
    ("store_writes_total", "writes",
     "replicated writes the cluster accepted (cumulative)"),
    ("store_quorum_degraded_total", "writes",
     "writes acked below the write quorum (cumulative)"),
    ("store_rejected_writes_total", "writes",
     "writes rejected with no live replica in the shard (cumulative)"),
)


@dataclass(frozen=True)
class IngestAck:
    """Outcome of one replicated write."""

    shard: int
    #: Per-shard sequence number; ``None`` when the write was rejected
    #: (no live replica — no identity was allocated).
    seq: int | None
    acks: int
    replication: int
    write_quorum: int

    @property
    def accepted(self) -> bool:
        """At least one replica holds the object (it is not lost)."""
        return self.acks > 0

    @property
    def quorum_met(self) -> bool:
        return self.acks >= self.write_quorum


@dataclass(frozen=True)
class StoreCensus:
    """Replica accounting over every object the cluster ever accepted."""

    objects: int
    #: Objects with zero live copies anywhere (unrecoverable unless a
    #: holder restarts and replays them from its WAL).
    lost: int
    #: Objects with at least one copy but fewer than
    #: ``min(R, live_replicas)`` — repair owes them copies.
    under_replicated: int
    replicas_down: int
    #: Shards currently missing copies or replicas.
    degraded_shards: tuple

    @property
    def complete(self) -> bool:
        return self.lost == 0 and self.under_replicated == 0


class DsosCluster:
    """N daemons; ingest round-robins, queries fan out to all."""

    def __init__(
        self,
        name: str,
        n_daemons: int = 4,
        *,
        shards: int = 1,
        replication: int = 1,
        write_quorum: int | None = None,
        repair: bool = True,
    ):
        if shards < 1 or replication < 1:
            raise ValueError("shards and replication must be >= 1")
        self.name = name
        self.shards = shards
        self.replication = replication
        self.sharded = shards > 1 or replication > 1
        self.repair_enabled = repair
        if write_quorum is None:
            write_quorum = replication // 2 + 1
        if not 1 <= write_quorum <= replication:
            raise ValueError(
                f"write_quorum {write_quorum} outside [1, {replication}]"
            )
        self.write_quorum = write_quorum
        if self.sharded:
            # Topology is shards × R; the flat n_daemons knob does not
            # apply (each shard owns exactly its replica set).
            n_daemons = shards * replication
            self.daemons = [
                Dsosd(f"{name}-dsosd{i}", wal_enabled=True)
                for i in range(n_daemons)
            ]
            self.replica_sets: list[list[Dsosd]] = []
            for s in range(shards):
                replicas = self.daemons[s * replication:(s + 1) * replication]
                for d in replicas:
                    d.shard_id = s
                self.replica_sets.append(replicas)
            #: Next sequence number per shard (allocated on accept).
            self._next_seq = [0] * shards
            #: seq -> schema name, per shard (for per-schema counts).
            self._seq_schema: list[list[str]] = [[] for _ in range(shards)]
            #: seq -> live-copy count, per shard; plus the histogram
            #: {copies: n_objects} the census reads.
            self._copies: list[dict] = [{} for _ in range(shards)]
            self._copy_hist: list[Counter] = [Counter() for _ in range(shards)]
            # Ingest accounting.
            self.writes = 0
            self.quorum_degraded_writes = 0
            self.rejected_writes = 0
            self._shard_attr: dict[str, str] = {}
        else:
            if n_daemons < 1:
                raise ValueError("need at least one dsosd")
            self.daemons = [Dsosd(f"{name}-dsosd{i}") for i in range(n_daemons)]
        self.schemas: dict[str, Schema] = {}
        self._rr = 0

    def attach_schema(self, schema: Schema) -> None:
        """Register a schema on every daemon."""
        if schema.name in self.schemas:
            raise SchemaError(f"schema {schema.name!r} already attached")
        self.schemas[schema.name] = schema
        for d in self.daemons:
            d.attach_schema(schema)
        if self.sharded:
            self._shard_attr[schema.name] = self._pick_shard_attr(schema)

    @staticmethod
    def _pick_shard_attr(schema: Schema) -> str:
        """Shard key: job hash when the schema has one (the paper's unit
        of query locality), else the leading attr of its first index."""
        if "job_id" in schema.attrs:
            return "job_id"
        for key_attrs in schema.indices.values():
            return key_attrs[0]
        return next(iter(schema.attrs))

    def schema(self, name: str) -> Schema:
        try:
            return self.schemas[name]
        except KeyError:
            raise SchemaError(f"cluster has no schema {name!r}") from None

    # -- ingest -----------------------------------------------------------

    def shard_of(self, schema_name: str, obj: dict) -> int:
        """Job-hash routing: which shard owns this object."""
        if self.shards == 1:
            return 0
        key = obj[self._shard_attr[schema_name]]
        return zlib.crc32(str(key).encode("utf-8")) % self.shards

    def insert(self, schema_name: str, obj: dict, *, validate: bool = True) -> None:
        """Store one object on the next daemon (round-robin)."""
        if self.sharded:
            self.insert_replicated(schema_name, obj, validate=validate)
            return
        self.schema(schema_name)  # existence check with good error
        daemon = self.daemons[self._rr]
        self._rr = (self._rr + 1) % len(self.daemons)
        daemon.insert(schema_name, obj, validate=validate)

    def insert_many(self, schema_name: str, objs, *, validate: bool = True) -> int:
        """Store a batch, equivalent to sequential :meth:`insert` calls.

        Round-robin equivalence: daemon ``i`` receives the slice
        ``objs[(i - rr) % nd :: nd]`` (in order), which is exactly the
        objects sequential inserts would have handed it, and the cursor
        advances by ``len(objs)`` — so batched and per-object ingest
        place every object identically.
        """
        objs = objs if isinstance(objs, list) else list(objs)
        if self.sharded:
            for obj in objs:
                self.insert_replicated(schema_name, obj, validate=validate)
            return len(objs)
        self.schema(schema_name)  # existence check with good error
        daemons = self.daemons
        nd = len(daemons)
        if nd == 1:
            daemons[0].insert_many(schema_name, objs, validate=validate)
        else:
            rr = self._rr
            for i, daemon in enumerate(daemons):
                chunk = objs[(i - rr) % nd :: nd]
                if chunk:
                    daemon.insert_many(schema_name, chunk, validate=validate)
            self._rr = (rr + len(objs)) % nd
        return len(objs)

    def insert_replicated(
        self,
        schema_name: str,
        obj: dict,
        *,
        trace_id: str = "",
        validate: bool = True,
    ) -> IngestAck:
        """Quorum write: land the object on every live replica of its
        shard and report how many acked.

        A write is *stored* once ``write_quorum`` replicas ack; with
        fewer (but nonzero) acks it is stored-degraded (repair owes the
        missing copies); with zero live replicas it is rejected and no
        sequence number is consumed — the caller accounts the drop.
        """
        if not self.sharded:
            raise SchemaError("insert_replicated requires a sharded cluster")
        schema = self.schema(schema_name)
        if validate:
            schema.validate(obj)
        shard = self.shard_of(schema_name, obj)
        replicas = self.replica_sets[shard]
        live = [r for r in replicas if r.alive]
        self.writes += 1
        if not live:
            self.rejected_writes += 1
            return IngestAck(shard, None, 0, self.replication, self.write_quorum)
        seq = self._next_seq[shard]
        self._next_seq[shard] = seq + 1
        self._seq_schema[shard].append(schema_name)
        for replica in live:
            replica.insert_seq(
                schema_name, seq, obj, trace_id=trace_id, validate=False
            )
        acks = len(live)
        self._copies[shard][seq] = acks
        self._copy_hist[shard][acks] += 1
        ack = IngestAck(shard, seq, acks, self.replication, self.write_quorum)
        if not ack.quorum_met:
            self.quorum_degraded_writes += 1
        return ack

    def count(self, schema_name: str) -> int:
        """Stored objects: distinct (replicated mode) or total (legacy,
        where every object has exactly one copy)."""
        if self.sharded:
            return self.count_distinct(schema_name)
        return sum(d.count(schema_name) for d in self.daemons)

    def count_distinct(self, schema_name: str) -> int:
        """Distinct surviving objects of one schema across all shards."""
        if not self.sharded:
            return self.count(schema_name)
        self.schema(schema_name)
        total = 0
        for shard in range(self.shards):
            copies = self._copies[shard]
            names = self._seq_schema[shard]
            total += sum(
                1
                for seq, n in copies.items()
                if n > 0 and names[seq] == schema_name
            )
        return total

    # -- crash / recovery / repair -----------------------------------------

    def _resolve(self, daemon) -> Dsosd:
        if isinstance(daemon, Dsosd):
            return daemon
        return self.daemons[daemon]

    def _bump_copies(self, shard: int, seq: int, delta: int) -> None:
        copies = self._copies[shard]
        hist = self._copy_hist[shard]
        old = copies[seq]
        new = old + delta
        copies[seq] = new
        hist[old] -= 1
        if not hist[old]:
            del hist[old]
        hist[new] += 1

    def crash_daemon(self, daemon, *, tear_tail: bool = False,
                     tear_bytes: int = 7) -> Dsosd:
        """Crash one daemon, keeping the cluster's copy accounting exact."""
        d = self._resolve(daemon)
        if not self.sharded:
            raise SchemaError("crash_daemon requires a sharded cluster")
        if d.alive:
            lost_seqs = set(d.applied)
            d.fail(tear_tail=tear_tail, tear_bytes=tear_bytes)
            for seq in lost_seqs:
                self._bump_copies(d.shard_id, seq, -1)
        return d

    def recover_daemon(self, daemon) -> WalRecovery:
        """Restart one daemon: WAL replay, then copy accounting catch-up.

        Anti-entropy repair (:meth:`repair_daemon`) is a separate step —
        the caller decides whether repair runs (the ``repair_enabled``
        knob gates the drill's behavior, not this method).
        """
        d = self._resolve(daemon)
        recovery = d.recover()
        for record in recovery.entries:
            self._bump_copies(d.shard_id, record.seq, +1)
        return recovery

    def repair_daemon(self, daemon) -> list[tuple]:
        """Anti-entropy: pull objects this replica is missing from its
        live peers.  Returns the pulled ``(seq, trace_id)`` pairs."""
        d = self._resolve(daemon)
        if not d.alive:
            raise StoreDownError(f"cannot repair crashed daemon {d.name}")
        peers = [
            r for r in self.replica_sets[d.shard_id]
            if r is not d and r.alive
        ]
        if not peers:
            return []
        union: set[int] = set()
        for p in peers:
            union |= p.applied
        missing = union - d.applied
        pulled = []
        for peer in peers:
            if not missing:
                break
            for seq, schema_name, obj, trace_id in peer.records_for(sorted(missing)):
                d.apply_repair(seq, schema_name, obj, trace_id)
                self._bump_copies(d.shard_id, seq, +1)
                pulled.append((seq, trace_id))
                missing.discard(seq)
        pulled.sort()
        return pulled

    def repair_all(self) -> dict:
        """Run anti-entropy on every live replica; daemon → pulled pairs."""
        if not self.sharded:
            return {}
        return {
            d.name: self.repair_daemon(d)
            for d in self.daemons
            if d.alive
        }

    # -- census / health ---------------------------------------------------

    def census(self) -> StoreCensus:
        """Replica accounting right now (run after recovery + repair to
        check convergence; mid-outage it reports the damage)."""
        if not self.sharded:
            objects = sum(
                d.count(name) for d in self.daemons for name in self.schemas
            )
            return StoreCensus(objects, 0, 0, 0, ())
        lost = under = replicas_down = 0
        degraded = []
        for shard in range(self.shards):
            replicas = self.replica_sets[shard]
            live = sum(1 for r in replicas if r.alive)
            down = len(replicas) - live
            replicas_down += down
            target = min(self.replication, live)
            hist = self._copy_hist[shard]
            shard_lost = hist.get(0, 0)
            shard_under = sum(
                n for copies, n in hist.items() if 0 < copies < target
            )
            lost += shard_lost
            under += shard_under
            if shard_lost or shard_under or down:
                degraded.append(shard)
        objects = sum(self._next_seq)
        return StoreCensus(objects, lost, under, replicas_down, tuple(degraded))

    def health_summary(self) -> dict:
        """The store gauges the diagnosis engine samples every tick."""
        if not self.sharded:
            return {
                "replicas_down": 0,
                "under_replicated": 0,
                "lost": 0,
                "replica_lag": 0,
                "shard_skew": 0,
            }
        census = self.census()
        lag = 0
        for replicas in self.replica_sets:
            live_counts = [len(r.applied) for r in replicas if r.alive]
            if len(live_counts) > 1:
                lag = max(lag, max(live_counts) - min(live_counts))
        skew = 0
        if self.shards > 1:
            visible = [
                self._next_seq[s] - self._copy_hist[s].get(0, 0)
                for s in range(self.shards)
            ]
            skew = max(visible) - min(visible)
        return {
            "replicas_down": census.replicas_down,
            "under_replicated": census.under_replicated,
            "lost": census.lost,
            "replica_lag": lag,
            "shard_skew": skew,
        }

    def shard_layout(self) -> list[dict]:
        """Topology description for ``repro store --topology``."""
        if not self.sharded:
            return [{
                "shard": 0,
                "daemons": [d.name for d in self.daemons],
                "alive": [d.alive for d in self.daemons],
                "objects": [
                    sum(d.count(name) for name in self.schemas)
                    for d in self.daemons
                ],
            }]
        return [
            {
                "shard": s,
                "daemons": [d.name for d in replicas],
                "alive": [d.alive for d in replicas],
                "objects": [len(d.applied) for d in replicas],
            }
            for s, replicas in enumerate(self.replica_sets)
        ]

    def stats_snapshot(self) -> dict:
        """Cluster + per-daemon counters, every series qualified by
        daemon name and shard id."""
        snap = {
            "cluster": self.name,
            "sharded": self.sharded,
            "shards": self.shards,
            "replication": self.replication,
            "write_quorum": self.write_quorum if self.sharded else 1,
            "daemons": [d.stats_snapshot() for d in self.daemons],
        }
        if self.sharded:
            snap.update(
                writes=self.writes,
                quorum_degraded_writes=self.quorum_degraded_writes,
                rejected_writes=self.rejected_writes,
            )
        return snap

    # -- query ------------------------------------------------------------

    def query(self, schema_name: str, index_name: str) -> Query:
        """Start building a query against ``index_name``."""
        schema = self.schema(schema_name)
        if index_name not in schema.indices:
            raise SchemaError(
                f"schema {schema_name!r} has no index {index_name!r}; "
                f"available: {sorted(schema.indices)}"
            )
        return Query(self, schema_name, index_name)
