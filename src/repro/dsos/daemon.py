"""dsosd: one storage daemon holding object shards.

Each daemon stores a shard of every schema's objects together with the
schema's indices over *its* shard.  Cluster-level queries fan out to
daemons and merge; the per-daemon work (rows scanned in index order) is
what the latency model charges.

Replicated clusters run daemons in **WAL mode**: every applied object
carries a cluster-assigned per-shard sequence number, is logged to a
checksummed :class:`~repro.dsos.journal.StoreWal` before it becomes
visible, and is tracked in an applied-set so peers can compute the
set difference for anti-entropy repair.  A crash (:meth:`fail`) wipes
all in-memory state — objects, indices, applied-set — but the WAL
bytes survive (host-side durable, minus an optional torn tail);
:meth:`recover` replays the longest clean WAL prefix and the cluster's
repair pass pulls whatever the tail lost from peer replicas.

Legacy daemons (WAL off) skip all of it: no sequence bookkeeping, no
log appends, byte-identical to the pre-replication store.
"""

from __future__ import annotations

from operator import itemgetter

from repro.dsos.index import SortedIndex
from repro.dsos.journal import StoreWal, WalRecovery
from repro.dsos.schema import Schema, SchemaError

__all__ = ["Dsosd", "StoreDownError"]

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class StoreDownError(RuntimeError):
    """An operation reached a crashed daemon (or a replica-less shard)."""


class _Shard:
    """One schema's objects + indices on one daemon."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.objects: list[dict] = []
        self.indices = {
            name: SortedIndex(name, attrs)
            for name, attrs in schema.indices.items()
        }

    def add(self, obj: dict) -> int:
        oid = len(self.objects)
        self.objects.append(obj)
        for name, index in self.indices.items():
            index.add(self.schema.key_for(name, obj), oid)
        return oid

    def add_many(self, objs: list) -> None:
        """Append a batch: one index pass per index, not per object.

        Keys are built straight from the schema's key attrs (same tuples
        :meth:`~repro.dsos.schema.Schema.key_for` would produce — an
        ``itemgetter`` over several attrs already yields the tuple), so
        the per-key length check in ``SortedIndex.add`` is redundant
        here.
        """
        base = len(self.objects)
        self.objects.extend(objs)
        for name, index in self.indices.items():
            attrs = self.schema.indices[name]
            if len(attrs) == 1:
                a0 = attrs[0]
                entries = [
                    ((obj[a0],), base + i) for i, obj in enumerate(objs)
                ]
            else:
                getter = itemgetter(*attrs)
                entries = [
                    (getter(obj), base + i) for i, obj in enumerate(objs)
                ]
            index.extend_unchecked(entries)


class Dsosd:
    """One DSOS storage daemon."""

    def __init__(self, name: str, *, wal_enabled: bool = False):
        self.name = name
        self._shards: dict[str, _Shard] = {}
        #: Ingest accounting (objects currently applied; a crash resets
        #: it and recovery/repair re-earn it).
        self.objects_stored = 0
        self.alive = True
        #: Which replica group this daemon serves (set by the cluster).
        self.shard_id = 0
        self.wal_enabled = wal_enabled
        self.wal = StoreWal() if wal_enabled else None
        #: Sequence numbers applied on this daemon (WAL mode only).
        self.applied: set[int] = set()
        #: seq -> (schema_name, obj, trace_id); the repair-pull source.
        self._by_seq: dict[int, tuple] = {}
        # Resilience accounting.
        self.crashes = 0
        self.wal_replayed = 0
        self.wal_truncated_bytes = 0
        self.repair_pulled = 0

    def attach_schema(self, schema: Schema) -> None:
        if schema.name in self._shards:
            raise SchemaError(f"schema {schema.name!r} already attached to {self.name}")
        self._shards[schema.name] = _Shard(schema)

    def has_schema(self, schema_name: str) -> bool:
        return schema_name in self._shards

    def _shard(self, schema_name: str) -> _Shard:
        try:
            return self._shards[schema_name]
        except KeyError:
            raise SchemaError(
                f"daemon {self.name} has no schema {schema_name!r}"
            ) from None

    # -- ingest ---------------------------------------------------------------

    def insert(self, schema_name: str, obj: dict, *, validate: bool = True) -> None:
        shard = self._shard(schema_name)
        if validate:
            shard.schema.validate(obj)
        shard.add(obj)
        self.objects_stored += 1

    def insert_many(self, schema_name: str, objs: list, *, validate: bool = True) -> None:
        """Batch insert, equivalent to sequential :meth:`insert` calls
        (validation stays interleaved per object, so a mid-batch schema
        error leaves exactly the objects a sequential caller would)."""
        shard = self._shard(schema_name)
        if validate:
            for obj in objs:
                shard.schema.validate(obj)
                shard.add(obj)
                self.objects_stored += 1
        else:
            shard.add_many(objs)
            self.objects_stored += len(objs)

    def insert_seq(
        self,
        schema_name: str,
        seq: int,
        obj: dict,
        *,
        trace_id: str = "",
        validate: bool = True,
    ) -> None:
        """Replicated apply: WAL first, then the in-memory shard.

        The WAL append precedes visibility, so a crash between the two
        can only lose an object the log already holds — replay puts it
        back.
        """
        if not self.alive:
            raise StoreDownError(f"daemon {self.name} is down")
        if self.wal is None:
            raise SchemaError(
                f"daemon {self.name} is not in WAL mode; use insert()"
            )
        shard = self._shard(schema_name)
        if validate:
            shard.schema.validate(obj)
        self.wal.append(seq, schema_name, obj, trace_id)
        shard.add(obj)
        self.applied.add(seq)
        self._by_seq[seq] = (schema_name, obj, trace_id)
        self.objects_stored += 1

    def count(self, schema_name: str) -> int:
        return len(self._shard(schema_name).objects)

    # -- crash / recovery --------------------------------------------------------

    def fail(self, *, tear_tail: bool = False, tear_bytes: int = 7) -> None:
        """Crash: all in-memory state is gone; the WAL bytes survive.

        ``tear_tail`` models the crash landing mid-append — the last
        ``tear_bytes`` of the log never made it to disk, so recovery
        must truncate (not trust) the torn record.
        """
        self.alive = False
        self.crashes += 1
        self._shards = {
            name: _Shard(shard.schema) for name, shard in self._shards.items()
        }
        self.applied = set()
        self._by_seq = {}
        self.objects_stored = 0
        if tear_tail:
            if self.wal is None:
                raise SchemaError(f"daemon {self.name} has no WAL to tear")
            self.wal.tear_tail(tear_bytes)

    def recover(self) -> WalRecovery:
        """Restart: replay the longest clean WAL prefix, then live again.

        Replayed objects skip validation (they validated on first
        apply) and do not re-append to the WAL.  Whatever a torn or
        corrupt tail lost stays missing until the cluster's
        anti-entropy repair pulls it from peers.
        """
        if self.wal is None:
            raise SchemaError(f"daemon {self.name} has no WAL to recover from")
        recovery = self.wal.recover()
        for record in recovery.entries:
            shard = self._shard(record.schema)
            obj = record.obj
            shard.add(obj)
            self.applied.add(record.seq)
            self._by_seq[record.seq] = (record.schema, obj, record.trace_id)
            self.objects_stored += 1
        self.wal_replayed += len(recovery.entries)
        self.wal_truncated_bytes += recovery.truncated_bytes
        self.alive = True
        return recovery

    def records_for(self, seqs) -> list[tuple]:
        """Repair-pull source: ``(seq, schema, obj, trace_id)`` for every
        requested sequence number this daemon has applied."""
        out = []
        for seq in seqs:
            entry = self._by_seq.get(seq)
            if entry is not None:
                out.append((seq, *entry))
        return out

    def apply_repair(self, seq: int, schema_name: str, obj: dict,
                     trace_id: str = "") -> None:
        """Apply one object pulled from a peer replica (idempotent)."""
        if seq in self.applied:
            return
        self.insert_seq(schema_name, seq, obj, trace_id=trace_id, validate=False)
        self.repair_pulled += 1

    # -- observability ------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Per-daemon counters, qualified by daemon name and shard id —
        two daemons on one node must stay two series."""
        snap = {
            "daemon": self.name,
            "shard": self.shard_id,
            "alive": self.alive,
            "objects_stored": self.objects_stored,
            "crashes": self.crashes,
        }
        if self.wal is not None:
            snap.update(
                wal_records=self.wal.records_appended,
                wal_replayed=self.wal_replayed,
                wal_truncated_bytes=self.wal_truncated_bytes,
                repair_pulled=self.repair_pulled,
            )
        return snap

    # -- shard-local query -------------------------------------------------------

    def query_shard(
        self,
        schema_name: str,
        index_name: str,
        *,
        begin: tuple | None = None,
        end: tuple | None = None,
        prefix: tuple | None = None,
        filters: list[tuple] | None = None,
    ) -> tuple[list[tuple], int]:
        """Sorted (key, object) pairs matching the query, plus the number
        of index entries scanned (pre-filter) for the cost model."""
        shard = self._shard(schema_name)
        if index_name not in shard.indices:
            raise SchemaError(
                f"schema {schema_name!r} has no index {index_name!r}"
            )
        index = shard.indices[index_name]
        if prefix is not None:
            if begin is not None or end is not None:
                raise ValueError("prefix is exclusive with begin/end")
            oids = index.prefix_range(prefix)
        else:
            oids = index.range(begin, end)
        scanned = len(oids)
        out = []
        for oid in oids:
            obj = shard.objects[oid]
            if filters and not self._matches(obj, filters):
                continue
            out.append((shard.schema.key_for(index_name, obj), obj))
        return out, scanned

    @staticmethod
    def _matches(obj: dict, filters: list[tuple]) -> bool:
        for attr, op, value in filters:
            fn = _OPS.get(op)
            if fn is None:
                raise ValueError(f"unknown filter op {op!r} (use {sorted(_OPS)})")
            if attr not in obj:
                raise SchemaError(f"filter references unknown attribute {attr!r}")
            if not fn(obj[attr], value):
                return False
        return True
