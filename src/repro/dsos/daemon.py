"""dsosd: one storage daemon holding object shards.

Each daemon stores a shard of every schema's objects together with the
schema's indices over *its* shard.  Cluster-level queries fan out to
daemons and merge; the per-daemon work (rows scanned in index order) is
what the latency model charges.
"""

from __future__ import annotations

from operator import itemgetter

from repro.dsos.index import SortedIndex
from repro.dsos.schema import Schema, SchemaError

__all__ = ["Dsosd"]

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class _Shard:
    """One schema's objects + indices on one daemon."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.objects: list[dict] = []
        self.indices = {
            name: SortedIndex(name, attrs)
            for name, attrs in schema.indices.items()
        }

    def add(self, obj: dict) -> int:
        oid = len(self.objects)
        self.objects.append(obj)
        for name, index in self.indices.items():
            index.add(self.schema.key_for(name, obj), oid)
        return oid

    def add_many(self, objs: list) -> None:
        """Append a batch: one index pass per index, not per object.

        Keys are built straight from the schema's key attrs (same tuples
        :meth:`~repro.dsos.schema.Schema.key_for` would produce — an
        ``itemgetter`` over several attrs already yields the tuple), so
        the per-key length check in ``SortedIndex.add`` is redundant
        here.
        """
        base = len(self.objects)
        self.objects.extend(objs)
        for name, index in self.indices.items():
            attrs = self.schema.indices[name]
            if len(attrs) == 1:
                a0 = attrs[0]
                entries = [
                    ((obj[a0],), base + i) for i, obj in enumerate(objs)
                ]
            else:
                getter = itemgetter(*attrs)
                entries = [
                    (getter(obj), base + i) for i, obj in enumerate(objs)
                ]
            index.extend_unchecked(entries)


class Dsosd:
    """One DSOS storage daemon."""

    def __init__(self, name: str):
        self.name = name
        self._shards: dict[str, _Shard] = {}
        #: Ingest accounting.
        self.objects_stored = 0

    def attach_schema(self, schema: Schema) -> None:
        if schema.name in self._shards:
            raise SchemaError(f"schema {schema.name!r} already attached to {self.name}")
        self._shards[schema.name] = _Shard(schema)

    def has_schema(self, schema_name: str) -> bool:
        return schema_name in self._shards

    def _shard(self, schema_name: str) -> _Shard:
        try:
            return self._shards[schema_name]
        except KeyError:
            raise SchemaError(
                f"daemon {self.name} has no schema {schema_name!r}"
            ) from None

    # -- ingest ---------------------------------------------------------------

    def insert(self, schema_name: str, obj: dict, *, validate: bool = True) -> None:
        shard = self._shard(schema_name)
        if validate:
            shard.schema.validate(obj)
        shard.add(obj)
        self.objects_stored += 1

    def insert_many(self, schema_name: str, objs: list, *, validate: bool = True) -> None:
        """Batch insert, equivalent to sequential :meth:`insert` calls
        (validation stays interleaved per object, so a mid-batch schema
        error leaves exactly the objects a sequential caller would)."""
        shard = self._shard(schema_name)
        if validate:
            for obj in objs:
                shard.schema.validate(obj)
                shard.add(obj)
                self.objects_stored += 1
        else:
            shard.add_many(objs)
            self.objects_stored += len(objs)

    def count(self, schema_name: str) -> int:
        return len(self._shard(schema_name).objects)

    # -- shard-local query -------------------------------------------------------

    def query_shard(
        self,
        schema_name: str,
        index_name: str,
        *,
        begin: tuple | None = None,
        end: tuple | None = None,
        prefix: tuple | None = None,
        filters: list[tuple] | None = None,
    ) -> tuple[list[tuple], int]:
        """Sorted (key, object) pairs matching the query, plus the number
        of index entries scanned (pre-filter) for the cost model."""
        shard = self._shard(schema_name)
        if index_name not in shard.indices:
            raise SchemaError(
                f"schema {schema_name!r} has no index {index_name!r}"
            )
        index = shard.indices[index_name]
        if prefix is not None:
            if begin is not None or end is not None:
                raise ValueError("prefix is exclusive with begin/end")
            oids = index.prefix_range(prefix)
        else:
            oids = index.range(begin, end)
        scanned = len(oids)
        out = []
        for oid in oids:
            obj = shard.objects[oid]
            if filters and not self._matches(obj, filters):
                continue
            out.append((shard.schema.key_for(index_name, obj), obj))
        return out, scanned

    @staticmethod
    def _matches(obj: dict, filters: list[tuple]) -> bool:
        for attr, op, value in filters:
            fn = _OPS.get(op)
            if fn is None:
                raise ValueError(f"unknown filter op {op!r} (use {sorted(_OPS)})")
            if attr not in obj:
                raise SchemaError(f"filter references unknown attribute {attr!r}")
            if not fn(obj[attr], value):
                return False
        return True
