"""Sorted indices with lazy batch materialization.

DSOS ingests at high rates and queries with sorted iterators.  We get
both properties by appending new keys to a pending buffer and merging
it into the sorted backbone on first query (timsort exploits the
presortedness of timestamp-ordered ingest, so this is near-linear).
Range lookups are binary searches returning positions, and the scan
count is surfaced for the index-choice ablation.
"""

from __future__ import annotations

import bisect

__all__ = ["SortedIndex"]


class SortedIndex:
    """Maps sort keys (tuples) to object ids, in key order."""

    def __init__(self, name: str, key_attrs: tuple):
        self.name = name
        self.key_attrs = tuple(key_attrs)
        self._keys: list[tuple] = []
        self._oids: list[int] = []
        self._pending: list[tuple[tuple, int]] = []

    def __len__(self) -> int:
        return len(self._keys) + len(self._pending)

    def add(self, key: tuple, oid: int) -> None:
        """O(1) append; ordering is restored lazily."""
        if len(key) != len(self.key_attrs):
            raise ValueError(
                f"index {self.name!r} expects {len(self.key_attrs)}-part keys, "
                f"got {key!r}"
            )
        self._pending.append((key, oid))

    def extend_unchecked(self, pairs: list) -> None:
        """Bulk :meth:`add` of ``(key, oid)`` pairs whose key lengths the
        caller guarantees (batch ingest builds them from schema attrs)."""
        self._pending.extend(pairs)

    def _materialize(self) -> None:
        if not self._pending:
            return
        merged = list(zip(self._keys, self._oids))
        merged.extend(self._pending)
        self._pending.clear()
        merged.sort(key=lambda kv: kv[0])
        self._keys = [k for k, _ in merged]
        self._oids = [o for _, o in merged]

    # -- range scans ----------------------------------------------------------

    def range(self, begin: tuple | None = None, end: tuple | None = None):
        """Object ids with ``begin <= key < end``, in key order.

        ``begin``/``end`` may be key *prefixes* (shorter than the full
        key); prefix semantics follow tuple comparison: a begin prefix
        includes all completions, an end prefix excludes them (use
        :meth:`prefix_range` for inclusive prefix matching).
        """
        self._materialize()
        lo = 0 if begin is None else bisect.bisect_left(self._keys, tuple(begin))
        hi = len(self._keys) if end is None else bisect.bisect_left(self._keys, tuple(end))
        return self._oids[lo:hi]

    def prefix_range(self, prefix: tuple):
        """Object ids whose key starts with ``prefix``, in key order."""
        prefix = tuple(prefix)
        if len(prefix) > len(self.key_attrs):
            raise ValueError(f"prefix longer than index key: {prefix!r}")
        self._materialize()
        lo = bisect.bisect_left(self._keys, prefix)
        hi = bisect.bisect_right(self._keys, prefix + (_Infinity(),))
        return self._oids[lo:hi]

    def iter_sorted(self):
        """(key, oid) pairs in key order."""
        self._materialize()
        return zip(self._keys, self._oids)

    def min_key(self) -> tuple | None:
        self._materialize()
        return self._keys[0] if self._keys else None

    def max_key(self) -> tuple | None:
        self._materialize()
        return self._keys[-1] if self._keys else None


class _Infinity:
    """Compares greater than every concrete key component."""

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, _Infinity)

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return 0
