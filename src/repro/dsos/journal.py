"""Write-ahead journals for the DSOS store: dedup WAL + daemon WAL.

Two write-ahead logs live here.  The :class:`IngestJournal` makes the
store *plugin*'s ingest idempotent: every message is admitted exactly
once, keyed on its deterministic ``job:rank:seq`` trace id, and the
admission is logged *before* the insert happens — so the WAL is a
complete, ordered record of what the store committed to landing, and a
duplicate arriving at any later time (even mid-flush of a deferred
batch) is recognized and skipped.

The :class:`StoreWal` is the per-``dsosd`` durability log: each applied
object is appended (sequence number, schema, payload, originating trace
id) *before* it becomes visible, so a crashed daemon can rebuild its
in-memory shard by replaying the log on restart.

Both logs serialize entries with a CRC-32 checksum per record and share
the same recovery discipline: **truncate, don't trust**.  A torn write
(the crash landed mid-append) or a corrupt record invalidates that
record and everything after it — recovery replays the longest clean
prefix and reports how many bytes it refused to trust, and the
anti-entropy repair pass (peer replicas) recovers whatever the torn
tail lost.
"""

from __future__ import annotations

__all__ = [
    "IngestJournal",
    "StoreWal",
    "WalEntry",
    "WalRecovery",
    "WalRecord",
]

import json
import zlib
from dataclasses import dataclass


def _crc(text: str) -> int:
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class WalEntry:
    """One admission: the store committed to landing this message.

    ``checksum`` covers the ``(t, trace_id)`` payload; a recovery pass
    recomputes it and refuses any record (and every record after it)
    whose stored checksum disagrees.
    """

    t: float
    trace_id: str
    checksum: int = -1

    @staticmethod
    def compute_checksum(t: float, trace_id: str) -> int:
        return _crc(f"{t!r}|{trace_id}")

    @classmethod
    def make(cls, t: float, trace_id: str) -> "WalEntry":
        return cls(t, trace_id, cls.compute_checksum(t, trace_id))

    @property
    def valid(self) -> bool:
        return self.checksum == self.compute_checksum(self.t, self.trace_id)

    def encode(self) -> bytes:
        """One serialized record (newline-terminated)."""
        return f"{self.t!r}|{self.trace_id}|{self.checksum:08x}\n".encode()

    @classmethod
    def decode(cls, line: bytes) -> "WalEntry | None":
        """Parse one record; ``None`` for malformed/corrupt lines."""
        try:
            t_text, trace_id, crc_text = line.decode("utf-8").split("|")
        except (ValueError, UnicodeDecodeError):
            return None
        try:
            entry = cls(float(t_text), trace_id, int(crc_text, 16))
        except ValueError:
            return None
        return entry if entry.valid else None


@dataclass(frozen=True)
class WalRecovery:
    """What a replay pass salvaged from one serialized WAL."""

    entries: tuple
    #: Bytes past the last clean record that recovery refused to trust
    #: (0 on a clean log).
    truncated_bytes: int

    @property
    def truncated(self) -> bool:
        return self.truncated_bytes > 0


def recover_entries(data: bytes, decode) -> WalRecovery:
    """Replay the longest clean prefix of a serialized log.

    ``decode`` maps one record line (without newline) to an entry or
    ``None``; the first undecodable record — torn mid-write or failing
    its checksum — truncates the log there.  Records *after* a corrupt
    one are never trusted even if they individually decode: a torn
    region's length is unknown, so byte offsets past it are meaningless.
    """
    entries = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: no terminator
        entry = decode(data[offset:newline])
        if entry is None:
            break
        entries.append(entry)
        offset = newline + 1
    return WalRecovery(tuple(entries), len(data) - offset)


class IngestJournal:
    """Dedup index + write-ahead log for one store plugin."""

    def __init__(self, env):
        self.env = env
        self._seen: set[str] = set()
        self.wal: list[WalEntry] = []
        self.duplicates_skipped = 0

    def admit(self, trace_id: str) -> bool:
        """Journal ``trace_id``; False if it was already admitted.

        Untraced messages (empty id) cannot be deduplicated and are
        always admitted, unlogged.
        """
        if not trace_id:
            return True
        if trace_id in self._seen:
            self.duplicates_skipped += 1
            return False
        self._seen.add(trace_id)
        self.wal.append(WalEntry.make(self.env.now, trace_id))
        return True

    def admit_at(self, trace_id: str, t: float) -> bool:
        """:meth:`admit` with an explicit admission instant.

        The express spine lands messages at virtual completion times
        the engine clock has not necessarily reached; the WAL entry
        must carry the delivery instant, not ``env.now``.
        """
        if not trace_id:
            return True
        if trace_id in self._seen:
            self.duplicates_skipped += 1
            return False
        self._seen.add(trace_id)
        self.wal.append(WalEntry.make(t, trace_id))
        return True

    def to_bytes(self) -> bytes:
        """The WAL as one serialized, checksummed log."""
        return b"".join(entry.encode() for entry in self.wal)

    def replay(self, data: bytes) -> WalRecovery:
        """Rebuild the dedup index from a serialized WAL.

        Replays the longest clean prefix (truncate-don't-trust) into
        ``_seen``/``wal`` and returns what was salvaged.  Existing state
        is replaced — replay models a restart, not a merge.
        """
        recovery = recover_entries(data, WalEntry.decode)
        self.wal = list(recovery.entries)
        self._seen = {entry.trace_id for entry in recovery.entries}
        return recovery

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._seen

    def __len__(self) -> int:
        return len(self.wal)


@dataclass(frozen=True)
class WalRecord:
    """One ``dsosd`` WAL record: an applied object, checksummed."""

    seq: int
    schema: str
    payload: str  # canonical JSON of the object
    trace_id: str
    checksum: int = -1

    @staticmethod
    def compute_checksum(seq: int, schema: str, payload: str,
                         trace_id: str) -> int:
        return _crc(f"{seq}|{schema}|{payload}|{trace_id}")

    @classmethod
    def make(cls, seq: int, schema: str, obj: dict,
             trace_id: str = "") -> "WalRecord":
        payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        return cls(seq, schema, payload, trace_id,
                   cls.compute_checksum(seq, schema, payload, trace_id))

    @property
    def valid(self) -> bool:
        return self.checksum == self.compute_checksum(
            self.seq, self.schema, self.payload, self.trace_id
        )

    @property
    def obj(self) -> dict:
        return json.loads(self.payload)

    def encode(self) -> bytes:
        return (
            f"{self.seq}|{self.schema}|{self.payload}|{self.trace_id}"
            f"|{self.checksum:08x}\n"
        ).encode()

    @classmethod
    def decode(cls, line: bytes) -> "WalRecord | None":
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
        # The JSON payload may itself contain ``|`` inside strings, but
        # canonical payloads here never do (schema attrs are identifiers
        # and values are numbers / simple strings); keep the framing
        # honest anyway: split from both ends so only the payload field
        # may absorb extra separators.
        parts = text.split("|")
        if len(parts) < 5:
            return None
        seq_text, schema = parts[0], parts[1]
        trace_id, crc_text = parts[-2], parts[-1]
        payload = "|".join(parts[2:-2])
        try:
            record = cls(int(seq_text), schema, payload, trace_id,
                         int(crc_text, 16))
        except ValueError:
            return None
        return record if record.valid else None


class StoreWal:
    """Per-``dsosd`` append-only object log with torn-tail recovery.

    The byte buffer is the "disk": :meth:`append` serializes each
    record eagerly (a crash preserves the buffer, not the daemon's
    in-memory state), :meth:`tear_tail` simulates a crash landing
    mid-append by chopping bytes off the end, and :meth:`recover`
    replays the longest clean prefix.
    """

    def __init__(self):
        self._buf = bytearray()
        self.records_appended = 0
        self.torn_writes = 0

    def append(self, seq: int, schema: str, obj: dict,
               trace_id: str = "") -> WalRecord:
        record = WalRecord.make(seq, schema, obj, trace_id)
        self._buf += record.encode()
        self.records_appended += 1
        return record

    def tear_tail(self, drop_bytes: int = 7) -> None:
        """Simulate a torn write: the last ``drop_bytes`` never hit disk."""
        if drop_bytes <= 0:
            raise ValueError("drop_bytes must be positive")
        del self._buf[max(0, len(self._buf) - drop_bytes):]
        self.torn_writes += 1

    def recover(self) -> WalRecovery:
        """Replay the longest clean prefix (truncate-don't-trust).

        The refused tail is also physically truncated from the buffer,
        so later appends never interleave with untrusted bytes.
        """
        recovery = recover_entries(bytes(self._buf), WalRecord.decode)
        if recovery.truncated_bytes:
            del self._buf[len(self._buf) - recovery.truncated_bytes:]
        return recovery

    def __len__(self) -> int:
        return self.records_appended
