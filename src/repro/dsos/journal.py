"""Write-ahead ingest journal: idempotence for the DSOS store plugin.

Recovery paths upstream (connector spill replay, forwarder retry with
lost acks, failover re-sends) can legitimately deliver the same message
twice.  The journal makes ingest idempotent: every message is admitted
exactly once, keyed on its deterministic ``job:rank:seq`` trace id, and
the admission is logged *before* the insert happens — so the WAL is a
complete, ordered record of what the store committed to landing, and a
duplicate arriving at any later time (even mid-flush of a deferred
batch) is recognized and skipped.
"""

from __future__ import annotations

__all__ = ["IngestJournal", "WalEntry"]

from dataclasses import dataclass


@dataclass(frozen=True)
class WalEntry:
    """One admission: the store committed to landing this message."""

    t: float
    trace_id: str


class IngestJournal:
    """Dedup index + write-ahead log for one store plugin."""

    def __init__(self, env):
        self.env = env
        self._seen: set[str] = set()
        self.wal: list[WalEntry] = []
        self.duplicates_skipped = 0

    def admit(self, trace_id: str) -> bool:
        """Journal ``trace_id``; False if it was already admitted.

        Untraced messages (empty id) cannot be deduplicated and are
        always admitted, unlogged.
        """
        if not trace_id:
            return True
        if trace_id in self._seen:
            self.duplicates_skipped += 1
            return False
        self._seen.add(trace_id)
        self.wal.append(WalEntry(self.env.now, trace_id))
        return True

    def admit_at(self, trace_id: str, t: float) -> bool:
        """:meth:`admit` with an explicit admission instant.

        The express spine lands messages at virtual completion times
        the engine clock has not necessarily reached; the WAL entry
        must carry the delivery instant, not ``env.now``.
        """
        if not trace_id:
            return True
        if trace_id in self._seen:
            self.duplicates_skipped += 1
            return False
        self._seen.add(trace_id)
        self.wal.append(WalEntry(t, trace_id))
        return True

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._seen

    def __len__(self) -> int:
        return len(self.wal)
