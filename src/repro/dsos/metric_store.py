"""LDMS metric-set → DSOS store plugin.

Subscribes to ``metrics/<plugin>`` stream tags and flattens each metric
set (one database object per metric) into the ``ldms_metrics`` schema.
"""

from __future__ import annotations

import json

from repro.dsos.client import DsosClient
from repro.dsos.metrics_schema import LDMS_METRICS_SCHEMA

__all__ = ["MetricStreamStore"]


class MetricStreamStore:
    """Streams-subscriber landing metric sets in DSOS."""

    def __init__(self, daemon, tags: list[str], client: DsosClient):
        self.daemon = daemon
        self.client = client
        self.tags = list(tags)
        client.ensure_schema(LDMS_METRICS_SCHEMA)
        self.parse_errors = 0
        self.samples_stored = 0
        for tag in self.tags:
            daemon.streams.subscribe(tag, self._make_callback(tag))

    def add_tag(self, tag: str) -> None:
        """Subscribe to one more ``metrics/<plugin>`` stream tag
        (pipeline-telemetry samplers attach after construction)."""
        if tag in self.tags:
            return
        self.tags.append(tag)
        self.daemon.streams.subscribe(tag, self._make_callback(tag))

    def _make_callback(self, tag: str):
        source = tag.split("/", 1)[-1]

        def on_message(message) -> None:
            try:
                data = json.loads(message.payload)
            except json.JSONDecodeError:
                self.parse_errors += 1
                return
            if not isinstance(data, dict) or "metrics" not in data:
                self.parse_errors += 1
                return
            producer = str(data.get("producer", "unknown"))
            timestamp = float(data.get("timestamp", 0.0))
            for metric, value in data["metrics"].items():
                self.client.cluster.insert(
                    "ldms_metrics",
                    {
                        "producer": producer,
                        "source": source,
                        "metric": str(metric),
                        "value": float(value),
                        "timestamp": timestamp,
                    },
                    validate=False,
                )
                self.samples_stored += 1

        return on_message
