"""DSOS schema for LDMS metric-set samples.

The classic LDMS data path (periodic node/system telemetry) lands in
its own schema, so analyses can join application I/O events against
system state — the correlation use case the paper's introduction
motivates ("identify any correlations between the file system, network
congestion or resource contentions and the I/O performance").
"""

from __future__ import annotations

from repro.dsos.schema import Attr, Schema

__all__ = ["LDMS_METRICS_SCHEMA"]


def _metrics_schema() -> Schema:
    attrs = [
        Attr("producer", "string"),   # node the sample came from
        Attr("source", "string"),     # sampler plugin name
        Attr("metric", "string"),     # metric name within the set
        Attr("value", "float"),
        Attr("timestamp", "float"),
    ]
    indices = {
        "time": ("timestamp",),
        "metric_time": ("metric", "timestamp"),
        "producer_time": ("producer", "timestamp"),
    }
    return Schema("ldms_metrics", attrs, indices)


LDMS_METRICS_SCHEMA = _metrics_schema()
