"""DSOS partitions: time-windowed storage with retention.

Production DSOS containers are divided into partitions (typically one
per day); old partitions are taken offline or deleted to bound storage.
:class:`PartitionedContainer` wraps a :class:`~repro.dsos.cluster.DsosCluster`
per time window, routing each inserted object to the partition owning
its ``timestamp`` attribute, fanning queries across the active
partitions, and enforcing a retention limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dsos.cluster import DsosCluster
from repro.dsos.schema import Schema, SchemaError

__all__ = ["PartitionedContainer", "PartitionInfo"]


@dataclass(frozen=True)
class PartitionInfo:
    """Descriptor of one partition."""

    index: int
    t_begin: float
    t_end: float
    state: str  # "active" | "offline"
    objects: int


class PartitionedContainer:
    """Time-partitioned object storage with bounded retention."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        partition_seconds: float = 86400.0,
        max_active_partitions: int = 7,
        n_daemons: int = 2,
        time_attr: str = "timestamp",
    ):
        if partition_seconds <= 0:
            raise ValueError("partition_seconds must be positive")
        if max_active_partitions < 1:
            raise ValueError("max_active_partitions must be >= 1")
        if time_attr not in schema.attrs:
            raise SchemaError(f"schema has no time attribute {time_attr!r}")
        self.name = name
        self.schema = schema
        self.partition_seconds = partition_seconds
        self.max_active_partitions = max_active_partitions
        self.n_daemons = n_daemons
        self.time_attr = time_attr
        self._active: dict[int, DsosCluster] = {}
        self._offline: set[int] = set()
        #: Objects lost to retention (stored in partitions taken offline).
        self.objects_retired = 0

    # -- partition management ------------------------------------------------

    def _partition_index(self, timestamp: float) -> int:
        return int(math.floor(timestamp / self.partition_seconds))

    def _partition_for(self, timestamp: float) -> DsosCluster:
        index = self._partition_index(timestamp)
        if index in self._offline:
            raise SchemaError(
                f"partition {index} is offline; cannot insert at t={timestamp}"
            )
        cluster = self._active.get(index)
        if cluster is None:
            cluster = DsosCluster(f"{self.name}-p{index}", self.n_daemons)
            cluster.attach_schema(self.schema)
            self._active[index] = cluster
            self._enforce_retention()
        return cluster

    def _enforce_retention(self) -> None:
        while len(self._active) > self.max_active_partitions:
            oldest = min(self._active)
            retired = self._active.pop(oldest)
            self._offline.add(oldest)
            self.objects_retired += retired.count(self.schema.name)

    def partitions(self) -> list[PartitionInfo]:
        """Descriptors of all partitions ever seen, oldest first."""
        out = []
        for index in sorted(self._active):
            out.append(
                PartitionInfo(
                    index=index,
                    t_begin=index * self.partition_seconds,
                    t_end=(index + 1) * self.partition_seconds,
                    state="active",
                    objects=self._active[index].count(self.schema.name),
                )
            )
        for index in sorted(self._offline):
            out.append(
                PartitionInfo(
                    index=index,
                    t_begin=index * self.partition_seconds,
                    t_end=(index + 1) * self.partition_seconds,
                    state="offline",
                    objects=0,
                )
            )
        return sorted(out, key=lambda p: p.index)

    # -- ingest / query -------------------------------------------------------

    def insert(self, obj: dict, *, validate: bool = True) -> None:
        timestamp = obj.get(self.time_attr)
        if not isinstance(timestamp, (int, float)):
            raise SchemaError(
                f"object lacks a numeric {self.time_attr!r}: {timestamp!r}"
            )
        self._partition_for(float(timestamp)).insert(
            self.schema.name, obj, validate=validate
        )

    def count(self) -> int:
        """Objects across active partitions."""
        return sum(c.count(self.schema.name) for c in self._active.values())

    def query(
        self,
        index_name: str,
        *,
        prefix: tuple | None = None,
        begin: tuple | None = None,
        end: tuple | None = None,
        where: list | None = None,
    ) -> list[dict]:
        """Fan the query across active partitions, oldest first.

        Partition order preserves time order for time-leading indices;
        for other indices the caller gets per-partition index order.
        """
        rows: list[dict] = []
        for index in sorted(self._active):
            q = self._active[index].query(self.schema.name, index_name)
            if prefix is not None:
                q.prefix(*prefix)
            if begin is not None or end is not None:
                q.range(begin, end)
            for clause in where or ():
                q.where(*clause)
            rows.extend(q.execute().rows)
        return rows
