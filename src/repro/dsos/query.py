"""Cluster-level queries: parallel fan-out, index-ordered merge.

The DSOS client API "can perform parallel queries to all dsosd in a
DSOS cluster; the results ... are then returned in parallel and sorted
based on the index selected by the user".  :class:`Query` is a small
builder over that operation; :class:`QueryStats` carries the work
accounting (rows scanned per shard) and an analytic latency estimate —
the quantity the index-choice ablation compares.

Against a replicated cluster the fan-out is per *shard*, not per
daemon: each shard answers from its first live replica (primary
preferred), so a down replica per shard is tolerated transparently —
only a shard with *no* live replica fails the query.  ``.quorum()``
upgrades the read: every live replica of every shard is consulted and
lagging replicas are read-repaired (missing objects pulled from peers)
before the scan, so the rows reflect every surviving object even when
the primary restarted with a torn WAL.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["Query", "QueryResult", "QueryStats"]

#: Cost-model constants (seconds); relative magnitudes are what matter.
_LOOKUP_COST_S = 120e-6
_SCAN_COST_PER_ROW_S = 0.9e-6
_MERGE_COST_PER_ROW_S = 0.25e-6
_FILTER_COST_PER_ROW_S = 0.15e-6


@dataclass
class QueryStats:
    """Work done answering one query."""

    shards_queried: int = 0
    rows_scanned_per_shard: list[int] = field(default_factory=list)
    rows_returned: int = 0
    filters_applied: int = 0
    #: Dead replicas the per-shard fan-out routed around.
    replicas_skipped: int = 0
    #: Objects pulled onto lagging replicas by a quorum read.
    read_repaired: int = 0

    @property
    def rows_scanned(self) -> int:
        return sum(self.rows_scanned_per_shard)

    @property
    def est_latency_s(self) -> float:
        """Analytic latency: shards work in parallel, merge is serial."""
        per_shard = [
            _LOOKUP_COST_S
            + n * (_SCAN_COST_PER_ROW_S + self.filters_applied * _FILTER_COST_PER_ROW_S)
            for n in self.rows_scanned_per_shard
        ] or [_LOOKUP_COST_S]
        return max(per_shard) + self.rows_returned * _MERGE_COST_PER_ROW_S


@dataclass
class QueryResult:
    """Rows (in index order) plus the work accounting."""

    rows: list[dict]
    stats: QueryStats

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Query:
    """Builder: ``Query(cluster, schema, index).where(...).prefix(...)``."""

    def __init__(self, cluster, schema_name: str, index_name: str):
        self.cluster = cluster
        self.schema_name = schema_name
        self.index_name = index_name
        self._begin: tuple | None = None
        self._end: tuple | None = None
        self._prefix: tuple | None = None
        self._filters: list[tuple] = []
        self._limit: int | None = None
        self._quorum = False

    def range(self, begin: tuple | None, end: tuple | None) -> "Query":
        """Half-open key range ``[begin, end)`` on the index."""
        self._begin = tuple(begin) if begin is not None else None
        self._end = tuple(end) if end is not None else None
        return self

    def prefix(self, *prefix) -> "Query":
        """All keys starting with ``prefix`` (e.g. one job, one rank)."""
        self._prefix = tuple(prefix)
        return self

    def where(self, attr: str, op: str, value) -> "Query":
        """Post-scan attribute filter."""
        self._filters.append((attr, op, value))
        return self

    def limit(self, n: int) -> "Query":
        if n < 1:
            raise ValueError("limit must be >= 1")
        self._limit = n
        return self

    def quorum(self) -> "Query":
        """Quorum read: read-repair lagging replicas before answering
        (no-op on a legacy cluster)."""
        self._quorum = True
        return self

    def _scan_shard(self, daemon, stats: QueryStats) -> list[tuple]:
        pairs, scanned = daemon.query_shard(
            self.schema_name,
            self.index_name,
            begin=self._begin,
            end=self._end,
            prefix=self._prefix,
            filters=self._filters,
        )
        stats.shards_queried += 1
        stats.rows_scanned_per_shard.append(scanned)
        return pairs

    def execute(self) -> QueryResult:
        """Fan out (per daemon, or per shard when replicated), merge
        shard streams in key order."""
        stats = QueryStats(filters_applied=len(self._filters))
        shard_results = []
        if not getattr(self.cluster, "sharded", False):
            for daemon in self.cluster.daemons:
                shard_results.append(self._scan_shard(daemon, stats))
        else:
            from repro.dsos.daemon import StoreDownError

            if self._quorum:
                for replicas in self.cluster.replica_sets:
                    for replica in replicas:
                        if replica.alive:
                            stats.read_repaired += len(
                                self.cluster.repair_daemon(replica)
                            )
            for shard, replicas in enumerate(self.cluster.replica_sets):
                live = [r for r in replicas if r.alive]
                stats.replicas_skipped += len(replicas) - len(live)
                primary = live[0] if live else None
                if primary is None:
                    raise StoreDownError(
                        f"shard {shard} has no live replica "
                        f"({', '.join(r.name for r in replicas)} all down)"
                    )
                shard_results.append(self._scan_shard(primary, stats))
        merged = heapq.merge(*shard_results, key=lambda kv: kv[0])
        rows = []
        for _, obj in merged:
            rows.append(obj)
            if self._limit is not None and len(rows) >= self._limit:
                break
        stats.rows_returned = len(rows)
        return QueryResult(rows=rows, stats=stats)
