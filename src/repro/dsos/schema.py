"""Schemas: typed attributes and joint indices.

A DSOS schema names its attributes and declares *indices*; a joint
index like ``job_rank_time`` orders objects by (job_id, rank,
timestamp), so "search the data by a specific rank within a specific
job over time" (the paper's example) is a prefix range scan.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Attr", "Schema", "SchemaError", "DARSHAN_DATA_SCHEMA"]

_TYPES = {
    "int": int,
    "float": float,
    "string": str,
}


class SchemaError(ValueError):
    """Schema definition or object-validation failure."""


@dataclass(frozen=True)
class Attr:
    """One typed attribute."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in _TYPES:
            raise SchemaError(
                f"attribute {self.name!r}: unknown type {self.type!r} "
                f"(expected one of {sorted(_TYPES)})"
            )

    def validate(self, value) -> None:
        expected = _TYPES[self.type]
        # ints are acceptable where floats are declared.
        if expected is float and isinstance(value, int):
            return
        if not isinstance(value, expected):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.type}, "
                f"got {type(value).__name__}: {value!r}"
            )


class Schema:
    """Attribute set + named joint indices."""

    def __init__(self, name: str, attrs: list[Attr], indices: dict[str, tuple]):
        if not name:
            raise SchemaError("schema name must be non-empty")
        if not attrs:
            raise SchemaError("schema needs at least one attribute")
        self.name = name
        self.attrs = {a.name: a for a in attrs}
        if len(self.attrs) != len(attrs):
            raise SchemaError("duplicate attribute names")
        self.indices: dict[str, tuple] = {}
        for index_name, key_attrs in indices.items():
            key_attrs = tuple(key_attrs)
            missing = [k for k in key_attrs if k not in self.attrs]
            if missing:
                raise SchemaError(
                    f"index {index_name!r} references unknown attrs {missing}"
                )
            if not key_attrs:
                raise SchemaError(f"index {index_name!r} has an empty key")
            self.indices[index_name] = key_attrs

    def validate(self, obj: dict) -> None:
        """Check an object against the schema (extra keys rejected)."""
        for key, value in obj.items():
            attr = self.attrs.get(key)
            if attr is None:
                raise SchemaError(f"object has unknown attribute {key!r}")
            attr.validate(value)
        missing = set(self.attrs) - set(obj)
        if missing:
            raise SchemaError(f"object missing attributes {sorted(missing)}")

    def key_for(self, index_name: str, obj: dict) -> tuple:
        """The sort key of ``obj`` under ``index_name``."""
        try:
            key_attrs = self.indices[index_name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no index {index_name!r}; "
                f"available: {sorted(self.indices)}"
            ) from None
        return tuple(obj[a] for a in key_attrs)


def _darshan_data_schema() -> Schema:
    """The schema the connector's messages land in (Fig 3 flattened)."""
    attrs = [
        Attr("module", "string"),
        Attr("uid", "int"),
        Attr("ProducerName", "string"),
        Attr("switches", "int"),
        Attr("file", "string"),
        Attr("rank", "int"),
        Attr("flushes", "int"),
        Attr("record_id", "int"),
        Attr("exe", "string"),
        Attr("max_byte", "int"),
        Attr("type", "string"),
        Attr("job_id", "int"),
        Attr("op", "string"),
        Attr("cnt", "int"),
        Attr("seg_off", "int"),
        Attr("seg_pt_sel", "int"),
        Attr("seg_dur", "float"),
        Attr("seg_len", "int"),
        Attr("seg_ndims", "int"),
        Attr("seg_reg_hslab", "int"),
        Attr("seg_irreg_hslab", "int"),
        Attr("seg_data_set", "string"),
        Attr("seg_npoints", "int"),
        Attr("timestamp", "float"),
    ]
    indices = {
        # The paper's worked example: order by job, rank, then time.
        "job_rank_time": ("job_id", "rank", "timestamp"),
        "job_time_rank": ("job_id", "timestamp", "rank"),
        "time_job_rank": ("timestamp", "job_id", "rank"),
        "job_id": ("job_id",),
    }
    return Schema("darshan_data", attrs, indices)


#: Shared instance used across the pipeline.
DARSHAN_DATA_SCHEMA = _darshan_data_schema()
