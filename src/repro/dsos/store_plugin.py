"""LDMS → DSOS store plugin.

Terminal stage of the paper's pipeline (Figure 4): subscribes to the
connector's stream tag on the final aggregator, flattens each JSON
message (one database object per ``seg`` entry, like the CSV store) and
inserts it into the ``darshan_data`` schema.
"""

from __future__ import annotations

import json

from repro.dsos.client import DsosClient
from repro.dsos.schema import DARSHAN_DATA_SCHEMA
from repro.telemetry.collector import collector_for
from repro.telemetry.trace import (
    DROP_PARSE_ERROR,
    STAGE_INGEST,
    STORED,
)

__all__ = ["DsosStreamStore"]

# Defaults for attributes absent from a message (mirrors the "N/A"/-1
# conventions of Figure 3).
_INT_DEFAULT = -1
_STR_DEFAULT = "N/A"
_FLOAT_DEFAULT = -1.0


class DsosStreamStore:
    """Streams-subscriber that lands connector messages in DSOS."""

    def __init__(self, daemon, tag: str, client: DsosClient, schema=DARSHAN_DATA_SCHEMA):
        self.daemon = daemon
        self.tag = tag
        self.client = client
        self.schema = schema
        client.ensure_schema(schema)
        self.parse_errors = 0
        self.objects_stored = 0
        daemon.streams.subscribe(tag, self.on_message)

    def on_message(self, message) -> None:
        try:
            data = json.loads(message.payload)
        except json.JSONDecodeError:
            self.parse_errors += 1
            self._ingest_hop(message, DROP_PARSE_ERROR)
            return
        if not isinstance(data, dict):
            self.parse_errors += 1
            self._ingest_hop(message, DROP_PARSE_ERROR)
            return
        for obj in self._flatten(data):
            # _flatten+_coerce already guarantee schema conformance;
            # skip per-object validation on this hot ingest path.
            self.client.cluster.insert(self.schema.name, obj, validate=False)
            self.objects_stored += 1
        self._ingest_hop(message, STORED)

    def _ingest_hop(self, message, outcome: str) -> None:
        """Terminal telemetry hop: the message either landed or died here."""
        if not message.trace_id:
            return
        collector = collector_for(self.daemon.env)
        if collector is not None:
            collector.hop(
                message.trace_id, STAGE_INGEST, self.daemon.node.name, outcome
            )

    def _flatten(self, data: dict):
        segments = data.get("seg") or [{}]
        for seg in segments:
            obj = {}
            for attr in self.schema.attrs.values():
                if attr.name == "timestamp":
                    raw = seg.get("timestamp")
                elif attr.name.startswith("seg_"):
                    raw = seg.get(attr.name[4:])
                else:
                    raw = data.get(attr.name)
                obj[attr.name] = self._coerce(raw, attr.type)
            yield obj

    @staticmethod
    def _coerce(raw, type_name: str):
        if type_name == "string":
            return str(raw) if raw is not None else _STR_DEFAULT
        if raw is None or raw == "N/A":
            return _INT_DEFAULT if type_name == "int" else _FLOAT_DEFAULT
        try:
            return int(raw) if type_name == "int" else float(raw)
        except (TypeError, ValueError):
            return _INT_DEFAULT if type_name == "int" else _FLOAT_DEFAULT
