"""LDMS → DSOS store plugin.

Terminal stage of the paper's pipeline (Figure 4): subscribes to the
connector's stream tag on the final aggregator, flattens each JSON
message (one database object per ``seg`` entry, like the CSV store) and
inserts it into the ``darshan_data`` schema.

Fast lane: the attribute → source mapping is precompiled into a row
plan (no per-attribute name tests on the hot path), and inside a bus
batch window (a forwarder handing over its transfer batch) rows are
buffered and landed with one ``insert_many`` per batch instead of one
``insert`` per row.  Both produce byte-identical objects in the
identical round-robin placement.
"""

from __future__ import annotations

import json

from repro.dsos.client import DsosClient
from repro.dsos.journal import IngestJournal
from repro.dsos.schema import DARSHAN_DATA_SCHEMA
from repro.telemetry.collector import collector_for
from repro.telemetry.trace import (
    DROP_PARSE_ERROR,
    DUP_IGNORED,
    STAGE_INGEST,
    STORED,
)

__all__ = ["DsosStreamStore"]

# Defaults for attributes absent from a message (mirrors the "N/A"/-1
# conventions of Figure 3).
_INT_DEFAULT = -1
_STR_DEFAULT = "N/A"
_FLOAT_DEFAULT = -1.0

_EXACT_TYPES = {"int": int, "float": float, "string": str}


class DsosStreamStore:
    """Streams-subscriber that lands connector messages in DSOS."""

    def __init__(
        self,
        daemon,
        tag: str,
        client: DsosClient,
        schema=DARSHAN_DATA_SCHEMA,
        *,
        fast: bool = True,
        journal: bool = True,
    ):
        self.daemon = daemon
        self.tag = tag
        self.client = client
        self.schema = schema
        client.ensure_schema(schema)
        self.parse_errors = 0
        self.objects_stored = 0
        self._fast = fast
        #: Idempotent ingest: upstream recovery (spill replay, retry on
        #: lost acks, failover) may resend a message; the journal admits
        #: each trace id once.  With no duplicates it only costs a set
        #: lookup, so it is on by default.
        self.journal = IngestJournal(daemon.env) if journal else None
        #: Slow-store episode state (repro.faults): while slow, inserts
        #: defer into _slow_pending with an open ingest hop; the episode
        #: end flushes them, stamping the episode's latency on each.
        self._slow = False
        self._slow_pending: list[tuple] = []
        #: (attr_name, comes-from-seg, source key, exact type, type name)
        #: per schema attribute, in schema order.
        self._row_plan = self._compile_row_plan(schema)
        self._bus = daemon.streams
        self._pending_rows: list[dict] = []
        #: Live-tail observers: ``cb(message, n_rows)`` called the
        #: instant a message's rows land (repro.diagnosis rides this).
        #: With no observers the hot path pays one truthiness test —
        #: observation-only, nothing simulated changes.
        self._observers: list = []
        daemon.streams.subscribe(tag, self.on_message)
        daemon.streams.add_batch_sink(self._flush_batch)

    def add_ingest_observer(self, callback) -> None:
        """Register a live tail: ``callback(message, n_rows)`` fires at
        the simulated instant each message's rows are stored."""
        self._observers.append(callback)

    @staticmethod
    def _compile_row_plan(schema) -> list[tuple]:
        plan = []
        for attr in schema.attrs.values():
            if attr.name == "timestamp":
                source = (True, "timestamp")
            elif attr.name.startswith("seg_"):
                source = (True, attr.name[4:])
            else:
                source = (False, attr.name)
            plan.append(
                (attr.name, *source, _EXACT_TYPES[attr.type], attr.type)
            )
        return plan

    def on_message(self, message) -> None:
        # Fast lane: a publisher that template-built the payload ships
        # the equal-by-construction dict alongside it — skip the parse.
        data = message.parsed if self._fast else None
        if data is None:
            try:
                data = json.loads(message.payload)
            except json.JSONDecodeError:
                self.parse_errors += 1
                self._ingest_hop(message, DROP_PARSE_ERROR)
                return
            if not isinstance(data, dict):
                self.parse_errors += 1
                self._ingest_hop(message, DROP_PARSE_ERROR)
                return
        if self.journal is not None and not self.journal.admit(message.trace_id):
            self._ingest_hop(message, DUP_IGNORED)
            return
        if self._slow:
            rows = (
                self._flatten_fast(data) if self._fast else list(self._flatten(data))
            )
            self._slow_pending.append((message, rows))
            if message.trace_id:
                collector = collector_for(self.daemon.env)
                if collector is not None:
                    collector.open_hop(
                        message.trace_id, STAGE_INGEST, self.daemon.node.name
                    )
            return
        if self._fast:
            rows = self._flatten_fast(data)
            if self._bus.in_batch:
                # Buffered for one insert_many when the window closes.
                # The hop and the counter stamp now — no simulated time
                # passes before the flush, so records are identical.
                self._pending_rows.extend(rows)
            else:
                insert = self.client.cluster.insert
                name = self.schema.name
                for obj in rows:
                    insert(name, obj, validate=False)
            self.objects_stored += len(rows)
            n_rows = len(rows)
        else:
            n_rows = 0
            for obj in self._flatten(data):
                # _flatten+_coerce already guarantee schema conformance;
                # skip per-object validation on this hot ingest path.
                self.client.cluster.insert(self.schema.name, obj, validate=False)
                self.objects_stored += 1
                n_rows += 1
        self._ingest_hop(message, STORED)
        if self._observers:
            for cb in self._observers:
                cb(message, n_rows)

    def _flush_batch(self) -> None:
        rows = self._pending_rows
        if rows:
            self._pending_rows = []
            self.client.cluster.insert_many(self.schema.name, rows, validate=False)

    # -- slow-store episodes (repro.faults) ------------------------------

    @property
    def slow(self) -> bool:
        return self._slow

    @property
    def slow_pending(self) -> int:
        """Messages deferred by the current slow episode."""
        return len(self._slow_pending)

    def begin_slow_episode(self) -> None:
        """Storage stalls: arriving messages defer until the episode ends.

        Episodes must be ended (finite) — deferred messages are neither
        stored nor dropped until :meth:`end_slow_episode` flushes them,
        and a run that ends mid-episode reconciles them as in-flight.
        """
        self._slow = True

    def end_slow_episode(self) -> None:
        """Flush everything the episode deferred, in arrival order.

        Each deferred message's ingest hop closes here, so its recorded
        ingest latency is the stall it actually suffered.
        """
        if not self._slow:
            return
        self._slow = False
        pending, self._slow_pending = self._slow_pending, []
        if not pending:
            return
        all_rows = [row for _, rows in pending for row in rows]
        if all_rows:
            self.client.cluster.insert_many(
                self.schema.name, all_rows, validate=False
            )
        collector = collector_for(self.daemon.env)
        node = self.daemon.node.name
        for message, rows in pending:
            self.objects_stored += len(rows)
            if message.trace_id and collector is not None:
                collector.close_hop(message.trace_id, STAGE_INGEST, node, STORED)
            if self._observers:
                for cb in self._observers:
                    cb(message, len(rows))

    def _ingest_hop(self, message, outcome: str) -> None:
        """Terminal telemetry hop: the message either landed or died here."""
        if not message.trace_id:
            return
        collector = collector_for(self.daemon.env)
        if collector is not None:
            collector.hop(
                message.trace_id, STAGE_INGEST, self.daemon.node.name, outcome
            )

    def _flatten_fast(self, data: dict) -> list[dict]:
        """Row-plan flatten: same objects as :meth:`_flatten`, with the
        already-right-typed common case skipping coercion."""
        segments = data.get("seg") or ({},)
        plan = self._row_plan
        coerce = self._coerce
        rows = []
        for seg in segments:
            obj = {}
            for name, from_seg, key, exact, tname in plan:
                raw = seg.get(key) if from_seg else data.get(key)
                if type(raw) is exact:
                    obj[name] = raw
                else:
                    obj[name] = coerce(raw, tname)
            rows.append(obj)
        return rows

    def _flatten(self, data: dict):
        segments = data.get("seg") or [{}]
        for seg in segments:
            obj = {}
            for attr in self.schema.attrs.values():
                if attr.name == "timestamp":
                    raw = seg.get("timestamp")
                elif attr.name.startswith("seg_"):
                    raw = seg.get(attr.name[4:])
                else:
                    raw = data.get(attr.name)
                obj[attr.name] = self._coerce(raw, attr.type)
            yield obj

    @staticmethod
    def _coerce(raw, type_name: str):
        if type_name == "string":
            return str(raw) if raw is not None else _STR_DEFAULT
        if raw is None or raw == "N/A":
            return _INT_DEFAULT if type_name == "int" else _FLOAT_DEFAULT
        try:
            return int(raw) if type_name == "int" else float(raw)
        except (TypeError, ValueError):
            return _INT_DEFAULT if type_name == "int" else _FLOAT_DEFAULT
