"""LDMS → DSOS store plugin.

Terminal stage of the paper's pipeline (Figure 4): subscribes to the
connector's stream tag on the final aggregator, flattens each JSON
message (one database object per ``seg`` entry, like the CSV store) and
inserts it into the ``darshan_data`` schema.

Fast lane: the attribute → source mapping is precompiled into a row
plan (no per-attribute name tests on the hot path), and inside a bus
batch window (a forwarder handing over its transfer batch) rows are
buffered and landed with one ``insert_many`` per batch instead of one
``insert`` per row.  Both produce byte-identical objects in the
identical round-robin placement.
"""

from __future__ import annotations

import json

from repro.dsos.client import DsosClient
from repro.dsos.journal import IngestJournal
from repro.dsos.schema import DARSHAN_DATA_SCHEMA
from repro.telemetry.collector import collector_for
from repro.telemetry.trace import (
    DROP_PARSE_ERROR,
    DROP_STORE_DOWN,
    DUP_IGNORED,
    QUORUM_DEGRADED,
    STAGE_INGEST,
    STORED,
)

__all__ = ["DsosStreamStore"]

# Defaults for attributes absent from a message (mirrors the "N/A"/-1
# conventions of Figure 3).
_INT_DEFAULT = -1
_STR_DEFAULT = "N/A"
_FLOAT_DEFAULT = -1.0

_EXACT_TYPES = {"int": int, "float": float, "string": str}

#: Varying-slot index per message field, by slot-tuple arity — the two
#: template layouts of :meth:`repro.core.json_format._Shape.parsed`.
_VAR_OUTER = {"record_id": 0, "max_byte": 1, "switches": 2, "flushes": 3, "cnt": 4}
_VAR_SEG_9 = {"off": 5, "len": 6, "dur": 7, "timestamp": 8}
_VAR_SEG_14 = {
    "pt_sel": 5, "irreg_hslab": 6, "reg_hslab": 7, "ndims": 8,
    "npoints": 9, "off": 10, "len": 11, "dur": 12, "timestamp": 13,
}


class DsosStreamStore:
    """Streams-subscriber that lands connector messages in DSOS."""

    def __init__(
        self,
        daemon,
        tag: str,
        client: DsosClient,
        schema=DARSHAN_DATA_SCHEMA,
        *,
        fast: bool = True,
        journal: bool = True,
    ):
        self.daemon = daemon
        self.tag = tag
        self.client = client
        self.schema = schema
        client.ensure_schema(schema)
        self.parse_errors = 0
        self.objects_stored = 0
        self._fast = fast
        #: Replicated cluster: route per message through quorum ingest
        #: (bypassing the batch buffer — acks are per write).
        self._sharded = getattr(client.cluster, "sharded", False)
        #: Messages stored below write quorum / rejected outright.
        self.quorum_degraded = 0
        self.store_down_drops = 0
        #: Idempotent ingest: upstream recovery (spill replay, retry on
        #: lost acks, failover) may resend a message; the journal admits
        #: each trace id once.  With no duplicates it only costs a set
        #: lookup, so it is on by default.
        self.journal = IngestJournal(daemon.env) if journal else None
        #: Slow-store episode state (repro.faults): while slow, inserts
        #: defer into _slow_pending with an open ingest hop; the episode
        #: end flushes them, stamping the episode's latency on each.
        self._slow = False
        self._slow_pending: list[tuple] = []
        #: (attr_name, comes-from-seg, source key, exact type, type name)
        #: per schema attribute, in schema order.
        self._row_plan = self._compile_row_plan(schema)
        #: id(shape) -> (shape, var-spec | None): the columnar row
        #: builder per message shape (None = self-check failed, build
        #: through the parsed dict instead).  The shape reference keeps
        #: the id stable for the cache's lifetime.
        self._columnar_plans: dict[int, tuple] = {}
        self._bus = daemon.streams
        self._pending_rows: list[dict] = []
        #: Live-tail observers: ``cb(message, n_rows)`` called the
        #: instant a message's rows land (repro.diagnosis rides this).
        #: With no observers the hot path pays one truthiness test —
        #: observation-only, nothing simulated changes.
        self._observers: list = []
        daemon.streams.subscribe(tag, self.on_message)
        daemon.streams.add_batch_sink(self._flush_batch)

    #: Express-spine back-pointer (set while an armed spine owns this
    #: store's ingest; any guard-relevant mutation de-arms it first).
    _express_spine = None

    def add_ingest_observer(self, callback) -> None:
        """Register a live tail: ``callback(message, n_rows)`` fires at
        the simulated instant each message's rows are stored."""
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        self._observers.append(callback)

    @staticmethod
    def _compile_row_plan(schema) -> list[tuple]:
        plan = []
        for attr in schema.attrs.values():
            if attr.name == "timestamp":
                source = (True, "timestamp")
            elif attr.name.startswith("seg_"):
                source = (True, attr.name[4:])
            else:
                source = (False, attr.name)
            plan.append(
                (attr.name, *source, _EXACT_TYPES[attr.type], attr.type)
            )
        return plan

    def on_message(self, message) -> None:
        # Fast lane: a publisher that template-built the payload ships
        # the equal-by-construction dict alongside it — skip the parse.
        data = message.parsed if self._fast else None
        if data is None:
            try:
                data = json.loads(message.payload)
            except json.JSONDecodeError:
                self.parse_errors += 1
                self._ingest_hop(message, DROP_PARSE_ERROR)
                return
            if not isinstance(data, dict):
                self.parse_errors += 1
                self._ingest_hop(message, DROP_PARSE_ERROR)
                return
        if self.journal is not None and not self.journal.admit(message.trace_id):
            self._ingest_hop(message, DUP_IGNORED)
            return
        if self._slow:
            rows = (
                self._flatten_fast(data) if self._fast else list(self._flatten(data))
            )
            self._slow_pending.append((message, rows))
            if message.trace_id:
                collector = collector_for(self.daemon.env)
                if collector is not None:
                    collector.open_hop(
                        message.trace_id, STAGE_INGEST, self.daemon.node.name
                    )
            return
        if self._sharded:
            rows = (
                self._flatten_fast(data) if self._fast else list(self._flatten(data))
            )
            outcome, degraded, n_rows = self._store_replicated(message, rows)
            self._ingest_hop(message, outcome)
            if degraded:
                self._ingest_hop(message, QUORUM_DEGRADED)
            if outcome is STORED and self._observers:
                for cb in self._observers:
                    cb(message, n_rows)
            return
        if self._fast:
            rows = self._flatten_fast(data)
            if self._bus.in_batch:
                # Buffered for one insert_many when the window closes.
                # The hop and the counter stamp now — no simulated time
                # passes before the flush, so records are identical.
                self._pending_rows.extend(rows)
            else:
                insert = self.client.cluster.insert
                name = self.schema.name
                for obj in rows:
                    insert(name, obj, validate=False)
            self.objects_stored += len(rows)
            n_rows = len(rows)
        else:
            n_rows = 0
            for obj in self._flatten(data):
                # _flatten+_coerce already guarantee schema conformance;
                # skip per-object validation on this hot ingest path.
                self.client.cluster.insert(self.schema.name, obj, validate=False)
                self.objects_stored += 1
                n_rows += 1
        self._ingest_hop(message, STORED)
        if self._observers:
            for cb in self._observers:
                cb(message, n_rows)

    def _flush_batch(self) -> None:
        rows = self._pending_rows
        if rows:
            self._pending_rows = []
            self.client.cluster.insert_many(self.schema.name, rows, validate=False)

    # -- replicated ingest (sharded clusters) -----------------------------

    def _store_replicated(self, message, rows) -> tuple:
        """Quorum write of one message's rows; ``(outcome, degraded, n)``.

        All rows of one message share a job id, hence a shard and a
        replica set, so acks are uniform across the message: it is
        *stored* (W acks), stored-degraded (fewer, repair owes copies)
        or rejected (``drop_store_down`` — no live replica held any
        copy).
        """
        insert = self.client.cluster.insert_replicated
        name = self.schema.name
        trace_id = message.trace_id
        accepted = True
        degraded = False
        for obj in rows:
            ack = insert(name, obj, trace_id=trace_id, validate=False)
            if not ack.accepted:
                accepted = False
            elif not ack.quorum_met:
                degraded = True
        if not accepted:
            self.store_down_drops += 1
            return DROP_STORE_DOWN, degraded, 0
        if degraded:
            self.quorum_degraded += 1
        self.objects_stored += len(rows)
        return STORED, degraded, len(rows)

    # -- slow-store episodes (repro.faults) ------------------------------

    @property
    def slow(self) -> bool:
        return self._slow

    @property
    def slow_pending(self) -> int:
        """Messages deferred by the current slow episode."""
        return len(self._slow_pending)

    def begin_slow_episode(self) -> None:
        """Storage stalls: arriving messages defer until the episode ends.

        Episodes must be ended (finite) — deferred messages are neither
        stored nor dropped until :meth:`end_slow_episode` flushes them,
        and a run that ends mid-episode reconciles them as in-flight.
        """
        self._slow = True

    def end_slow_episode(self) -> None:
        """Flush everything the episode deferred, in arrival order.

        Each deferred message's ingest hop closes here, so its recorded
        ingest latency is the stall it actually suffered.
        """
        if not self._slow:
            return
        self._slow = False
        pending, self._slow_pending = self._slow_pending, []
        if not pending:
            return
        if self._sharded:
            collector = collector_for(self.daemon.env)
            node = self.daemon.node.name
            for message, rows in pending:
                outcome, degraded, n_rows = self._store_replicated(message, rows)
                if message.trace_id and collector is not None:
                    collector.close_hop(
                        message.trace_id, STAGE_INGEST, node, outcome
                    )
                    if degraded:
                        collector.hop(
                            message.trace_id, STAGE_INGEST, node, QUORUM_DEGRADED
                        )
                if outcome is STORED and self._observers:
                    for cb in self._observers:
                        cb(message, n_rows)
            return
        all_rows = [row for _, rows in pending for row in rows]
        if all_rows:
            self.client.cluster.insert_many(
                self.schema.name, all_rows, validate=False
            )
        collector = collector_for(self.daemon.env)
        node = self.daemon.node.name
        for message, rows in pending:
            self.objects_stored += len(rows)
            if message.trace_id and collector is not None:
                collector.close_hop(message.trace_id, STAGE_INGEST, node, STORED)
            if self._observers:
                for cb in self._observers:
                    cb(message, len(rows))

    def _ingest_hop(self, message, outcome: str) -> None:
        """Terminal telemetry hop: the message either landed or died here."""
        if not message.trace_id:
            return
        collector = collector_for(self.daemon.env)
        if collector is not None:
            collector.hop(
                message.trace_id, STAGE_INGEST, self.daemon.node.name, outcome
            )

    def _flatten_fast(self, data: dict) -> list[dict]:
        """Row-plan flatten: same objects as :meth:`_flatten`, with the
        already-right-typed common case skipping coercion."""
        segments = data.get("seg") or ({},)
        plan = self._row_plan
        coerce = self._coerce
        rows = []
        for seg in segments:
            obj = {}
            for name, from_seg, key, exact, tname in plan:
                raw = seg.get(key) if from_seg else data.get(key)
                if type(raw) is exact:
                    obj[name] = raw
                else:
                    obj[name] = coerce(raw, tname)
            rows.append(obj)
        return rows

    # -- columnar ingest (the express spine's terminal hop) ----------------

    def columnar_rows(self, shape, values) -> list[dict]:
        """Database rows for one columnar row — no message dict, no parse.

        The spine hands over the compiled message shape plus its varying
        slot values; a per-shape *var spec* maps each schema attribute
        either to a pre-coerced static (from the shape's templates) or
        to a slot index.  The first build per shape is self-checked
        against the reference ``_flatten_fast`` path; a mismatching
        shape falls back to building through its parsed dict forever.
        """
        plans = self._columnar_plans
        entry = plans.get(id(shape))
        if entry is None or entry[0] is not shape:
            spec = self._compile_columnar_spec(shape, values)
            if spec is not None:
                built = self._build_columnar(spec, values)
                if built != self._flatten_fast(shape.parsed(values)):
                    spec = None
            plans[id(shape)] = entry = (shape, spec)
        spec = entry[1]
        if spec is None:
            return self._flatten_fast(shape.parsed(values))
        # _build_columnar, inlined (the per-event express path).
        template, var_spec = spec
        coerce = self._coerce
        obj = template.copy()
        for name, idx, exact, tname in var_spec:
            raw = values[idx]
            obj[name] = raw if type(raw) is exact else coerce(raw, tname)
        return [obj]

    def _compile_columnar_spec(self, shape, values):
        if shape.base is None or shape.seg_base is None:
            return None
        if len(values) == 14:
            seg_map = _VAR_SEG_14
        elif len(values) == 9:
            seg_map = _VAR_SEG_9
        else:
            return None
        # Row template in row-plan attribute order, statics pre-coerced
        # and var slots as placeholders: a ``dict.copy`` of it preserves
        # the exact key order the reference builder produces, and the
        # per-row loop then touches only the varying attributes.
        template = {}
        var_spec = []
        for name, from_seg, key, exact, tname in self._row_plan:
            idx = seg_map.get(key) if from_seg else _VAR_OUTER.get(key)
            if idx is None:
                raw = shape.seg_base.get(key) if from_seg else shape.base.get(key)
                template[name] = raw if type(raw) is exact else self._coerce(raw, tname)
            else:
                template[name] = None
                var_spec.append((name, idx, exact, tname))
        return (template, tuple(var_spec))

    def _build_columnar(self, spec, values) -> list[dict]:
        template, var_spec = spec
        coerce = self._coerce
        obj = template.copy()
        for name, idx, exact, tname in var_spec:
            raw = values[idx]
            obj[name] = raw if type(raw) is exact else coerce(raw, tname)
        # Template shapes carry exactly one seg entry — one row.
        return [obj]

    def _flatten(self, data: dict):
        segments = data.get("seg") or [{}]
        for seg in segments:
            obj = {}
            for attr in self.schema.attrs.values():
                if attr.name == "timestamp":
                    raw = seg.get("timestamp")
                elif attr.name.startswith("seg_"):
                    raw = seg.get(attr.name[4:])
                else:
                    raw = data.get(attr.name)
                obj[attr.name] = self._coerce(raw, attr.type)
            yield obj

    @staticmethod
    def _coerce(raw, type_name: str):
        if type_name == "string":
            return str(raw) if raw is not None else _STR_DEFAULT
        if raw is None or raw == "N/A":
            return _INT_DEFAULT if type_name == "int" else _FLOAT_DEFAULT
        try:
            return int(raw) if type_name == "int" else float(raw)
        except (TypeError, ValueError):
            return _INT_DEFAULT if type_name == "int" else _FLOAT_DEFAULT
