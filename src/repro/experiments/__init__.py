"""Experiment harness: the paper's evaluation, reproduced end to end.

* :mod:`repro.experiments.world` — builds one "campaign world": the
  simulated Voltrino cluster, both file systems with shared-load
  variability, the LDMS aggregation fabric, and the DSOS database with
  its store plugin;
* :mod:`repro.experiments.runner` — submits and drives one application
  job (Darshan-only or with the connector) and collects its results;
* :mod:`repro.experiments.overhead` — Table IIa/IIb/IIc campaigns
  (5 repetitions, Darshan-only campaign run at an earlier epoch than
  the connector campaign, like the paper's 1–2-week gap);
* :mod:`repro.experiments.figures` — Figures 5–9 reproduction.
"""

from repro.experiments.world import World, WorldConfig, STREAM_TAG
from repro.experiments.runner import JobResult, run_job, run_jobs_concurrently
from repro.experiments.overhead import (
    run_overhead_cell,
    table2a_mpiio,
    table2b_haccio,
    table2c_hmmer,
)
from repro.experiments.figures import (
    fig5_op_counts,
    fig6_per_node,
    fig7_duration_variability,
    fig8_timeline,
    fig9_grafana_series,
)
from repro.experiments.ablations import (
    ablation_dsos_index,
    ablation_push_pull,
    ablation_sampling,
    ablation_sprintf,
)

__all__ = [
    "JobResult",
    "ablation_dsos_index",
    "ablation_push_pull",
    "ablation_sampling",
    "ablation_sprintf",
    "STREAM_TAG",
    "World",
    "WorldConfig",
    "fig5_op_counts",
    "fig6_per_node",
    "fig7_duration_variability",
    "fig8_timeline",
    "fig9_grafana_series",
    "run_job",
    "run_jobs_concurrently",
    "run_overhead_cell",
    "table2a_mpiio",
    "table2b_haccio",
    "table2c_hmmer",
]
