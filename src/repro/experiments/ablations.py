"""Ablations of the design choices DESIGN.md calls out.

* :func:`ablation_sprintf` — A1: JSON formatting on/off (the paper's
  "only the Streams API" measurement, 0.37 % overhead);
* :func:`ablation_sampling` — A2: the future-work n-th-event sampling,
  sweeping n against overhead and retained-event fidelity;
* :func:`ablation_dsos_index` — A3: joint-index choice vs query work
  ("each index provided a different query performance");
* :func:`ablation_push_pull` — A4: push-based streams vs a pull-based
  poller (Section IV-B's design argument: pull needs buffering memory
  and adds latency between event and recording).
"""

from __future__ import annotations

import numpy as np

from repro.apps import Hmmer
from repro.core import ConnectorConfig
from repro.experiments.overhead import run_overhead_cell
from repro.sim import Environment, Store

__all__ = [
    "ablation_dsos_index",
    "ablation_push_pull",
    "ablation_sampling",
    "ablation_sprintf",
]


# -- A1: sprintf on/off -----------------------------------------------------


def ablation_sprintf(
    *,
    n_families: int = 150,
    ranks_per_node: int = 16,
    seed: int = 44,
    reps: int = 2,
    fs_name: str = "lustre",
) -> list[dict]:
    """Connector overhead with and without JSON formatting."""
    rows = []
    for mode in ("json", "none"):
        cell = run_overhead_cell(
            lambda: Hmmer(ranks_per_node=ranks_per_node, n_families=n_families),
            fs_name,
            label=f"hmmer/format={mode}",
            seed=seed,
            reps=reps,
            connector_config=ConnectorConfig(format_mode=mode),
            world_kwargs={"quiet": True},
        )
        rows.append(cell.as_row())
    return rows


# -- A2: n-th-event sampling ---------------------------------------------------


def ablation_sampling(
    *,
    sample_every: tuple = (1, 2, 5, 10, 50, 100),
    n_families: int = 120,
    ranks_per_node: int = 16,
    seed: int = 44,
    reps: int = 1,
    fs_name: str = "lustre",
) -> list[dict]:
    """Overhead and fidelity as the sampling stride grows.

    Fidelity = fraction of observed I/O events actually published.
    """
    rows = []
    for n in sample_every:
        cell = run_overhead_cell(
            lambda n=n: Hmmer(ranks_per_node=ranks_per_node, n_families=n_families),
            fs_name,
            label=f"hmmer/sample_every={n}",
            seed=seed,
            reps=reps,
            connector_config=ConnectorConfig(sample_every=n),
            world_kwargs={"quiet": True},
        )
        row = cell.as_row()
        row["sample_every"] = n
        # With stride n, read/write events thin out ~n-fold while
        # open/close are always published.
        row["fidelity"] = float(cell.avg_messages)
        rows.append(row)
    # Normalize fidelity to the unsampled run.
    full = rows[0]["fidelity"]
    for row in rows:
        row["fidelity"] = row["fidelity"] / full if full else 1.0
    return rows


# -- A3: DSOS joint-index choice --------------------------------------------------


def ablation_dsos_index(
    *,
    n_jobs: int = 8,
    ranks: int = 16,
    events_per_rank: int = 120,
    seed: int = 0,
) -> list[dict]:
    """Query work per index for the paper's worked example: one rank of
    one job over time."""
    from repro.dsos import DARSHAN_DATA_SCHEMA, DsosClient, DsosCluster

    rng = np.random.default_rng(seed)
    client = DsosClient(DsosCluster("bench", n_daemons=4))
    client.ensure_schema(DARSHAN_DATA_SCHEMA)

    base = {a.name: -1 for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "int"}
    base.update(
        {a.name: "N/A" for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "string"}
    )
    base.update(
        {a.name: -1.0 for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "float"}
    )
    t = 0.0
    for job in range(n_jobs):
        for rank in range(ranks):
            for _ in range(events_per_rank):
                t += float(rng.exponential(0.5))
                obj = dict(base)
                obj.update(
                    job_id=100 + job,
                    rank=rank,
                    timestamp=t,
                    op="write",
                    module="POSIX",
                    ProducerName=f"nid{rank:05d}",
                    seg_len=4096,
                    seg_dur=0.01,
                )
                client.cluster.insert("darshan_data", obj, validate=False)

    target_job, target_rank = 100 + n_jobs // 2, ranks // 2
    rows = []
    # Matched index: prefix scan.
    res = client.query("darshan_data", "job_rank_time", prefix=(target_job, target_rank))
    rows.append(
        {
            "index": "job_rank_time (prefix)",
            "rows_returned": res.stats.rows_returned,
            "rows_scanned": res.stats.rows_scanned,
            "est_latency_s": res.stats.est_latency_s,
        }
    )
    # Partially matched: job prefix + rank filter.
    res = client.query(
        "darshan_data", "job_time_rank", prefix=(target_job,),
        where=[("rank", "==", target_rank)],
    )
    rows.append(
        {
            "index": "job_time_rank (prefix+filter)",
            "rows_returned": res.stats.rows_returned,
            "rows_scanned": res.stats.rows_scanned,
            "est_latency_s": res.stats.est_latency_s,
        }
    )
    # Mismatched: time index, filter everything.
    res = client.query(
        "darshan_data", "time_job_rank",
        where=[("job_id", "==", target_job), ("rank", "==", target_rank)],
    )
    rows.append(
        {
            "index": "time_job_rank (full scan)",
            "rows_returned": res.stats.rows_returned,
            "rows_scanned": res.stats.rows_scanned,
            "est_latency_s": res.stats.est_latency_s,
        }
    )
    return rows


# -- A4: push vs pull -----------------------------------------------------------


def ablation_push_pull(
    *,
    event_rate_per_s: float = 2000.0,
    duration_s: float = 60.0,
    pull_interval_s: float = 5.0,
    buffer_capacity: int = 4096,
    seed: int = 1,
) -> list[dict]:
    """Compare push-based streams with a pull-based poller.

    Push hands each event to the daemon immediately; pull buffers events
    on the node between polls (bounded buffer — overflow is lost).
    Reported: peak node-side buffering, mean event→record latency, and
    loss.
    """
    rng = np.random.default_rng(seed)
    n_events = int(event_rate_per_s * duration_s)
    gaps = rng.exponential(1.0 / event_rate_per_s, size=n_events)

    rows = []
    for mode in ("push", "pull"):
        env = Environment()
        buffer = Store(env, capacity=buffer_capacity)
        latencies: list[float] = []
        peak = 0
        lost = 0

        def producer():
            nonlocal peak, lost
            for gap in gaps:
                yield env.timeout(float(gap))
                if mode == "push":
                    latencies.append(0.0)  # recorded at publish time
                else:
                    if buffer.try_put(env.now):
                        peak = max(peak, len(buffer))
                    else:
                        lost += 1

        def puller():
            while True:
                yield env.timeout(pull_interval_s)
                while True:
                    stamped = buffer.try_get()
                    if stamped is None:
                        break
                    latencies.append(env.now - stamped)
                if env.now > duration_s + pull_interval_s:
                    return

        env.process(producer())
        if mode == "pull":
            env.process(puller())
        env.run(until=duration_s + 2 * pull_interval_s)

        rows.append(
            {
                "mode": mode,
                "events": n_events,
                "peak_buffered": peak,
                "lost": lost,
                "mean_latency_s": float(np.mean(latencies)) if latencies else 0.0,
                "max_latency_s": float(np.max(latencies)) if latencies else 0.0,
            }
        )
    return rows
