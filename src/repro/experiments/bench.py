"""Tracked pipeline benchmark: the optimization lanes' receipts.

One fixed-seed HMMER campaign (the paper's highest-rate workload,
Table IIc) driven end to end — Darshan runtime → connector → three-level
aggregation → DSOS ingest — once per lane, **in the same process** so
the walls are comparable:

* ``slow`` — every fast-lane switch off: the per-message reference path.
* ``fast`` — template formatting, coalesced publish, batched forward
  delivery and batched DSOS ingest.
* ``columnar`` — the record-batch spine: bursts move as columnar
  RecordBatches and, with the express spine armed, publish→forward→
  ingest is virtualized so engine events scale with application I/O.

Host wall-clock, host events/sec, engine event count and a *per-lane*
peak RSS are recorded; results land in ``benchmarks/BENCH_pipeline.json``
via ``python -m repro.cli bench``.

The report separates what may differ from what must not:

* per-lane sections hold **host** metrics only (wall, events/sec,
  engine events, RSS, batch counters) — the things the lanes exist to
  change;
* one shared ``simulated`` section holds the simulated outcome
  (messages, bytes, conversions, overhead seconds, rows, sim runtime),
  asserted identical across all three lanes on every run.  Earlier
  revisions duplicated these per lane, which read as a
  counters-not-reset bug; each lane runs a fresh world and connector,
  and ``benchmarks/test_perf_pipeline.py`` pins the per-run freshness.

Peak RSS: ``ru_maxrss`` is a process-lifetime high-water mark, so the
second lane always inherited the first lane's peak.  Where the kernel
allows it (``/proc/self/clear_refs``), the watermark is reset before
each lane and read back from ``VmHWM``, giving a genuinely per-lane
peak; ``peak_rss_resettable`` records whether that worked (falling back
to the monotone ``ru_maxrss`` otherwise).

Two speedup comparisons matter: the in-process lane ratios
(machine-independent, what ``bench --check`` regresses against) and the
ratios versus the recorded baselines — ``seed_baseline`` (the tree this
optimization series branched from) and ``fast_baseline`` (the fast
lane as committed by the previous optimization PR, the ~9.4k events/s
the columnar spine is measured against).

Every lane is a pure host-side optimization: simulated results are
bit-identical across lanes — ``tests/property/test_fastlane_properties``
and ``tests/property/test_columnar_properties`` hold that line, and
:func:`pipeline_benchmark` re-asserts the cheap invariants on every run.
"""

from __future__ import annotations

import resource
import time
from pathlib import Path

from repro.apps import Hmmer
from repro.core import ConnectorConfig

__all__ = [
    "pipeline_benchmark",
    "snapshot_path",
    "DEFAULT_RESULT_PATH",
    "SEED_BASELINE",
    "FAST_BASELINE",
    "LANES",
]

#: Where ``repro bench`` writes (and ``--check`` reads) the tracked file.
DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_pipeline.json"
)

#: Where dated ``repro bench --json`` snapshots accumulate.
RESULTS_DIR = DEFAULT_RESULT_PATH.parent / "results"

#: The benchmark lanes, in run order (slowest first).
LANES = ("slow", "fast", "columnar")


def snapshot_path(day=None) -> Path:
    """Dated snapshot location for one benchmark run.

    ``repro bench --json`` writes here so a history of measured
    speedups accumulates under version control next to the tracked
    ``BENCH_pipeline.json``.  Same-day reruns never overwrite an
    earlier snapshot: the first run of a day gets the plain dated name,
    later runs get a ``_runN`` suffix (N = 2, 3, ...) — the first free
    slot wins.
    """
    import datetime

    if day is None:
        day = datetime.date.today()
    base = RESULTS_DIR / f"bench_pipeline_{day.isoformat()}.json"
    if not base.exists():
        return base
    run = 2
    while True:
        candidate = RESULTS_DIR / (
            f"bench_pipeline_{day.isoformat()}_run{run}.json"
        )
        if not candidate.exists():
            return candidate
        run += 1

#: The same campaign run on the pre-optimization tree (the commit this
#: optimization series branched from), measured on the reference
#: machine: two fresh-process runs of the full (non-quick) campaign.
#: That tree had only the per-message reference path.
SEED_BASELINE = {
    "campaign": {"n_families": 400, "ranks_per_node": 8, "n_nodes": 2,
                 "seed": 42, "filesystem": "nfs"},
    "events_seen": 62159,
    "wall_s": [13.56, 16.25],
    "events_per_sec": [4584, 3824],
}

#: The fast lane as committed by the previous optimization PR (full
#: campaign, reference machine) — the baseline the columnar spine's
#: ≥3x target is measured against.
FAST_BASELINE = {
    "campaign": SEED_BASELINE["campaign"],
    "events_seen": 62159,
    "events_per_sec": 9402.4,
    "engine_events": 320704,
    "peak_rss_kib": 320016,
}

#: Reduced campaign for CI (--quick): same shape, smaller Pfam input.
_QUICK_FAMILIES = 80
_FULL_FAMILIES = 400

#: The simulated-outcome keys every lane must agree on exactly.
_SIM_KEYS = (
    "events_seen", "messages_published", "bytes_published",
    "numeric_conversions", "format_seconds", "publish_seconds",
    "objects_stored", "sim_runtime_s",
)


def _reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS watermark for this process.

    Writing ``"5"`` to ``/proc/self/clear_refs`` resets ``VmHWM`` (and
    ``VmPeak``) to current usage, so each lane can report its own peak.
    Returns False where the knob does not exist (non-Linux, restricted
    containers) — callers then fall back to the monotone ``ru_maxrss``.
    """
    try:
        with open("/proc/self/clear_refs", "w") as f:
            f.write("5")
        return True
    except OSError:
        return False


def _peak_rss_kib(resettable: bool) -> int:
    """Current peak RSS in KiB: ``VmHWM`` if per-lane resets work,
    ``ru_maxrss`` (process-lifetime, KiB on Linux) otherwise."""
    if resettable:
        try:
            with open("/proc/self/status") as f:
                for line in f:
                    if line.startswith("VmHWM:"):
                        return int(line.split()[1])
        except OSError:
            pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _run_lane(*, lane: str, n_families: int, seed: int) -> tuple[dict, dict]:
    """One full campaign on ``lane``; returns ``(host, simulated)``.

    A fresh world and connector per call: nothing host-side carries
    over between lanes (the per-run freshness regression test pins
    this by running one lane twice and demanding identical numbers).
    """
    if lane not in LANES:
        raise ValueError(f"unknown bench lane {lane!r} (use one of {LANES})")
    # Imported here so ``--help`` stays instant.
    from repro.experiments.runner import run_job
    from repro.experiments.world import World, WorldConfig

    fast = lane != "slow"
    columnar = lane == "columnar"
    rss_resettable = _reset_peak_rss()
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=2,
        fast_lane=fast, columnar=columnar,
    ))
    app = Hmmer(ranks_per_node=8, n_families=n_families)
    t0 = time.perf_counter()
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(fast_lane=fast, columnar=columnar),
    )
    wall_s = time.perf_counter() - t0
    stats = result.connector.stats
    host = {
        "lane": lane,
        "wall_s": round(wall_s, 3),
        "events_per_sec": round(stats.events_seen / wall_s, 1),
        "engine_events": world.env._seq,
        "peak_rss_kib": _peak_rss_kib(rss_resettable),
        "peak_rss_resettable": rss_resettable,
    }
    if world.spine is not None:
        s = world.spine.stats
        host["spine"] = {
            "armed": world.spine.armed,
            "rows": s.rows,
            "record_batches": s.record_batches,
            "batch_rows": s.batch_rows,
            "mean_batch_rows": round(s.mean_batch_rows, 2),
            "max_batch_rows": s.max_batch_rows,
            "ingest_flushes": s.ingest_flushes,
            "dearms": s.dearms,
        }
    simulated = {
        "events_seen": stats.events_seen,
        "messages_published": stats.messages_published,
        "bytes_published": stats.bytes_published,
        "numeric_conversions": stats.numeric_conversions,
        "format_seconds": stats.format_seconds,
        "publish_seconds": stats.publish_seconds,
        "objects_stored": world.store.objects_stored,
        "sim_runtime_s": round(result.runtime_s, 3),
    }
    return host, simulated


def pipeline_benchmark(*, quick: bool = False, seed: int = 42) -> dict:
    """Run the tracked pipeline benchmark; returns the result payload.

    Runs the slow (reference) lane, the fast lane, then the columnar
    lane in this process, and asserts the simulated outcomes match —
    no lane may buy speed with fidelity.
    """
    n_families = _QUICK_FAMILIES if quick else _FULL_FAMILIES
    hosts: dict[str, dict] = {}
    sims: dict[str, dict] = {}
    for lane in LANES:
        hosts[lane], sims[lane] = _run_lane(
            lane=lane, n_families=n_families, seed=seed
        )

    # Fidelity line: identical simulated results in every lane.
    reference = sims["slow"]
    for lane in LANES[1:]:
        for key in _SIM_KEYS:
            if sims[lane][key] != reference[key]:
                raise AssertionError(
                    f"{lane} lane diverged on {key}: "
                    f"slow={reference[key]!r} {lane}={sims[lane][key]!r}"
                )

    eps = {lane: hosts[lane]["events_per_sec"] for lane in LANES}
    full_campaign = (
        not quick and reference["events_seen"] == SEED_BASELINE["events_seen"]
    )
    vs_seed = (
        round(eps["columnar"] / min(SEED_BASELINE["events_per_sec"]), 2)
        if full_campaign else None
    )
    vs_fast_baseline = (
        round(eps["columnar"] / FAST_BASELINE["events_per_sec"], 2)
        if full_campaign else None
    )
    return {
        "benchmark": "pipeline_lanes",
        "campaign": {
            "app": "hmmer", "n_families": n_families, "ranks_per_node": 8,
            "n_nodes": 2, "seed": seed, "filesystem": "nfs", "quick": quick,
        },
        "seed_baseline": SEED_BASELINE,
        "fast_baseline": FAST_BASELINE,
        "simulated": reference,
        "slow": hosts["slow"],
        "fast": hosts["fast"],
        "columnar": hosts["columnar"],
        "speedup_events_per_sec": round(eps["fast"] / eps["slow"], 3),
        "speedup_columnar_vs_fast": round(eps["columnar"] / eps["fast"], 3),
        "speedup_columnar_vs_slow": round(eps["columnar"] / eps["slow"], 3),
        "speedup_vs_seed_baseline": vs_seed,
        "speedup_vs_fast_baseline": vs_fast_baseline,
    }
