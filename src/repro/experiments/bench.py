"""Tracked pipeline benchmark: the fast lane's receipts.

One fixed-seed HMMER campaign (the paper's highest-rate workload,
Table IIc) driven end to end — Darshan runtime → connector → three-level
aggregation → DSOS ingest — once with every fast-lane switch off (the
reference per-message path) and once with them on, **in the same
process** so the two walls are comparable.  Host wall-clock, host
events/sec, engine event count and peak RSS are recorded; results land
in ``benchmarks/BENCH_pipeline.json`` via ``python -m repro.cli bench``.

Two comparisons matter and they answer different questions:

* ``slow`` vs ``fast`` (same process): the machine-independent ratio —
  what the fast lane buys over the in-tree reference path.  This is the
  number CI regresses against (``bench --check``).
* ``seed_baseline`` vs ``fast``: the cumulative speedup over the
  pre-optimization tree (the commit before this work), recorded from
  runs of that commit on the reference machine.  Absolute walls are
  machine-specific; the entry pins the campaign so anyone can re-measure.

The fast lane is a pure host-side optimization: simulated results
(payload bytes, connector stats, DSOS rows) are identical either way —
``tests/property/test_fastlane_properties.py`` holds that line, and
:func:`pipeline_benchmark` re-asserts the cheap invariants on every run.
"""

from __future__ import annotations

import resource
import time
from pathlib import Path

from repro.apps import Hmmer
from repro.core import ConnectorConfig

__all__ = [
    "pipeline_benchmark",
    "snapshot_path",
    "DEFAULT_RESULT_PATH",
    "SEED_BASELINE",
]

#: Where ``repro bench`` writes (and ``--check`` reads) the tracked file.
DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_pipeline.json"
)

#: Where dated ``repro bench --json`` snapshots accumulate.
RESULTS_DIR = DEFAULT_RESULT_PATH.parent / "results"


def snapshot_path(day=None) -> Path:
    """Dated snapshot location for one benchmark run.

    ``repro bench --json`` writes here so a history of measured
    speedups accumulates under version control next to the tracked
    ``BENCH_pipeline.json``.  Same-day reruns never overwrite an
    earlier snapshot: the first run of a day gets the plain dated name,
    later runs get a ``_runN`` suffix (N = 2, 3, ...) — the first free
    slot wins.
    """
    import datetime

    if day is None:
        day = datetime.date.today()
    base = RESULTS_DIR / f"bench_pipeline_{day.isoformat()}.json"
    if not base.exists():
        return base
    run = 2
    while True:
        candidate = RESULTS_DIR / (
            f"bench_pipeline_{day.isoformat()}_run{run}.json"
        )
        if not candidate.exists():
            return candidate
        run += 1

#: The same campaign run on the pre-optimization tree (the commit this
#: optimization series branched from), measured on the reference
#: machine: two fresh-process runs of the full (non-quick) campaign.
#: That tree had only the per-message reference path, so these walls are
#: what ``fast`` must be compared against for the cumulative speedup.
SEED_BASELINE = {
    "campaign": {"n_families": 400, "ranks_per_node": 8, "n_nodes": 2,
                 "seed": 42, "filesystem": "nfs"},
    "events_seen": 62159,
    "wall_s": [13.56, 16.25],
    "events_per_sec": [4584, 3824],
}

#: Reduced campaign for CI (--quick): same shape, smaller Pfam input.
_QUICK_FAMILIES = 80
_FULL_FAMILIES = 400


def _run_mode(*, fast: bool, n_families: int, seed: int) -> dict:
    """One full campaign with every fast-lane switch set to ``fast``."""
    # Imported here so ``--help`` stays instant.
    from repro.experiments.runner import run_job
    from repro.experiments.world import World, WorldConfig

    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=2, fast_lane=fast,
    ))
    app = Hmmer(ranks_per_node=8, n_families=n_families)
    t0 = time.perf_counter()
    result = run_job(
        world, app, "nfs", connector_config=ConnectorConfig(fast_lane=fast)
    )
    wall_s = time.perf_counter() - t0
    stats = result.connector.stats
    return {
        "fast_lane": fast,
        "wall_s": round(wall_s, 3),
        "events_seen": stats.events_seen,
        "events_per_sec": round(stats.events_seen / wall_s, 1),
        "messages_published": stats.messages_published,
        "bytes_published": stats.bytes_published,
        "numeric_conversions": stats.numeric_conversions,
        "format_seconds": stats.format_seconds,
        "publish_seconds": stats.publish_seconds,
        "objects_stored": world.store.objects_stored,
        "engine_events": world.env._seq,
        "sim_runtime_s": round(result.runtime_s, 3),
        # ru_maxrss is the process-lifetime high-water mark (KiB on
        # Linux) — monotone across modes, meaningful as "the benchmark
        # never exceeded this".
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def pipeline_benchmark(*, quick: bool = False, seed: int = 42) -> dict:
    """Run the tracked pipeline benchmark; returns the result payload.

    Runs the slow (reference) lane first, then the fast lane, in this
    process, and asserts the simulated outcomes match — the fast lane
    must never buy speed with fidelity.
    """
    n_families = _QUICK_FAMILIES if quick else _FULL_FAMILIES
    slow = _run_mode(fast=False, n_families=n_families, seed=seed)
    fast = _run_mode(fast=True, n_families=n_families, seed=seed)

    # Fidelity line: identical simulated results in both modes.
    for key in ("events_seen", "messages_published", "bytes_published",
                "numeric_conversions", "objects_stored", "sim_runtime_s",
                "format_seconds", "publish_seconds"):
        if slow[key] != fast[key]:
            raise AssertionError(
                f"fast lane diverged on {key}: slow={slow[key]!r} "
                f"fast={fast[key]!r}"
            )

    speedup = fast["events_per_sec"] / slow["events_per_sec"]
    vs_seed = None
    if not quick and fast["events_seen"] == SEED_BASELINE["events_seen"]:
        vs_seed = round(
            fast["events_per_sec"] / min(SEED_BASELINE["events_per_sec"]), 2
        )
    return {
        "benchmark": "pipeline_fast_lane",
        "campaign": {
            "app": "hmmer", "n_families": n_families, "ranks_per_node": 8,
            "n_nodes": 2, "seed": seed, "filesystem": "nfs", "quick": quick,
        },
        "seed_baseline": SEED_BASELINE,
        "slow": slow,
        "fast": fast,
        "speedup_events_per_sec": round(speedup, 3),
        "speedup_vs_seed_baseline": vs_seed,
    }
