"""Figures 5–9: the run-time analyses the connector enables.

Every function runs a small campaign *with* the connector, queries the
events back out of DSOS (never out of the simulator's internals — the
point of the paper is that the database view suffices), and feeds the
web-services analysis modules.
"""

from __future__ import annotations

from repro.apps import HaccIO, MpiIoTest
from repro.experiments.runner import run_job
from repro.experiments.world import World, WorldConfig
from repro.webservices import (
    count_write_phases,
    detect_anomalous_jobs,
    duration_stats_per_job,
    op_counts_with_ci,
    ops_per_node,
    rows_to_dataframe,
    throughput_series,
    timeline,
)

__all__ = [
    "fig5_op_counts",
    "fig6_per_node",
    "fig7_duration_variability",
    "fig8_timeline",
    "fig9_grafana_series",
    "run_mpiio_campaign",
]


def _df_for_jobs(world: World, job_ids: list[int], module: str | None = None):
    rows = []
    for job_id in job_ids:
        rows.extend(world.query_job(job_id).rows)
    if module is not None:
        rows = [r for r in rows if r["module"] == module]
    return rows_to_dataframe(rows)


# -- Figure 5 -------------------------------------------------------------


def fig5_op_counts(
    *,
    seed: int = 42,
    reps: int = 5,
    n_nodes: int = 4,
    ranks_per_node: int = 4,
    particles_per_rank: tuple = (500_000, 1_000_000),
) -> dict:
    """Mean op occurrences (95 % CI) per HACC configuration.

    Returns ``{config_label: {op: {"mean", "ci", "per_job"}}}``.
    """
    out = {}
    config_index = 0
    for fs_name in ("nfs", "lustre"):
        for particles in particles_per_rank:
            # Distinct seed per configuration: each config is its own
            # campaign with its own file-system weather.
            config_index += 1
            world = World(WorldConfig(seed=seed + 1000 * config_index))
            job_ids = []
            for _ in range(reps):
                app = HaccIO(
                    n_nodes=n_nodes,
                    ranks_per_node=ranks_per_node,
                    particles_per_rank=particles,
                )
                result = run_job(world, app, fs_name, connector_config=_cc())
                job_ids.append(result.job_id)
            # Count at the POSIX layer (what actually hit the FS), as
            # the paper's operation-count plots do.
            df = _df_for_jobs(world, job_ids, module="POSIX")
            label = f"{fs_name}/{particles // 1000}k"
            out[label] = op_counts_with_ci(df)
    return out


# -- Figure 6 -------------------------------------------------------------


def fig6_per_node(
    *,
    seed: int = 42,
    n_jobs: int = 2,
    n_nodes: int = 4,
    ranks_per_node: int = 4,
    particles_per_rank: int = 1_000_000,
) -> dict:
    """Open/close request counts per node for ``n_jobs`` HACC jobs on
    Lustre.  Returns ``{job_id: {node: {op: count}}}``."""
    world = World(WorldConfig(seed=seed))
    job_ids = []
    for _ in range(n_jobs):
        app = HaccIO(
            n_nodes=n_nodes,
            ranks_per_node=ranks_per_node,
            particles_per_rank=particles_per_rank,
        )
        result = run_job(world, app, "lustre", connector_config=_cc())
        job_ids.append(result.job_id)
    df = _df_for_jobs(world, job_ids, module="POSIX")
    return ops_per_node(df, ops=("open", "close"))


# -- Figures 7/8/9 share one MPI-IO-TEST campaign ---------------------------

#: Seed chosen (documented, reproducible) so that one of the five jobs
#: runs into a congestion incident — the paper's "job_id 2".
ANOMALY_SEED = 4

#: Figure-campaign weather: heavier congestion-incident tail than the
#: defaults, representative of a busy production window.
FIGURE_LOAD_KWARGS = {
    "incident_rate": 1.0 / 1500.0,
    "incident_mean_duration": 300.0,
    "incident_severity_alpha": 0.8,
    "incident_max_severity": 150.0,
    "noise_sigma": 0.2,
}


def run_mpiio_campaign(
    *,
    seed: int = ANOMALY_SEED,
    reps: int = 5,
    n_nodes: int = 4,
    ranks_per_node: int = 4,
    iterations: int = 10,
    block_size: int = 2 * 2**20,
    fs_name: str = "nfs",
    load_kwargs: dict | None = None,
):
    """Five MPI-IO-TEST jobs without collective I/O (the Fig 7 setup).

    Returns (world, job_ids).
    """
    load_kwargs = load_kwargs or dict(FIGURE_LOAD_KWARGS)
    world = World(WorldConfig(seed=seed, load_kwargs=load_kwargs))
    job_ids = []
    for _ in range(reps):
        app = MpiIoTest(
            n_nodes=n_nodes,
            ranks_per_node=ranks_per_node,
            iterations=iterations,
            block_size=block_size,
            collective=False,
        )
        result = run_job(world, app, fs_name, connector_config=_cc())
        job_ids.append(result.job_id)
    return world, job_ids


def fig7_duration_variability(**kwargs) -> dict:
    """Per-job read/write duration stats + detected anomalous jobs.

    Returns ``{"stats": {job: {op: {...}}}, "anomalous": [job_ids]}``.
    """
    world, job_ids = run_mpiio_campaign(**kwargs)
    df = _df_for_jobs(world, job_ids, module="POSIX")
    stats = duration_stats_per_job(df)
    return {
        "stats": stats,
        "anomalous": detect_anomalous_jobs(stats, op="read", factor=5.0),
        "job_ids": job_ids,
    }


def fig8_timeline(job_id: int | None = None, **kwargs) -> dict:
    """Temporal scatter of op durations for the anomalous job.

    Returns the timeline dict plus ``write_phases`` (the paper counts
    ten write phases then reads at the end).
    """
    world, job_ids = run_mpiio_campaign(**kwargs)
    df = _df_for_jobs(world, job_ids, module="POSIX")
    if job_id is None:
        stats = duration_stats_per_job(df)
        anomalous = detect_anomalous_jobs(stats, op="read", factor=5.0)
        if anomalous:
            # The paper's figure zooms on the worst offender.
            job_id = max(anomalous, key=lambda j: stats[j]["read"]["mean"])
        else:
            job_id = job_ids[-1]
    tl = timeline(df, job_id)
    tl["write_phases"] = count_write_phases(tl, gap_s=1.0)
    tl["job_id"] = job_id
    return tl


def fig9_grafana_series(job_id: int | None = None, bucket_s: float = 10.0, **kwargs) -> dict:
    """The Grafana panel data: op counts + bytes per bucket per op.

    Like the paper's Figure 9, defaults to the anomalous job that
    Figures 7/8 identified.
    """
    world, job_ids = run_mpiio_campaign(**kwargs)
    df = _df_for_jobs(world, job_ids, module="POSIX")
    if job_id is None:
        stats = duration_stats_per_job(df)
        anomalous = detect_anomalous_jobs(stats, op="read", factor=5.0)
        if anomalous:
            job_id = max(anomalous, key=lambda j: stats[j]["read"]["mean"])
        else:
            job_id = job_ids[-1]
    series = throughput_series(df, job_id, bucket_s=bucket_s)
    series["job_id"] = job_id
    return series


def _cc():
    from repro.core import ConnectorConfig

    return ConnectorConfig()
