"""Table II campaigns: overhead of the connector vs plain Darshan.

Faithful to the paper's methodology:

* every cell is 5 repetitions of each mode;
* the Darshan-only campaign runs at an earlier point of the shared
  load timeline than the connector campaign ("performed and recorded
  1–2 weeks before"), so file-system drift can produce the paper's
  negative overheads;
* ``Avg. Messages`` and ``Rate`` come from the connector runs.
"""

from __future__ import annotations

import numpy as np

from repro.core import ConnectorConfig, OverheadResult
from repro.experiments.runner import run_job
from repro.experiments.world import World, WorldConfig

__all__ = [
    "run_overhead_cell",
    "table2a_mpiio",
    "table2b_haccio",
    "table2c_hmmer",
]


def run_overhead_cell(
    app_factory,
    fs_name: str,
    *,
    label: str,
    seed: int = 42,
    reps: int = 5,
    connector_config: ConnectorConfig | None = None,
    campaign_gap_days: float = 12.0,
    world_kwargs: dict | None = None,
) -> OverheadResult:
    """One (configuration, file system) column of Table II."""
    if reps < 1:
        raise ValueError("reps must be >= 1")
    connector_config = connector_config or ConnectorConfig()
    world_kwargs = dict(world_kwargs or {})

    # Campaign A: Darshan only, earlier in the load timeline.
    world_a = World(WorldConfig(seed=seed, campaign_offset_days=0.0, **world_kwargs))
    darshan_times = [
        run_job(world_a, app_factory(), fs_name).runtime_s for _ in range(reps)
    ]

    # Campaign B: with the connector, `campaign_gap_days` later.
    world_b = World(
        WorldConfig(seed=seed, campaign_offset_days=campaign_gap_days, **world_kwargs)
    )
    results = [
        run_job(world_b, app_factory(), fs_name, connector_config=connector_config)
        for _ in range(reps)
    ]

    avg_messages = float(np.mean([r.messages_published for r in results]))
    mean_runtime = float(np.mean([r.runtime_s for r in results]))
    rate = avg_messages / mean_runtime if mean_runtime > 0 else 0.0
    return OverheadResult(
        label=label,
        filesystem=fs_name,
        darshan_runtimes=tuple(darshan_times),
        connector_runtimes=tuple(r.runtime_s for r in results),
        avg_messages=avg_messages,
        message_rate=rate,
    )


# -- the three tables ----------------------------------------------------------


def table2a_mpiio(
    *,
    seed: int = 42,
    reps: int = 5,
    n_nodes: int = 22,
    ranks_per_node: int = 16,
    iterations: int = 10,
    block_size: int = 16 * 2**20,
) -> list[OverheadResult]:
    """Table IIa: MPI-IO-TEST, {NFS, Lustre} x {collective, independent}."""
    from repro.apps import MpiIoTest

    cells = []
    for fs_name in ("nfs", "lustre"):
        for collective in (True, False):
            label = "collective" if collective else "independent"
            cells.append(
                run_overhead_cell(
                    lambda c=collective: MpiIoTest(
                        n_nodes=n_nodes,
                        ranks_per_node=ranks_per_node,
                        block_size=block_size,
                        iterations=iterations,
                        collective=c,
                    ),
                    fs_name,
                    label=f"mpi-io-test/{label}",
                    seed=seed,
                    reps=reps,
                )
            )
    return cells


def table2b_haccio(
    *,
    seed: int = 43,
    reps: int = 5,
    n_nodes: int = 16,
    ranks_per_node: int = 8,
    particle_counts: tuple = (5_000_000, 10_000_000),
) -> list[OverheadResult]:
    """Table IIb: HACC-IO, {NFS, Lustre} x particles/rank."""
    from repro.apps import HaccIO

    cells = []
    for fs_name in ("nfs", "lustre"):
        for particles in particle_counts:
            cells.append(
                run_overhead_cell(
                    lambda p=particles: HaccIO(
                        n_nodes=n_nodes,
                        ranks_per_node=ranks_per_node,
                        particles_per_rank=p,
                    ),
                    fs_name,
                    label=f"hacc-io/{particles // 1_000_000}M",
                    seed=seed,
                    reps=reps,
                )
            )
    return cells


def table2c_hmmer(
    *,
    seed: int = 44,
    reps: int = 5,
    n_families: int = 19_000,
    ranks_per_node: int = 32,
    connector_config: ConnectorConfig | None = None,
) -> list[OverheadResult]:
    """Table IIc: HMMER hmmbuild on one node, NFS and Lustre.

    ``n_families`` scales the Pfam-A.seed input; overhead percentages
    are scale-invariant (runtime and event count shrink together), so
    reduced inputs reproduce the table's shape quickly.
    """
    from repro.apps import Hmmer

    cells = []
    for fs_name in ("nfs", "lustre"):
        cells.append(
            run_overhead_cell(
                lambda: Hmmer(ranks_per_node=ranks_per_node, n_families=n_families),
                fs_name,
                label="hmmer/Pfam-A.seed",
                seed=seed,
                reps=reps,
                connector_config=connector_config,
            )
        )
    return cells
