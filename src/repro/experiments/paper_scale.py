"""Analytic bridge to paper scale.

The benchmarks run the DES at reduced rank counts and inputs; this
module evaluates the *same calibrated service models* analytically at
the paper's full parameters, so the reproduction's constants can be
checked directly against the published Table II numbers.

The closed forms are first-order (no queueing transients, no weather):

* byte-bound apps: ``runtime ≈ moved_bytes / aggregate_bandwidth +
  per-op latencies + seek costs``;
* HMMER: ``runtime ≈ families × per-family cost`` with the per-family
  cost assembled from stdio/FS constants;
* connector overhead: ``events × per-event formatting cost`` on the
  critical-path rank(s).

The paper does not state MPI ranks per node; ``fit_ranks_per_node``
finds the value that best explains Table IIa, which doubles as a
consistency check (a plausible 8–32 means the calibration hangs
together; an absurd value would mean it does not).
"""

from __future__ import annotations

import numpy as np

from repro.core.json_format import FormatCostModel, MessageBuilder
from repro.fs.lustre import LustreParams
from repro.fs.nfs import NFSParams

__all__ = [
    "predict_hmmer",
    "predict_mpiio",
    "fit_ranks_per_node",
    "PAPER_TABLE2A",
    "PAPER_TABLE2C",
]

#: Paper Table IIa mean runtimes (s): (fs, collective) -> Darshan-only.
PAPER_TABLE2A = {
    ("nfs", True): 1376.67,
    ("nfs", False): 880.46,
    ("lustre", True): 249.97,
    ("lustre", False): 428.18,
}

#: Paper Table IIc: fs -> (Darshan-only s, dC s, messages).
PAPER_TABLE2C = {
    "nfs": (749.88, 2826.01, 3_117_342),
    "lustre": (135.40, 1863.98, 4_461_738),
}

#: Default per-event formatting cost (17 numeric fields).
_EVENT_COST_S = FormatCostModel().cost(17, 420)


def predict_mpiio(
    *,
    fs: str,
    collective: bool,
    n_nodes: int = 22,
    ranks_per_node: int = 13,
    block_size: int = 16 * 2**20,
    iterations: int = 10,
    nfs: NFSParams = NFSParams(),
    lustre: LustreParams = LustreParams(),
) -> float:
    """First-order MPI-IO-TEST runtime (seconds) at given scale."""
    n_ranks = n_nodes * ranks_per_node
    phase_bytes = n_ranks * block_size * iterations  # write phase == read phase
    if fs == "nfs":
        bw = nfs.server_bandwidth_bps
        if collective:
            # Data sieving: write pass + sieve-read pass + read-back.
            moved = 3 * phase_bytes
        else:
            moved = 2 * phase_bytes
        return moved / bw
    if fs == "lustre":
        bw = lustre.n_osts * lustre.ost_bandwidth_bps
        moved = 2 * phase_bytes
        base = moved / bw
        # Seek cost: every non-contiguous chunk pays seek_s, amortized
        # over n_osts parallel heads.
        chunks_per_phase = phase_bytes // lustre.stripe_size_bytes
        if collective:
            # Aggregators stream cb-buffer runs: one seek per cb chunk.
            cb = 16 * 2**20
            seeks = phase_bytes // cb * 2
        else:
            # Every rank's every block lands scattered: each stripe
            # chunk seeks, both phases.
            seeks = chunks_per_phase * 2
        return base + seeks * lustre.seek_s / lustre.n_osts
    raise ValueError(f"unknown fs {fs!r}")


def predict_hmmer(
    *,
    fs: str,
    n_families: int = 19_000,
    events_per_family: int = 150,
    writes_per_family: int = 40,
    line_bytes: int = 112,
    out_buffer: int = 1024,
    master_parse_s: float = 0.0005,
    compute_batch_s: float = 0.040 / 31,
    event_cost_s: float = _EVENT_COST_S,
    nfs: NFSParams = NFSParams(),
    lustre: LustreParams = LustreParams(),
) -> dict:
    """First-order HMMER (hmmbuild) runtimes and overhead."""
    fs_writes = writes_per_family * line_bytes / out_buffer
    if fs == "nfs":
        per_family_io = fs_writes * nfs.data_latency_s + nfs.commit_latency_s
    elif fs == "lustre":
        per_family_io = (
            fs_writes * lustre.ost_latency_s + lustre.mds_latency_s
        )
    else:
        raise ValueError(f"unknown fs {fs!r}")
    per_family_base = per_family_io + master_parse_s + compute_batch_s
    base = n_families * per_family_base
    overhead = n_families * events_per_family * event_cost_s
    return {
        "darshan_s": base,
        "dC_s": base + overhead,
        "overhead_percent": overhead / base * 100.0,
        "messages": n_families * events_per_family,
    }


def fit_ranks_per_node(
    candidates=range(4, 33),
    **kwargs,
) -> tuple[int, float]:
    """The ranks/node that best explains Table IIa (paper omits it).

    Returns ``(best_rpn, mean_relative_error)`` over the four cells.
    """
    best = None
    for rpn in candidates:
        errors = []
        for (fs, coll), paper_s in PAPER_TABLE2A.items():
            pred = predict_mpiio(fs=fs, collective=coll, ranks_per_node=rpn, **kwargs)
            errors.append(abs(pred - paper_s) / paper_s)
        score = float(np.mean(errors))
        if best is None or score < best[1]:
            best = (rpn, score)
    return best
