"""Markdown report generation from saved benchmark results.

``pytest benchmarks/ --benchmark-only`` saves every reproduced table
and figure as JSON under ``benchmarks/results/``; this module renders
them into one paper-vs-measured markdown report, so EXPERIMENTS.md can
be refreshed from an actual run (``python -m repro.cli report``).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["generate_report", "load_results"]

#: The paper's own numbers, for the side-by-side columns.
PAPER_TABLES = {
    "table2a_mpiio": {
        ("nfs", "collective"): (1376.67, 1355.35, -1.55),
        ("nfs", "independent"): (880.46, 858.68, -2.47),
        ("lustre", "collective"): (249.97, 270.98, 8.41),
        ("lustre", "independent"): (428.18, 414.35, -3.23),
    },
    "table2c_hmmer": {
        ("nfs", "hmmer/Pfam-A.seed"): (749.88, 2826.01, 276.86),
        ("lustre", "hmmer/Pfam-A.seed"): (135.40, 1863.98, 1276.67),
    },
}


def load_results(results_dir: str | Path) -> dict:
    """All saved benchmark payloads, keyed by experiment name."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"{results_dir} does not exist — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    out = {}
    for path in sorted(results_dir.glob("*.json")):
        out[path.stem] = json.loads(path.read_text())
    return out


def _overhead_section(name: str, title: str, rows: list[dict]) -> list[str]:
    paper = PAPER_TABLES.get(name, {})
    lines = [f"## {title}", ""]
    lines.append(
        "| config | fs | msgs | rate/s | Darshan (s) | dC (s) | overhead "
        "| paper overhead |"
    )
    lines.append("|---|---|---|---|---|---|---|---|")
    for r in rows:
        key_variants = [
            (r["filesystem"], r["config"].split("/")[-1]),
            (r["filesystem"], r["config"]),
        ]
        paper_ov = next(
            (f"{paper[k][2]:+.2f} %" for k in key_variants if k in paper), "—"
        )
        lines.append(
            f"| {r['config']} | {r['filesystem']} | {r['avg_messages']} "
            f"| {r['rate_msgs_per_s']:.1f} | {r['darshan_runtime_s']:.2f} "
            f"| {r['dC_runtime_s']:.2f} | {r['overhead_percent']:+.2f} % "
            f"| {paper_ov} |"
        )
    lines.append("")
    return lines


def generate_report(results_dir: str | Path) -> str:
    """The full markdown report for one benchmark run."""
    results = load_results(results_dir)
    lines = [
        "# Reproduction report (generated from benchmarks/results/)",
        "",
        "Shapes, not absolute numbers, are the reproduction target; "
        "see EXPERIMENTS.md for the per-claim analysis.",
        "",
    ]
    for name, title in (
        ("table2a_mpiio", "Table IIa — MPI-IO-TEST"),
        ("table2b_haccio", "Table IIb — HACC-IO"),
        ("table2c_hmmer", "Table IIc — HMMER"),
        ("ablation_sprintf", "Ablation A1 — sprintf on/off"),
    ):
        if name in results:
            lines += _overhead_section(name, title, results[name])

    if "ablation_sampling" in results:
        lines += ["## Ablation A2 — n-th-event sampling", ""]
        lines.append("| n | overhead | fidelity |")
        lines.append("|---|---|---|")
        for r in results["ablation_sampling"]:
            lines.append(
                f"| {r['sample_every']} | {r['overhead_percent']:.1f} % "
                f"| {r['fidelity']:.0%} |"
            )
        lines.append("")

    if "ablation_dsos_index" in results:
        lines += ["## Ablation A3 — DSOS index choice", ""]
        lines.append("| index | scanned | returned | est. latency |")
        lines.append("|---|---|---|---|")
        for r in results["ablation_dsos_index"]:
            lines.append(
                f"| {r['index']} | {r['rows_scanned']} | {r['rows_returned']} "
                f"| {r['est_latency_s'] * 1e6:.0f} µs |"
            )
        lines.append("")

    if "ablation_push_pull" in results:
        lines += ["## Ablation A4 — push vs pull", ""]
        lines.append("| mode | peak buffered | lost | mean latency |")
        lines.append("|---|---|---|---|")
        for r in results["ablation_push_pull"]:
            lines.append(
                f"| {r['mode']} | {r['peak_buffered']} | {r['lost']} "
                f"| {r['mean_latency_s']:.2f} s |"
            )
        lines.append("")

    if "fig7_job_variability" in results:
        f7 = results["fig7_job_variability"]
        lines += ["## Figure 7 — per-job duration means", ""]
        lines.append("| job | read mean (s) | write mean (s) | anomalous |")
        lines.append("|---|---|---|---|")
        for job, means in sorted(f7["means"].items()):
            mark = "yes" if int(job) in f7["anomalous"] else ""
            lines.append(
                f"| {job} | {means['read']:.3f} | {means['write']:.3f} | {mark} |"
            )
        lines.append("")

    if "fig8_timeline" in results:
        f8 = results["fig8_timeline"]
        lines += [
            "## Figure 8 — anomalous job timeline",
            "",
            f"Job {f8['job_id']}: **{f8['write_phases']} write phases**; "
            "mean op duration per run-decile: "
            + " ".join(f"{d:.2f}" for d in f8["decile_mean_durations"]),
            "",
        ]
    return "\n".join(lines)
