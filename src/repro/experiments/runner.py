"""Job runner: submit, instrument, drive, collect.

This is the procedural analogue of Section V-C's environment: the job
gets exclusive nodes, every rank's POSIX client is wrapped by Darshan
(the dynamic-link ``LD_PRELOAD`` step), and — for connector runs — the
Darshan-LDMS connector is attached before the application starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppContext, Application
from repro.core import ConnectorConfig, DarshanLdmsConnector
from repro.darshan import DarshanConfig, DarshanRuntime
from repro.fs.posix import IOContext, PosixClient
from repro.mpi import Communicator, RankContext
from repro.experiments.world import World

__all__ = ["JobResult", "run_job", "run_jobs_concurrently"]

_DEFAULT_UID = 99066


@dataclass
class JobResult:
    """Everything one run produced."""

    job: object
    app: Application
    fs_name: str
    runtime_s: float
    darshan_log: object
    connector: DarshanLdmsConnector | None
    #: Pipeline-health appendix (telemetry-enabled worlds only): the
    #: per-job PipelineHealthReport with hop latencies and loss ledger.
    health: object | None = None

    @property
    def job_id(self) -> int:
        return self.job.job_id

    @property
    def messages_published(self) -> int:
        return self.connector.stats.messages_published if self.connector else 0

    @property
    def message_rate(self) -> float:
        if not self.connector or self.runtime_s <= 0:
            return 0.0
        return self.messages_published / self.runtime_s


def _prepare_job(
    world: World,
    app: Application,
    fs_name: str,
    connector_config: ConnectorConfig | None,
    darshan_config: DarshanConfig | None,
    uid: int,
):
    """Submit, instrument and start one job; returns the pieces the
    caller drives to completion."""
    env = world.env
    fs = world.filesystem(fs_name)
    job = world.cluster.scheduler.submit(app.name, app.n_nodes, uid=uid)
    darshan_config = darshan_config or DarshanConfig()
    runtime = DarshanRuntime(
        env,
        job_id=job.job_id,
        uid=uid,
        exe=app.exe,
        nprocs=app.n_ranks,
        config=darshan_config,
    )

    ranks = []
    for r in range(app.n_ranks):
        node = job.nodes[r // app.ranks_per_node]
        ctx = IOContext(
            job_id=job.job_id,
            uid=uid,
            rank=r,
            node_name=node.name,
            exe=app.exe,
            app=app.name,
        )
        client = PosixClient(env, fs, ctx)
        runtime.instrument(client)
        ranks.append(RankContext(rank=r, node=node, posix=client))
    comm = Communicator(env, ranks)

    connector = None
    if connector_config is not None:
        connector = DarshanLdmsConnector(
            runtime, world.fabric.daemon_for, connector_config
        )
        # Diagnosis reads spill ledgers fleet-wide from here.
        world.connectors.append(connector)

    app_ctx = AppContext(
        env=env,
        comm=comm,
        fs=fs,
        job=job,
        runtime=runtime,
        rng=world.rng.fork(f"job-{job.job_id}").stream("app"),
        scratch=f"/{fs_name}/scratch",
    )
    bodies = app.build(app_ctx)
    if len(bodies) != app.n_ranks:
        raise RuntimeError(
            f"{app.name} built {len(bodies)} rank bodies for {app.n_ranks} ranks"
        )
    world.cluster.scheduler.start(job, env.now)
    procs = [env.process(body) for body in bodies]
    return job, app, fs_name, runtime, connector, procs


def _finish(world: World, prepared) -> JobResult:
    job, app, fs_name, runtime, connector, _ = prepared
    health = None
    if getattr(world, "telemetry", None) is not None and connector is not None:
        health = world.pipeline_health_report(job_id=job.job_id)
    return JobResult(
        job=job,
        app=app,
        fs_name=fs_name,
        runtime_s=job.runtime,
        darshan_log=runtime.finalize(),
        connector=connector,
        health=health,
    )


def run_job(
    world: World,
    app: Application,
    fs_name: str,
    *,
    connector_config: ConnectorConfig | None = None,
    darshan_config: DarshanConfig | None = None,
    uid: int = _DEFAULT_UID,
    inter_job_gap_s: float = 120.0,
) -> JobResult:
    """Run ``app`` against ``fs_name``; returns when the job (and all
    in-flight monitoring data) has finished.

    ``connector_config=None`` is a "Darshan only" run (the baseline
    column of Table II); passing a config attaches the connector.
    ``inter_job_gap_s`` advances the clock before submission, modelling
    scheduler queue time between campaign repetitions (and decorrelating
    the file-system weather of consecutive jobs).
    """
    env = world.env
    if inter_job_gap_s > 0:
        gap_done = env.process(_sleep(env, inter_job_gap_s))
        env.run(gap_done)

    prepared = _prepare_job(
        world, app, fs_name, connector_config, darshan_config, uid
    )
    job, _, _, _, _, procs = prepared
    env.run(env.all_of(procs))
    world.cluster.scheduler.complete(job, env.now)
    world.drain()  # let the tail of the stream reach DSOS
    return _finish(world, prepared)


def run_jobs_concurrently(
    world: World,
    specs: list[tuple[Application, str]],
    *,
    connector_config: ConnectorConfig | None = None,
    darshan_config: DarshanConfig | None = None,
    uid: int = _DEFAULT_UID,
) -> list[JobResult]:
    """Run several jobs *at the same time* on disjoint node allocations.

    This is how shared-file-system interference happens in production:
    jobs that never share a node still share the NFS server / Lustre
    OSTs, and one job's traffic inflates another's runtimes.  Every job
    must fit simultaneously (the scheduler enforces exclusivity).
    """
    env = world.env
    prepared = [
        _prepare_job(world, app, fs_name, connector_config, darshan_config, uid)
        for app, fs_name in specs
    ]
    # One waiter per job marks completion at that job's own finish time.
    waiters = []
    for p in prepared:
        job, _, _, _, _, procs = p

        def waiter(job=job, procs=procs):
            yield env.all_of(procs)
            world.cluster.scheduler.complete(job, env.now)

        waiters.append(env.process(waiter()))
    env.run(env.all_of(waiters))
    world.drain()
    return [_finish(world, p) for p in prepared]


def _sleep(env, seconds: float):
    yield env.timeout(seconds)
