"""Campaign worlds: one fully wired simulated environment.

A :class:`World` holds everything Section V's environment describes:
Voltrino's nodes and network, NFS and Lustre with their shared-load
variability processes, LDMS daemons on every compute node aggregating
through the head node to Shirley, and the DSOS cluster fed by the
stream store plugin.

Two worlds built from the same seed share the *structure* of their
randomness (the same incident timeline, the same Fourier wander), so a
campaign run at ``campaign_offset_days=12`` experiences genuinely
different — but reproducible — file-system weather than one at offset
0.  That is the paper's "Darshan-only runs were performed 1–2 weeks
before the connector runs" situation, and the mechanism behind its
negative overhead cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster, ClusterSpec
from repro.dsos import DsosClient, DsosCluster, DsosStreamStore
from repro.fs import (
    LoadProcess,
    LustreFileSystem,
    LustreParams,
    NFSFileSystem,
    NFSParams,
)
from repro.ldms import AggregationFabric, CsvStreamStore
from repro.sim import Environment, RngRegistry

__all__ = ["World", "WorldConfig", "STREAM_TAG"]

#: The connector's single stream tag (Section IV-C).
STREAM_TAG = "darshanConnector"

#: Absolute epoch the simulated clocks are anchored to.
EPOCH_BASE = 1_650_000_000.0

_DAY = 86400.0


@dataclass(frozen=True)
class WorldConfig:
    """Reproducible description of one campaign world."""

    seed: int = 42
    n_compute_nodes: int = 24
    #: Where in the shared load timeline this campaign runs.
    campaign_offset_days: float = 0.0
    #: Variability knobs (None = defaults; dict of LoadProcess kwargs).
    load_kwargs: dict = field(default_factory=dict)
    quiet: bool = False  # True = flat load (unit tests, ablations)
    nfs_params: NFSParams = field(default_factory=NFSParams)
    lustre_params: LustreParams = field(default_factory=LustreParams)
    dsos_daemons: int = 4
    #: Replicated store topology: with either knob above 1 the cluster
    #: rebuilds as ``dsos_shards × dsos_replication`` WAL-mode daemons
    #: (one replica set per shard, job-hash routing, quorum-acked
    #: ingest) and ``dsos_daemons`` no longer applies.  The default
    #: (1, 1) keeps the flat legacy cluster, byte-identical to pre-
    #: replication behavior on every lane — pinned by the store
    #: property suite.
    dsos_shards: int = 1
    dsos_replication: int = 1
    #: Write quorum W (None = majority, R // 2 + 1).
    dsos_write_quorum: int | None = None
    #: Run anti-entropy repair after a crashed daemon restarts (the
    #: ``repro store --no-repair`` drill disables it to demonstrate
    #: under-replication).
    dsos_repair: bool = True
    keep_csv: bool = False  # also attach the CSV store plugin
    #: Install a repro.telemetry TraceCollector: hop traces, latency
    #: histograms and loss reconciliation for the pipeline itself.
    #: Purely observational — results are byte-identical either way.
    #: ``True`` uses the keep-everything default retention policy; pass
    #: a :class:`~repro.telemetry.spans.TelemetryConfig` to set the
    #: span-tree sampling policy (head rate, tail latency threshold).
    telemetry: object = False
    #: Outbox depth of every stream-forward rule (small values force
    #: overflow drops; the default matches production ldmsd).
    forward_queue_depth: int = 65536
    #: Host-side fast lane through the monitoring pipeline (batched
    #: forward delivery + batched DSOS ingest).  Simulated results are
    #: identical either way; False keeps the per-message reference path.
    fast_lane: bool = True
    #: Columnar record-batch lane (requires ``fast_lane``): connector
    #: bursts move as RecordBatches and, when the world is provably
    #: inert (no faults/retry/standby/diagnosis/probe/CSV/samplers),
    #: an express spine virtualizes publish→forward→ingest so engine
    #: events scale with application I/O instead of monitoring
    #: messages.  Simulated results are bit-identical either way.
    columnar: bool = False
    #: A :class:`~repro.faults.FaultPlan` to arm against this world
    #: (None = no injector at all; an *empty* plan arms to nothing and
    #: is bit-identical to None — pinned by the property suite).
    faults: object | None = None
    #: A :class:`~repro.ldms.resilience.RetryPolicy` opting every
    #: forward rule into backoff/resend (None = the paper's best-effort
    #: transport, unchanged).
    retry: object | None = None
    #: Build a hot-standby first-level aggregator on the analysis node;
    #: with ``retry`` set, compute daemons fail over to it when the
    #: head-node L1 dies.
    standby_l1: bool = False
    #: A :class:`~repro.diagnosis.DiagnosisConfig` arming a streaming
    #: :class:`~repro.diagnosis.DiagnosisEngine` against this world
    #: (requires ``telemetry=True``).  Evaluation runs inside simulated
    #: time on *weak* engine ticks — observation-only: a seeded
    #: campaign is byte-identical with diagnosis armed or None.
    diagnosis: object | None = None
    #: A :class:`~repro.fleet.ProbeConfig` arming a proactive
    #: :class:`~repro.fleet.ProbeScanner` against this world.  Sweeps
    #: run on weak ticks and ghost-traverse the spine read-only, so a
    #: seeded campaign is byte-identical with the probe armed or None —
    #: pinned by the fleet property suite.
    probe: object | None = None
    #: Arm the black-box flight recorder
    #: (:class:`~repro.telemetry.flightrec.FlightRecorder`): bounded
    #: per-stream evidence rings plus forensic-bundle freezing on
    #: incident triggers.  ``True`` uses default ring/window settings;
    #: pass a :class:`~repro.telemetry.flightrec.FlightRecorderConfig`
    #: to tune them.  Recording is weak-tick / observer-only, so a
    #: seeded campaign is byte-identical with the recorder armed or
    #: absent on every lane — pinned by the flightrec property suite.
    flightrec: object = False

    @property
    def epoch(self) -> float:
        return EPOCH_BASE + self.campaign_offset_days * _DAY

    @property
    def telemetry_config(self):
        """The resolved :class:`~repro.telemetry.spans.TelemetryConfig`
        (``None`` when telemetry is off; defaults for ``True``)."""
        from repro.telemetry.spans import TelemetryConfig

        if isinstance(self.telemetry, TelemetryConfig):
            return self.telemetry
        return TelemetryConfig() if self.telemetry else None


class World:
    """One wired-up campaign environment."""

    def __init__(self, config: WorldConfig = WorldConfig()):
        self.config = config
        self.env = Environment(initial_time=config.epoch)
        self.rng = RngRegistry(config.seed)
        self.cluster = Cluster(
            self.env, self.rng, ClusterSpec(n_compute_nodes=config.n_compute_nodes)
        )

        # Shared-load processes, one per file system, anchored so the
        # campaign's absolute clock indexes into their timeline.
        self.loads = {}
        for fs_name in ("nfs", "lustre"):
            kwargs = dict(config.load_kwargs)
            if config.quiet:
                kwargs.update(
                    diurnal_amplitude=0.0,
                    noise_sigma=0.0,
                    n_modes=0,
                    incident_rate=0.0,
                )
            self.loads[fs_name] = LoadProcess(
                self.rng.stream(f"{fs_name}.load"),
                origin=EPOCH_BASE,
                **kwargs,
            )

        nfs = NFSFileSystem(
            self.env, self.loads["nfs"], self.rng.stream("nfs.service"),
            config.nfs_params,
        )
        lustre = LustreFileSystem(
            self.env, self.loads["lustre"], self.rng.stream("lustre.service"),
            config.lustre_params,
        )
        self.cluster.attach_filesystem("nfs", nfs)
        self.cluster.attach_filesystem("lustre", lustre)

        # Pipeline self-observability (must exist before daemons start
        # publishing; hooks look the collector up per hop).
        self.telemetry = None
        if config.telemetry:
            from repro.telemetry import install

            self.telemetry = install(self.env)

        # Monitoring and storage pipeline.
        self.fabric = AggregationFabric(
            self.cluster, STREAM_TAG, queue_depth=config.forward_queue_depth,
            fast_lane=config.fast_lane, retry=config.retry,
            standby_l1=config.standby_l1,
        )
        self.dsos = DsosClient(
            DsosCluster(
                "shirley-dsos",
                config.dsos_daemons,
                shards=config.dsos_shards,
                replication=config.dsos_replication,
                write_quorum=config.dsos_write_quorum,
                repair=config.dsos_repair,
            )
        )
        self.store = DsosStreamStore(
            self.fabric.l2, STREAM_TAG, self.dsos, fast=config.fast_lane
        )
        self.csv_store = (
            CsvStreamStore(self.fabric.l2, STREAM_TAG) if config.keep_csv else None
        )
        self.metric_store = None
        self._samplers_running = False
        self._pipeline_samplers_running = False

        #: Connectors attached by the job runner (read by diagnosis for
        #: spill accounting; appended either way, purely host-side).
        self.connectors: list = []

        # Live diagnosis: armed before faults so the engine's windows
        # exist from t=0, but after the full pipeline it observes.
        self.diagnosis = None
        if config.diagnosis is not None:
            from repro.diagnosis import DiagnosisEngine

            self.diagnosis = DiagnosisEngine(self, config.diagnosis)
            self.diagnosis.arm()

        # Fleet probes: armed after diagnosis (sweeps are read-only and
        # order-independent, but keeping arming order fixed keeps event
        # sequence numbers reproducible across configs).
        self.probe_scanner = None
        if config.probe is not None:
            from repro.fleet import ProbeScanner

            self.probe_scanner = ProbeScanner(self, config.probe)
            self.probe_scanner.arm()

        # Chaos: arm the fault plan last, so triggers and timers see the
        # fully built pipeline.
        self.fault_injector = None
        if config.faults is not None:
            from repro.faults import FaultInjector

            self.fault_injector = FaultInjector(self, config.faults)
            self.fault_injector.arm()

        # Black-box flight recorder: armed after the fault injector (so
        # the applied-fault feed exists to observe) and before the
        # columnar spine, whose arming guard must see the recorder's
        # store ingest observer and refuse to virtualize.
        self.flight_recorder = None
        if config.flightrec:
            from repro.telemetry.flightrec import (
                FlightRecorder,
                FlightRecorderConfig,
            )

            fr_config = (
                config.flightrec
                if isinstance(config.flightrec, FlightRecorderConfig)
                else FlightRecorderConfig()
            )
            self.flight_recorder = FlightRecorder(self, fr_config)
            self.flight_recorder.arm()

        # Columnar express spine: built last of all so its arming guard
        # sees the finished world.  try_arm refuses whenever anything
        # could observe the virtualization (and any later guard-breaking
        # mutation de-arms it mid-run), so `spine.armed` is False on
        # every chaos/retry/diagnosis configuration — those worlds run
        # the columnar per-message fallback, bit-identical to fast lane.
        self.spine = None
        if config.columnar:
            if not config.fast_lane:
                raise ValueError(
                    "columnar is a refinement of the fast lane "
                    "(WorldConfig(columnar=True) requires fast_lane=True)"
                )
            from repro.core.batch import ColumnarSpine

            self.spine = ColumnarSpine(self)
            self.spine.try_arm()

    # -- system telemetry (classic LDMS samplers) -----------------------------

    def start_samplers(self, interval_s: float = 5.0) -> None:
        """Start the LDMS system-telemetry path: the head-node daemon
        samples each file system's load factor and the samples land in
        the ``ldms_metrics`` DSOS schema, joinable against I/O events
        by absolute timestamp."""
        if self._samplers_running:
            raise RuntimeError("samplers already running")
        if self.spine is not None:
            self.spine.dearm()
        from repro.dsos.metric_store import MetricStreamStore

        tags = []
        for fs_name, load in self.loads.items():
            sampler = _NamedLoadSampler(load, f"fsload_{fs_name}")
            self.fabric.l1.add_sampler(sampler, interval_s)
            tag = f"metrics/{sampler.name}"
            self.fabric.l1.add_stream_forward(tag, self.fabric.l2)
            tags.append(tag)
        if self.metric_store is None:
            self.metric_store = MetricStreamStore(self.fabric.l2, tags, self.dsos)
        self._samplers_running = True

    def stop_samplers(self) -> None:
        self.fabric.l1.stop()
        self.fabric.l2.stop()
        self._samplers_running = False
        self._pipeline_samplers_running = False

    def query_metrics(self, metric: str):
        """All samples of one metric, in time order."""
        return self.dsos.query("ldms_metrics", "metric_time", prefix=(metric,))

    # -- pipeline self-observability ------------------------------------------

    def start_pipeline_samplers(self, interval_s: float = 5.0) -> None:
        """Publish the aggregators' own delivery ledgers as metric sets.

        Pipeline health rides the same streams → aggregation → DSOS
        fabric it measures: L1's ``metrics/pipestats_*`` sets are
        forwarded to L2 like any other stream, and both land in the
        ``ldms_metrics`` schema.
        """
        if self._pipeline_samplers_running:
            raise RuntimeError("pipeline samplers already running")
        if self.spine is not None:
            self.spine.dearm()
        from repro.dsos.metric_store import MetricStreamStore
        from repro.telemetry.metrics import PipelineStatsSampler

        tags = []
        for daemon in (self.fabric.l1, self.fabric.l2):
            sampler = PipelineStatsSampler(daemon)
            daemon.add_sampler(sampler, interval_s)
            tags.append(f"metrics/{sampler.name}")
        self.fabric.l1.add_stream_forward(tags[0], self.fabric.l2)
        if self.metric_store is None:
            self.metric_store = MetricStreamStore(self.fabric.l2, tags, self.dsos)
        else:
            for tag in tags:
                self.metric_store.add_tag(tag)
        self._pipeline_samplers_running = True

    def pipeline_health_report(self, job_id: int | None = None):
        """The :class:`~repro.telemetry.report.PipelineHealthReport`
        for this world (optionally restricted to one job)."""
        from repro.telemetry import PipelineHealthReport

        return PipelineHealthReport.from_world(self, job_id=job_id)

    def trace_registry(self, annotate_exemplars: bool = True):
        """Span trees retained under this world's sampling policy.

        Derived on demand from the collector's finished traces — a
        read-only reshaping that schedules nothing.  With
        ``annotate_exemplars`` (and the policy's ``exemplars`` flag)
        the end-to-end latency histogram gains per-bucket exemplar
        trace ids pointing into the returned registry.
        """
        if self.telemetry is None:
            raise RuntimeError(
                "telemetry not enabled; build the world with "
                "WorldConfig(telemetry=True) or a TelemetryConfig"
            )
        from repro.telemetry.collector import END_TO_END
        from repro.telemetry.spans import TraceRegistry

        config = self.config.telemetry_config
        registry = TraceRegistry.from_collector(self.telemetry, config)
        if annotate_exemplars and config.exemplars:
            e2e = self.telemetry.histograms.get(END_TO_END)
            if e2e is not None:
                registry.annotate(e2e)
        return registry

    # -- conveniences --------------------------------------------------------

    def filesystem(self, name: str):
        return self.cluster.filesystem(name)

    def drain(self) -> None:
        """Let in-flight stream messages reach the database.

        With samplers running, the event queue never empties, so drain
        a bounded horizon instead.
        """
        if self._samplers_running or self._pipeline_samplers_running:
            self.env.run(until=self.env.now + 2.0)
        else:
            self.env.run()
            if self.spine is not None:
                # Virtual completions may lie beyond the last engine
                # event; land them and move the clock to the instant
                # the event-driven pipeline would have finished at.
                t_end = self.spine.drain_all()
                if t_end > self.env.now:
                    if not self.env.advance_if_idle(t_end):
                        self.env.timeout_at(t_end)
                        self.env.run()

    def query_job(self, job_id: int):
        """All stored events of one job, in (rank, time) order."""
        return self.dsos.query("darshan_data", "job_rank_time", prefix=(job_id,))


class _NamedLoadSampler:
    """A LoadSampler publishing under a per-file-system plugin name."""

    def __init__(self, load, name: str):
        self.load = load
        self.name = name

    def sample(self, now: float) -> dict:
        return {"load_factor": float(self.load.factor(now))}
