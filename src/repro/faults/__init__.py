"""Deterministic fault injection for chaos campaigns.

Describe what breaks in a :class:`~repro.faults.plan.FaultPlan`
(daemon crashes and restarts, link partitions and degradations,
slow-store episodes, flaky transports), hand it to a world via
``WorldConfig(faults=plan)``, and the
:class:`~repro.faults.injector.FaultInjector` schedules it all from
seeded, replayable clockwork.  The self-healing counterparts live with
the components they heal: connector spill/replay in
:mod:`repro.core.connector`, retry/failover in
:mod:`repro.ldms.daemon`, the idempotent ingest journal in
:mod:`repro.dsos.journal`.
"""

from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.plan import (
    DaemonCrash,
    FaultPlan,
    FlakyTransport,
    LinkDegrade,
    LinkPartition,
    SlowStore,
    StoreCrash,
)

__all__ = [
    "AppliedFault",
    "DaemonCrash",
    "FaultInjector",
    "FaultPlan",
    "FlakyTransport",
    "LinkDegrade",
    "LinkPartition",
    "SlowStore",
    "StoreCrash",
]
