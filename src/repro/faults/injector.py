"""The fault injector: a plan, armed against one world.

Arming translates each fault into simulation machinery — timeout-driven
processes for timed faults, a bus subscription for message-count
triggers — and keeps an ``applied`` log of what fired when, which chaos
tests assert against.  An empty plan arms to *nothing*: no processes,
no subscriptions, no RNG stream, so a world with an empty plan is
bit-identical to one with no injector at all (pinned by the property
suite).

All randomness (only flaky-transport error draws) comes from the
world's seeded ``"faults"`` stream; everything else is deterministic
clockwork, so a chaos campaign replays exactly under its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import (
    DaemonCrash,
    FaultPlan,
    FlakyTransport,
    LinkDegrade,
    LinkPartition,
    SlowStore,
    StoreCrash,
)

__all__ = ["AppliedFault", "FaultInjector"]


@dataclass(frozen=True)
class AppliedFault:
    """One log line: something the injector actually did."""

    t: float
    kind: str
    detail: str


class FaultInjector:
    """Schedules a :class:`FaultPlan` against a campaign ``World``."""

    def __init__(self, world, plan: FaultPlan):
        self.world = world
        self.plan = plan
        self.applied: list[AppliedFault] = []
        #: ``cb(applied_fault)`` fired as each log line lands (the
        #: flight recorder's ground-truth feed).  Observers must be
        #: read-only host-side appends — they run inside fault procs.
        self.observers: list = []
        self._rng = None
        self._armed = False

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        """Install every fault.  Idempotence guard: arm once."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        if self.plan.needs_rng:
            self._rng = self.world.rng.stream("faults")
        for fault in self.plan.faults:
            if isinstance(fault, DaemonCrash):
                self._arm_crash(fault)
            elif isinstance(fault, LinkPartition):
                self.world.env.process(self._partition_proc(fault))
            elif isinstance(fault, LinkDegrade):
                self.world.env.process(self._degrade_proc(fault))
            elif isinstance(fault, SlowStore):
                self.world.env.process(self._slow_store_proc(fault))
            elif isinstance(fault, StoreCrash):
                cluster = self.world.dsos.cluster
                if not cluster.sharded:
                    raise ValueError(
                        "plan contains a StoreCrash but the DSOS cluster "
                        "is not replicated (WorldConfig(dsos_replication"
                        "=R) or dsos_shards=S with R or S > 1)"
                    )
                if fault.daemon >= len(cluster.daemons):
                    raise ValueError(
                        f"StoreCrash targets daemon {fault.daemon} but the "
                        f"cluster has {len(cluster.daemons)} daemons"
                    )
                self.world.env.process(self._store_crash_proc(fault))
            elif isinstance(fault, FlakyTransport):
                self.world.env.process(self._flaky_proc(fault))

    def add_observer(self, callback) -> None:
        self.observers.append(callback)

    def _log(self, kind: str, detail: str) -> None:
        fault = AppliedFault(self.world.env.now, kind, detail)
        self.applied.append(fault)
        for callback in self.observers:
            callback(fault)

    def _resolve(self, target: str):
        """Map a plan target to a daemon of the world's fabric."""
        fabric = self.world.fabric
        if target == "l1":
            return fabric.l1
        if target == "l2":
            return fabric.l2
        if target == "l1-standby":
            if fabric.l1_standby is None:
                raise ValueError(
                    "plan targets 'l1-standby' but the world was built "
                    "without one (WorldConfig(standby_l1=True))"
                )
            return fabric.l1_standby
        return fabric.daemon_for(target)

    # -- daemon crashes ------------------------------------------------

    def _arm_crash(self, fault: DaemonCrash) -> None:
        daemon = self._resolve(fault.target)
        if fault.at is not None:
            self.world.env.process(self._crash_at_proc(fault, daemon))
            return
        # Message-count trigger: one extra bus subscriber.  Note this is
        # a behavioural presence — triggered plans are not no-ops even
        # before firing — which is why triggers live in plans, not in
        # default-on machinery.
        from repro.experiments.world import STREAM_TAG

        seen = {"n": 0}

        def trip_wire(message):
            seen["n"] += 1
            if seen["n"] == fault.after_messages:
                self._crash(daemon, fault)

        daemon.streams.subscribe(STREAM_TAG, trip_wire)

    def _crash_at_proc(self, fault: DaemonCrash, daemon):
        yield self.world.env.timeout(fault.at)
        self._crash(daemon, fault)

    def _crash(self, daemon, fault: DaemonCrash) -> None:
        if daemon.failed:
            return
        daemon.fail()
        self._log("daemon_crash", f"{fault.target} ({daemon.node.name})")
        if fault.down_for is not None:
            self.world.env.process(self._recover_proc(daemon, fault))

    def _recover_proc(self, daemon, fault: DaemonCrash):
        yield self.world.env.timeout(fault.down_for)
        daemon.recover()
        self._log("daemon_recover", f"{fault.target} ({daemon.node.name})")

    # -- links ---------------------------------------------------------

    def _partition_proc(self, fault: LinkPartition):
        env = self.world.env
        network = self.world.cluster.network
        yield env.timeout(fault.at)
        network.partition(fault.a, fault.b)
        self._log("link_partition", f"{fault.a} -- {fault.b}")
        yield env.timeout(fault.duration)
        network.heal(fault.a, fault.b)
        self._log("link_heal", f"{fault.a} -- {fault.b}")

    def _degrade_proc(self, fault: LinkDegrade):
        env = self.world.env
        network = self.world.cluster.network
        yield env.timeout(fault.at)
        network.degrade(fault.a, fault.b, fault.factor)
        self._log("link_degrade", f"{fault.a} -- {fault.b} x{fault.factor:g}")
        yield env.timeout(fault.duration)
        network.restore(fault.a, fault.b)
        self._log("link_restore", f"{fault.a} -- {fault.b}")

    # -- store ---------------------------------------------------------

    def _slow_store_proc(self, fault: SlowStore):
        env = self.world.env
        store = self.world.store
        yield env.timeout(fault.at)
        store.begin_slow_episode()
        self._log("slow_store_begin", store.daemon.node.name)
        yield env.timeout(fault.duration)
        store.end_slow_episode()
        self._log("slow_store_end", store.daemon.node.name)

    def _store_crash_proc(self, fault: StoreCrash):
        env = self.world.env
        cluster = self.world.dsos.cluster
        yield env.timeout(fault.at)
        daemon = cluster.daemons[fault.daemon]
        if not daemon.alive:
            return
        cluster.crash_daemon(daemon, tear_tail=fault.tear_tail)
        detail = f"{daemon.name} (shard {daemon.shard_id})"
        if fault.tear_tail:
            detail += " torn-tail"
        self._log("store_crash", detail)
        if fault.down_for is not None:
            yield env.timeout(fault.down_for)
            recovery = cluster.recover_daemon(daemon)
            self._log(
                "store_recover",
                f"{daemon.name} replayed={len(recovery.entries)} "
                f"truncated={recovery.truncated_bytes}B",
            )
            from repro.telemetry.trace import REPAIR_PULLED, WAL_REPLAYED

            self._stamp_store_hops(
                daemon, (r.trace_id for r in recovery.entries), WAL_REPLAYED
            )
            if cluster.repair_enabled:
                pulled = cluster.repair_daemon(daemon)
                self._log(
                    "store_repair", f"{daemon.name} pulled={len(pulled)}"
                )
                self._stamp_store_hops(
                    daemon, (tid for _, tid in pulled), REPAIR_PULLED
                )

    def _stamp_store_hops(self, daemon, trace_ids, outcome: str) -> None:
        """One recovery hop per distinct message a restart re-earned.

        The node field is the *dsosd* name, not the host — two daemons
        on one node must stay two recovery sites.
        """
        from repro.telemetry.collector import collector_for

        collector = collector_for(self.world.env)
        if collector is None:
            return
        from repro.telemetry.trace import STAGE_INGEST

        seen = set()
        for trace_id in trace_ids:
            if trace_id and trace_id not in seen:
                seen.add(trace_id)
                collector.hop(trace_id, STAGE_INGEST, daemon.name, outcome)

    # -- transport -----------------------------------------------------

    def _flaky_proc(self, fault: FlakyTransport):
        env = self.world.env
        daemon = self._resolve(fault.target)
        yield env.timeout(fault.at)
        daemon.set_flaky(fault.error_rate, fault.mode, self._rng)
        self._log(
            "flaky_on",
            f"{fault.target} p={fault.error_rate:g} mode={fault.mode}",
        )
        yield env.timeout(fault.duration)
        daemon.clear_flaky()
        self._log("flaky_off", fault.target)
