"""Declarative fault plans: what breaks, when, for how long.

A :class:`FaultPlan` is a frozen description — pure data, validated at
construction — of every fault one campaign suffers.  The
:class:`~repro.faults.injector.FaultInjector` turns it into scheduled
simulation events; the plan itself touches nothing, so building one is
free and two runs armed with equal plans behave identically.

Time fields are offsets in simulated seconds from the instant the
injector is armed (world construction), not absolute epochs — plans
stay portable across ``campaign_offset_days``.

Every outage a process can end up *waiting out* must be finite: link
partitions and degradations, slow-store episodes and flaky windows all
require a positive ``duration``, or a drained run could hang forever.
Daemon crashes may be permanent (``down_for=None``) — nothing blocks on
a dead daemon; its traffic is dropped, spilled or failed over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DaemonCrash",
    "FaultPlan",
    "FlakyTransport",
    "LinkDegrade",
    "LinkPartition",
    "SlowStore",
    "StoreCrash",
]

#: Daemon targets the injector resolves specially (anything else is
#: treated as a compute-node name).
SPECIAL_TARGETS = ("l1", "l2", "l1-standby")


def _require_positive(name: str, value) -> None:
    if value is None or value <= 0:
        raise ValueError(f"{name} must be a positive duration, got {value!r}")


@dataclass(frozen=True)
class DaemonCrash:
    """Crash a daemon at a time or a message-count trigger.

    Exactly one of ``at`` (seconds after arming) and ``after_messages``
    (crash once the target's bus has seen that many messages on the
    campaign stream tag) must be set.  ``down_for=None`` leaves it dead.
    """

    target: str
    at: float | None = None
    after_messages: int | None = None
    down_for: float | None = None

    def __post_init__(self):
        if (self.at is None) == (self.after_messages is None):
            raise ValueError("set exactly one of at / after_messages")
        if self.at is not None and self.at < 0:
            raise ValueError("at must be >= 0")
        if self.after_messages is not None and self.after_messages < 1:
            raise ValueError("after_messages must be >= 1")
        if self.down_for is not None:
            _require_positive("down_for", self.down_for)


@dataclass(frozen=True)
class LinkPartition:
    """Take the direct ``a``--``b`` link down for ``duration`` seconds."""

    a: str
    b: str
    at: float
    duration: float

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("at must be >= 0")
        _require_positive("duration", self.duration)


@dataclass(frozen=True)
class LinkDegrade:
    """Multiply the ``a``--``b`` link's serialization time by ``factor``."""

    a: str
    b: str
    at: float
    duration: float
    factor: float = 10.0

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("at must be >= 0")
        _require_positive("duration", self.duration)
        if self.factor <= 0:
            raise ValueError("factor must be positive")


@dataclass(frozen=True)
class SlowStore:
    """Stall the DSOS store plugin: arrivals defer until the episode ends."""

    at: float
    duration: float

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("at must be >= 0")
        _require_positive("duration", self.duration)


@dataclass(frozen=True)
class StoreCrash:
    """Crash one ``dsosd`` storage daemon (replicated clusters only).

    ``daemon`` indexes the cluster's daemon list (shard ``i // R``,
    replica ``i % R``).  ``down_for=None`` leaves it dead — its shard
    serves from the surviving replicas; ``down_for=t`` restarts it
    after ``t`` seconds, replaying its WAL and (when the cluster has
    repair enabled) running anti-entropy against its peers.
    ``tear_tail`` makes the crash land mid-append: the WAL loses its
    last record, which recovery must truncate, not trust.
    """

    daemon: int
    at: float
    down_for: float | None = None
    tear_tail: bool = False

    def __post_init__(self):
        if self.daemon < 0:
            raise ValueError("daemon must be a daemon index >= 0")
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.down_for is not None:
            _require_positive("down_for", self.down_for)


@dataclass(frozen=True)
class FlakyTransport:
    """Make a daemon's forward sends error with seeded probability.

    ``mode="lost"`` loses batches outright (retry recovers them, or
    they dead-letter); ``mode="unacked"`` delivers but drops the ack,
    so retries produce the duplicates the ingest journal deduplicates.
    The only randomness in the whole fault system is these error draws,
    taken from the campaign's seeded ``"faults"`` stream.
    """

    target: str
    at: float
    duration: float
    error_rate: float = 0.2
    mode: str = "lost"

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("at must be >= 0")
        _require_positive("duration", self.duration)
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if self.mode not in ("lost", "unacked"):
            raise ValueError("mode must be 'lost' or 'unacked'")


_FAULT_TYPES = (
    DaemonCrash, LinkPartition, LinkDegrade, SlowStore, StoreCrash,
    FlakyTransport,
)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated collection of faults for one campaign."""

    faults: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise TypeError(
                    f"not a fault: {fault!r} (use "
                    f"{', '.join(t.__name__ for t in _FAULT_TYPES)})"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def needs_rng(self) -> bool:
        """True if arming this plan will consume seeded random draws."""
        return any(isinstance(f, FlakyTransport) for f in self.faults)
