"""Fleet health: proactive probe scans and readiness scorecards.

The observability stack's *proactive* layer (ROADMAP open item 5):
instead of waiting for a real job to suffer, :class:`ProbeScanner`
sweeps synthetic probes across every compute node's spine on weak sim
ticks, :func:`scan_cluster` folds the resulting surfaces (probe
latency/loss, diagnosis incidents, the loss ledger, queue backlog,
store stalls) into a reconciling 0–100 :class:`HealthScore`, and
:func:`scan_fleet` rolls a whole fleet of clusters up into the report
behind ``repro fleet`` and the fleet console page.
"""

from repro.fleet.probe import (
    PROBE_METRICS,
    NodeProbeStats,
    ProbeConfig,
    ProbeReport,
    ProbeSample,
    ProbeScanner,
    flag_stragglers,
)
from repro.fleet.scan import (
    ClusterReadiness,
    FleetClusterSpec,
    FleetReport,
    default_fleet,
    scan_cluster,
    scan_fleet,
)
from repro.fleet.scorecard import (
    COMPONENT_WEIGHTS,
    ComponentDeduction,
    HealthScore,
    build_scorecard,
)

__all__ = [
    "COMPONENT_WEIGHTS",
    "ClusterReadiness",
    "ComponentDeduction",
    "FleetClusterSpec",
    "FleetReport",
    "HealthScore",
    "NodeProbeStats",
    "PROBE_METRICS",
    "ProbeConfig",
    "ProbeReport",
    "ProbeSample",
    "ProbeScanner",
    "build_scorecard",
    "default_fleet",
    "flag_stragglers",
    "scan_cluster",
    "scan_fleet",
]
