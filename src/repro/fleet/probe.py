"""Proactive synthetic probe scans (the CHS pattern, in sim time).

A :class:`ProbeScanner` arms against a campaign
:class:`~repro.experiments.world.World` as a periodic *weak* process
(see :meth:`repro.sim.Environment.every`): every ``period_s`` of
simulated time it probes each compute node by walking the full
connector → LDMS → DSOS spine **read-only** — a ghost traversal that
charges a fixed synthetic I/O burst against the spine's own cost model
(publish overhead, per-link propagation + serialization with live
degradation and congestion, forward-outbox backlog, store stall state)
without enqueueing a single event.  Armed ≡ absent therefore stays
byte-identical by construction, on both lanes — pinned by
``tests/property/test_fleet_properties.py``.

Per-node probe latency and loss accumulate into a
:class:`ProbeReport`; stragglers are flagged CHS-style by
*median-fold deviation*: a node whose mean probe latency exceeds
``straggler_fold`` × the fleet median is a straggler
(:func:`flag_stragglers`).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

__all__ = [
    "PROBE_METRICS",
    "NodeProbeStats",
    "ProbeConfig",
    "ProbeReport",
    "ProbeSample",
    "ProbeScanner",
    "flag_stragglers",
]

#: Metrics the probe subsystem emits, as ``(name, unit, description)``
#: — the signal catalog (:mod:`repro.diagnosis.signals`) must list each.
PROBE_METRICS = (
    ("probe_latency_s", "seconds",
     "synthetic probe spine latency for one node (ghost traversal)"),
    ("probe_lost_total", "probes",
     "probes lost to a dead daemon or partitioned link, per node"),
    ("probe_stragglers", "nodes",
     "nodes whose mean probe latency exceeds fold x the fleet median"),
)


@dataclass(frozen=True)
class ProbeConfig:
    """Tuning for one scanner: cadence, burst size, straggler fold."""

    #: Simulated seconds between probe sweeps.
    period_s: float = 0.05
    #: Size of the synthetic I/O burst each probe charges per node.
    payload_bytes: int = 65536
    #: A node is a straggler when its mean latency > fold x median.
    straggler_fold: float = 2.0
    #: Median-fold deviation needs this many probed nodes to speak.
    min_nodes: int = 3
    #: Nominal latency charged when the store is mid slow-episode (the
    #: probe cannot know when the episode ends, only that it is on).
    store_stall_penalty_s: float = 0.1

    def __post_init__(self):
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.straggler_fold <= 1.0:
            raise ValueError("straggler_fold must be > 1.0")
        if self.min_nodes < 2:
            raise ValueError("min_nodes must be >= 2")
        if self.store_stall_penalty_s < 0:
            raise ValueError("store_stall_penalty_s must be >= 0")


@dataclass(frozen=True)
class ProbeSample:
    """One node's probe result at one sweep."""

    t: float
    node: str
    lost: bool
    #: Total spine latency (publish + links + queueing + store), or
    #: 0.0 for a lost probe.
    latency_s: float
    publish_s: float = 0.0
    link_s: float = 0.0
    queue_s: float = 0.0
    store_s: float = 0.0
    #: Why the probe was lost ("" for a delivered probe).
    reason: str = ""


def flag_stragglers(
    mean_latencies: dict[str, float],
    fold: float = 2.0,
    min_nodes: int = 3,
) -> list[str]:
    """Median-fold straggler detection over per-node mean latencies.

    Returns the sorted node names whose latency strictly exceeds
    ``fold`` × the median.  With fewer than ``min_nodes`` entries (or a
    non-positive median) there is no meaningful baseline and nothing is
    flagged.
    """
    if len(mean_latencies) < min_nodes:
        return []
    median = statistics.median(mean_latencies.values())
    if median <= 0:
        return []
    return sorted(
        node for node, lat in mean_latencies.items() if lat > fold * median
    )


class ProbeScanner:
    """Periodic read-only probe sweeps against one world's spine."""

    def __init__(self, world, config: ProbeConfig | None = None):
        self.world = world
        self.config = config or ProbeConfig()
        #: Every sample, in sweep order (sweeps iterate nodes sorted).
        self.samples: list[ProbeSample] = []
        self.sweeps = 0
        self._armed = False

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        """Start the periodic sweep process (weak ticks only)."""
        if self._armed:
            raise RuntimeError("probe scanner already armed")
        self._armed = True
        self.world.env.every(self.config.period_s, self.sweep, weak=True)

    # -- probing -------------------------------------------------------

    def sweep(self) -> list[ProbeSample]:
        """Probe every compute node once; appends and returns samples."""
        now = self.world.env.now
        self.sweeps += 1
        swept = [
            self._probe(now, name)
            for name in sorted(self.world.fabric.compute_daemons)
        ]
        self.samples.extend(swept)
        return swept

    def _probe(self, now: float, node_name: str) -> ProbeSample:
        """Ghost-traverse the spine for one node's synthetic burst.

        Reads the same state the real path charges — daemon liveness,
        link up/degrade state, congestion factor, outbox depths, store
        episode state — and sums the cost a burst of ``payload_bytes``
        would pay *right now*.  Mutates nothing, draws no randomness.
        """
        world = self.world
        fabric = world.fabric
        net = world.cluster.network
        nbytes = self.config.payload_bytes

        daemon = fabric.compute_daemons[node_name]
        if daemon.failed:
            return ProbeSample(
                t=now, node=node_name, lost=True, latency_s=0.0,
                reason=f"sampler ldmsd on {node_name} down",
            )

        # Resolve the L1 hop the forwarders would use: the head-node
        # aggregator, or the hot standby when L1 is dead and one exists.
        l1 = fabric.l1
        if l1.failed:
            if fabric.l1_standby is not None and not fabric.l1_standby.failed:
                l1 = fabric.l1_standby
            else:
                return ProbeSample(
                    t=now, node=node_name, lost=True, latency_s=0.0,
                    reason="L1 aggregator down, no standby",
                )
        if fabric.l2.failed:
            return ProbeSample(
                t=now, node=node_name, lost=True, latency_s=0.0,
                reason="L2 aggregator down",
            )

        # Connector publish: daemon API overhead + loopback serialization.
        publish_s = (
            daemon.publish_overhead_s + nbytes / daemon.loopback_bandwidth_bps
        )

        # Network spine: node -> L1's node -> L2's node, store-and-forward
        # per link with live congestion and degradation, exactly the
        # factors Network.transfer charges.
        congestion = net.congestion_factor()
        link_s = 0.0
        queue_s = 0.0
        for src, dst, hop_daemon in (
            (node_name, l1.node.name, daemon),
            (l1.node.name, fabric.l2.node.name, l1),
        ):
            if src != dst:
                for link in net.links_on_path(src, dst):
                    if not link.up:
                        return ProbeSample(
                            t=now, node=node_name, lost=True, latency_s=0.0,
                            reason=f"link {src} -- {dst} partitioned",
                        )
                    link_s += (
                        link.latency_s + link.transmit_time(nbytes)
                    ) * congestion
            # Outbox backlog at the hop's sender: every queued message
            # serializes ahead of the probe on the hop's first link.
            depth = sum(
                fwd["queue_depth"]
                for fwd in hop_daemon.stats_snapshot()["forwards"]
            )
            if depth and src != dst:
                first = net.links_on_path(src, dst)[0]
                queue_s += depth * first.transmit_time(nbytes) * congestion

        # Terminal store: a slow-store episode defers ingest; charge the
        # nominal stall penalty while one is active.
        store_s = (
            self.config.store_stall_penalty_s if world.store.slow else 0.0
        )

        return ProbeSample(
            t=now, node=node_name, lost=False,
            latency_s=publish_s + link_s + queue_s + store_s,
            publish_s=publish_s, link_s=link_s, queue_s=queue_s,
            store_s=store_s,
        )

    # -- reporting -----------------------------------------------------

    def report(self) -> "ProbeReport":
        return ProbeReport.from_samples(
            self.samples,
            fold=self.config.straggler_fold,
            min_nodes=self.config.min_nodes,
            sweeps=self.sweeps,
        )


@dataclass(frozen=True)
class NodeProbeStats:
    """Aggregated probe results for one node."""

    node: str
    probes: int
    lost: int
    mean_latency_s: float
    worst_latency_s: float
    #: Distinct loss reasons seen, sorted ("" never included).
    reasons: tuple

    @property
    def loss_ratio(self) -> float:
        return self.lost / self.probes if self.probes else 0.0


class ProbeReport:
    """Per-node aggregates + straggler verdicts over one scan."""

    def __init__(self, nodes: list[NodeProbeStats], stragglers: list[str],
                 median_latency_s: float, fold: float, sweeps: int):
        self.nodes = list(nodes)
        self.stragglers = list(stragglers)
        self.median_latency_s = median_latency_s
        self.fold = fold
        self.sweeps = sweeps

    @classmethod
    def from_samples(cls, samples, *, fold: float, min_nodes: int,
                     sweeps: int) -> "ProbeReport":
        by_node: dict[str, list[ProbeSample]] = {}
        for s in samples:
            by_node.setdefault(s.node, []).append(s)
        nodes = []
        means: dict[str, float] = {}
        for name in sorted(by_node):
            node_samples = by_node[name]
            ok = [s.latency_s for s in node_samples if not s.lost]
            lost = sum(1 for s in node_samples if s.lost)
            mean = sum(ok) / len(ok) if ok else 0.0
            if ok:
                means[name] = mean
            nodes.append(NodeProbeStats(
                node=name,
                probes=len(node_samples),
                lost=lost,
                mean_latency_s=mean,
                worst_latency_s=max(ok, default=0.0),
                reasons=tuple(sorted(
                    {s.reason for s in node_samples if s.reason}
                )),
            ))
        median = statistics.median(means.values()) if means else 0.0
        stragglers = flag_stragglers(means, fold=fold, min_nodes=min_nodes)
        return cls(nodes, stragglers, median, fold, sweeps)

    @property
    def lost_nodes(self) -> list[str]:
        """Nodes that lost at least one probe, sorted."""
        return [n.node for n in self.nodes if n.lost]

    def to_dict(self) -> dict:
        return {
            "sweeps": self.sweeps,
            "median_latency_s": self.median_latency_s,
            "straggler_fold": self.fold,
            "stragglers": list(self.stragglers),
            "nodes": [
                {
                    "node": n.node,
                    "probes": n.probes,
                    "lost": n.lost,
                    "mean_latency_s": n.mean_latency_s,
                    "worst_latency_s": n.worst_latency_s,
                    "reasons": list(n.reasons),
                    "straggler": n.node in self.stragglers,
                }
                for n in self.nodes
            ],
        }

    def to_rows(self) -> list[dict]:
        """Console-table rows (strings formatted for display)."""
        return [
            {
                "node": n.node,
                "probes": n.probes,
                "lost": n.lost,
                "mean_ms": f"{n.mean_latency_s * 1e3:.3f}",
                "worst_ms": f"{n.worst_latency_s * 1e3:.3f}",
                "verdict": (
                    "LOST" if n.lost else
                    "STRAGGLER" if n.node in self.stragglers else "ok"
                ),
                "detail": "; ".join(n.reasons),
            }
            for n in self.nodes
        ]
