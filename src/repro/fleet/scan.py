"""Fleet scans: run the proactive probe campaign on every cluster.

A :class:`FleetClusterSpec` is a reproducible recipe for one cluster's
scan world (seed, size, fault plan, resilience options).
:func:`scan_cluster` builds that world with telemetry + diagnosis + the
probe scanner armed, drives a short deterministic I/O campaign through
it (the probe traffic itself is weak-event / read-only, so the campaign
is byte-identical to an unscanned run), and folds the resulting
surfaces into one :class:`~repro.fleet.scorecard.HealthScore`.
:func:`scan_fleet` maps that over a fleet and returns a
:class:`FleetReport` whose ``to_dict()`` is the byte-stable payload
behind ``repro fleet --json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.probe import ProbeConfig
from repro.fleet.scorecard import HealthScore, build_scorecard

__all__ = [
    "ClusterReadiness",
    "FleetClusterSpec",
    "FleetReport",
    "default_fleet",
    "scan_cluster",
    "scan_fleet",
]

#: Scan cadence: diagnosis + probes tick fast enough to see sub-second
#: fault windows inside the short scan campaign.
_SCAN_EVAL_PERIOD_S = 0.05


@dataclass(frozen=True)
class FleetClusterSpec:
    """One cluster's reproducible scan recipe."""

    name: str
    seed: int = 42
    n_compute_nodes: int = 4
    #: A :class:`~repro.faults.FaultPlan` for chaos-lane scans.
    faults: object | None = None
    #: Resilience options mirrored from :class:`WorldConfig`.
    retry: object | None = None
    standby_l1: bool = False
    #: Connector-side spill buffering for the scan campaign.
    spill: bool = False
    #: DSOS store topology (1/1 = the legacy flat store; anything else
    #: scans a replicated sharded cluster with quorum ingest).
    dsos_shards: int = 1
    dsos_replication: int = 1
    dsos_write_quorum: int | None = None
    dsos_repair: bool = True

    def world_config(self, *, fast_lane: bool = True):
        """The :class:`~repro.experiments.world.WorldConfig` this spec
        scans under (telemetry + diagnosis + probes all armed)."""
        from repro.diagnosis import DiagnosisConfig
        from repro.experiments.world import WorldConfig

        return WorldConfig(
            seed=self.seed,
            quiet=True,
            n_compute_nodes=self.n_compute_nodes,
            telemetry=True,
            fast_lane=fast_lane,
            faults=self.faults,
            retry=self.retry,
            standby_l1=self.standby_l1,
            dsos_shards=self.dsos_shards,
            dsos_replication=self.dsos_replication,
            dsos_write_quorum=self.dsos_write_quorum,
            dsos_repair=self.dsos_repair,
            diagnosis=DiagnosisConfig(
                eval_period_s=_SCAN_EVAL_PERIOD_S,
                window_s=0.25,
                for_duration_s=0.1,
                latency_slo_s=0.25,
                slo_min_count=8,
            ),
            probe=ProbeConfig(period_s=_SCAN_EVAL_PERIOD_S),
            flightrec=True,
        )


@dataclass(frozen=True)
class ClusterReadiness:
    """One scanned cluster: its scorecard and the surfaces behind it."""

    spec: FleetClusterSpec
    score: HealthScore
    probe_report: object
    incidents: object
    health: object
    runtime_s: float
    #: End-of-scan values of every diagnosis sampled series (name →
    #: last sampled value) — what the OpenMetrics exporter exposes.
    gauges: dict
    #: ``DsosCluster.stats_snapshot()`` at scan end — per-(shard,
    #: daemon) store counters (empty dict on a legacy flat store so
    #: non-replicated payloads stay unchanged).
    store: dict = field(default_factory=dict)
    #: ``FlightRecorder.stats()`` at scan end — per-stream ring
    #: ledgers and bundle counters (empty dict when the recorder is
    #: not armed so legacy payloads stay unchanged).
    recorder: dict = field(default_factory=dict)
    #: Post-hoc bottleneck explanation of the scan job (verdict rows +
    #: the four ``explain_*`` gauges) — empty dict when the scan world
    #: has no diagnosis engine so legacy payloads stay unchanged.
    explain: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    def to_dict(self) -> dict:
        out = {
            "cluster": self.spec.name,
            "seed": self.spec.seed,
            "n_compute_nodes": self.spec.n_compute_nodes,
            "chaos": self.spec.faults is not None,
            "runtime_s": self.runtime_s,
            "scorecard": self.score.to_dict(),
            "probe": self.probe_report.to_dict(),
            "incidents": len(self.incidents),
            "gauges": dict(sorted(self.gauges.items())),
            "health": self.health.to_dict(),
        }
        if self.store:
            out["store"] = self.store
        if self.recorder:
            out["recorder"] = self.recorder
        if self.explain:
            out["explain"] = self.explain
        return out


class FleetReport:
    """The fleet-wide roll-up behind the console and ``repro fleet``."""

    def __init__(self, clusters: list[ClusterReadiness], fast_lane: bool):
        self.clusters = list(clusters)
        self.fast_lane = fast_lane

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    @property
    def all_ready(self) -> bool:
        return all(c.score.ready for c in self.clusters)

    @property
    def all_reconcile(self) -> bool:
        return all(c.score.reconciles() for c in self.clusters)

    def worst(self) -> ClusterReadiness:
        return min(self.clusters, key=lambda c: (c.score.score, c.name))

    def to_dict(self) -> dict:
        return {
            "fast_lane": self.fast_lane,
            "clusters": [c.to_dict() for c in self.clusters],
            "fleet_ready": self.all_ready,
            "worst_cluster": self.worst().name if self.clusters else None,
        }


def default_fleet() -> tuple:
    """The three-cluster demo fleet: two clean, one deliberately sick.

    ``attaway`` runs the scan under an injected L1 crash plus a
    slow-store episode with *no* retry/standby/spill, so probes are
    lost, alerts fire and the ledger records drops — its scorecard must
    come out below the ready line while the clean clusters stay at or
    near 100 (pinned by ``tests/fleet/test_scan.py``).
    """
    from repro.faults import DaemonCrash, FaultPlan, SlowStore

    return (
        FleetClusterSpec(name="voltrino", seed=42),
        FleetClusterSpec(name="chama", seed=7, n_compute_nodes=6),
        FleetClusterSpec(
            name="attaway", seed=13,
            faults=FaultPlan((
                DaemonCrash("l1", at=0.15, down_for=0.5),
                SlowStore(at=0.1, duration=0.4),
            )),
        ),
    )


def scan_cluster(spec: FleetClusterSpec, *,
                 fast_lane: bool = True) -> ClusterReadiness:
    """Scan one cluster: probe campaign → surfaces → scorecard."""
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments.runner import run_job
    from repro.experiments.world import World

    world = World(spec.world_config(fast_lane=fast_lane))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=8,
        block_size=2**20, collective=False, sync_per_iteration=False,
    )
    # No inter-job gap: the campaign starts at t=0 so chaos-lane fault
    # windows (sub-second offsets) land inside the I/O burst.
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(spill=spec.spill,
                                         fast_lane=fast_lane),
        inter_job_gap_s=0.0,
    )

    from repro.diagnosis.engine import SAMPLED_SERIES

    if world.flight_recorder:
        world.flight_recorder.flush()
    probe_report = world.probe_scanner.report()
    incidents = world.diagnosis.incidents
    health = world.pipeline_health_report()
    gauges = {
        name: world.diagnosis.series(name).latest
        for name, _, _ in SAMPLED_SERIES
    }
    from repro.diagnosis.explain import explain_gauges, explain_job

    explain_report = explain_job(world, result.job_id)
    if world.flight_recorder:
        world.flight_recorder.record_verdicts(explain_report)
    explain = {
        "job_id": explain_report.job_id,
        "primary": explain_report.primary.cls,
        "healthy": explain_report.healthy,
        "verdicts": [
            {"class": v.cls, "score": v.score, "strategy": v.strategy}
            for v in explain_report.verdicts
        ],
        "gauges": explain_gauges(explain_report),
    }

    dsos_cluster = world.dsos.cluster
    score = build_scorecard(
        spec.name,
        probe_report=probe_report,
        incidents=incidents,
        health=health,
        snapshots=world.fabric.health_snapshots(),
        slow_pending=world.store.slow_pending,
        store_census=dsos_cluster.census() if dsos_cluster.sharded else None,
    )
    return ClusterReadiness(
        spec=spec,
        score=score,
        probe_report=probe_report,
        incidents=incidents,
        health=health,
        runtime_s=result.runtime_s,
        gauges=gauges,
        store=dsos_cluster.stats_snapshot() if dsos_cluster.sharded else {},
        recorder=(world.flight_recorder.stats()
                  if world.flight_recorder else {}),
        explain=explain,
    )


def scan_fleet(specs=None, *, fast_lane: bool = True) -> FleetReport:
    """Scan every cluster of ``specs`` (default: :func:`default_fleet`)."""
    if specs is None:
        specs = default_fleet()
    return FleetReport(
        [scan_cluster(spec, fast_lane=fast_lane) for spec in specs],
        fast_lane=fast_lane,
    )
