"""Readiness scorecards: one 0–100 HealthScore per cluster, reconciled.

A :class:`HealthScore` is component-weighted: each component (probe
results, alert incidents, the loss ledger, forwarder backlog, store
stalls) contributes an **integer** deduction capped at its weight, and
the weights sum to 100 — so the breakdown reconciles *exactly*:

    Σ component deductions == 100 − score

pinned by ``tests/fleet/test_scorecard.py`` under clean runs and under
the chaos harness.  Integer points make the reconciliation arithmetic
exact by construction; the per-component ``raw`` field keeps the
unclamped input magnitude for operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "COMPONENT_WEIGHTS",
    "ComponentDeduction",
    "HealthScore",
    "build_scorecard",
]

#: Component → maximum deduction; the weights sum to exactly 100, so a
#: cluster failing every component scores 0 and a clean one scores 100.
COMPONENT_WEIGHTS = {
    "probes": 30,   # lost probes and stragglers (proactive scan)
    "alerts": 25,   # diagnosis incidents (excluding store_stall)
    "ledger": 25,   # dropped / dead-lettered / spill-parked messages
    "backlog": 10,  # forward outboxes still holding messages
    "store": 10,    # store stalls + replication debt (census)
}
assert sum(COMPONENT_WEIGHTS.values()) == 100

#: Points per incident by severity (alerts component).
_SEVERITY_POINTS = {"critical": 10, "warning": 5, "info": 2}


@dataclass(frozen=True)
class ComponentDeduction:
    """One component's line of the scorecard breakdown."""

    component: str
    weight: int
    #: Unclamped input magnitude (points before the weight cap).
    raw: int
    #: Final deduction: ``min(raw, weight)`` — what the score loses.
    deduction: int
    detail: str

    def __post_init__(self):
        if not 0 <= self.deduction <= self.weight:
            raise ValueError(
                f"deduction {self.deduction} outside [0, {self.weight}]"
            )


@dataclass(frozen=True)
class HealthScore:
    """One cluster's readiness verdict with its reconciling breakdown."""

    cluster: str
    score: int
    deductions: tuple

    #: Scores at or above this are "ready for work".
    READY_THRESHOLD = 75

    def reconciles(self) -> bool:
        """The scorecard invariant: Σ deductions == 100 − score."""
        return (
            0 <= self.score <= 100
            and sum(d.deduction for d in self.deductions) == 100 - self.score
            and all(0 <= d.deduction <= d.weight for d in self.deductions)
        )

    @property
    def grade(self) -> str:
        if self.score >= 90:
            return "A"
        if self.score >= 75:
            return "B"
        if self.score >= 50:
            return "C"
        if self.score >= 25:
            return "D"
        return "F"

    @property
    def ready(self) -> bool:
        return self.score >= self.READY_THRESHOLD

    def component(self, name: str) -> ComponentDeduction:
        for d in self.deductions:
            if d.component == name:
                return d
        raise KeyError(f"no scorecard component {name!r}")

    def to_dict(self) -> dict:
        return {
            "cluster": self.cluster,
            "score": self.score,
            "grade": self.grade,
            "ready": self.ready,
            "reconciles": self.reconciles(),
            "deductions": [
                {
                    "component": d.component,
                    "weight": d.weight,
                    "raw": d.raw,
                    "deduction": d.deduction,
                    "detail": d.detail,
                }
                for d in self.deductions
            ],
        }

    def to_rows(self) -> list[dict]:
        """Console-table rows for the breakdown."""
        return [
            {
                "component": d.component,
                "deduction": f"-{d.deduction}",
                "cap": d.weight,
                "detail": d.detail,
            }
            for d in self.deductions
        ]


def build_scorecard(cluster: str, *, probe_report, incidents, health,
                    snapshots, slow_pending: int = 0,
                    store_census=None) -> HealthScore:
    """Fold one scanned cluster's surfaces into a :class:`HealthScore`.

    Parameters
    ----------
    probe_report:
        A :class:`~repro.fleet.probe.ProbeReport` (or ``None`` when no
        scanner was armed — the probes component then deducts nothing).
    incidents:
        The diagnosis :class:`~repro.diagnosis.alerts.IncidentLog`.
    health:
        The campaign :class:`~repro.telemetry.report.PipelineHealthReport`.
    snapshots:
        ``fabric.health_snapshots()`` at scan end (backlog component).
    slow_pending:
        Messages still deferred by a slow-store episode at scan end.
    store_census:
        A :class:`~repro.dsos.cluster.StoreCensus` for replicated
        clusters (``None`` on a legacy flat store — the store component
        then bills only stalls and deferrals).
    """
    deductions = []

    # -- probes: lost nodes weigh heavier than stragglers --------------
    if probe_report is not None:
        lost_nodes = probe_report.lost_nodes
        stragglers = probe_report.stragglers
        raw = 10 * len(lost_nodes) + 5 * len(stragglers)
        detail = (
            f"{len(lost_nodes)} node(s) lost probes, "
            f"{len(stragglers)} straggler(s) over {probe_report.sweeps} sweeps"
        )
    else:
        raw, detail = 0, "no probe scanner armed"
    deductions.append(_capped("probes", raw, detail))

    # -- alerts: every incident that fired, store stalls excluded ------
    # (store_stall has its own component; counting it here too would
    # double-bill one fault class.)
    counted = [a for a in incidents if a.rule != "store_stall"]
    raw = sum(_SEVERITY_POINTS.get(a.severity, 2) for a in counted)
    worst = sorted({a.rule for a in counted})
    deductions.append(_capped(
        "alerts", raw,
        f"{len(counted)} incident(s)"
        + (f": {', '.join(worst)}" if worst else ""),
    ))

    # -- ledger: loss percentage plus anything parked or dead ----------
    published = health.published
    lost = health.dropped + health.in_flight_spill
    raw = math.ceil(100.0 * lost / published) if published else 0
    if not health.verify():
        # A ledger that does not even close is a full-weight failure.
        raw = COMPONENT_WEIGHTS["ledger"]
        detail = "loss ledger does not reconcile"
    else:
        detail = (
            f"{health.dropped} dropped + {health.in_flight_spill} spill-parked "
            f"of {published} published"
        )
    deductions.append(_capped("ledger", raw, detail))

    # -- backlog: forward outboxes still holding messages at scan end --
    depth = sum(
        fwd["queue_depth"] for snap in snapshots for fwd in snap["forwards"]
    )
    deductions.append(_capped(
        "backlog", depth, f"Σ forward outbox depth {depth}"
    ))

    # -- store: stalls, deferrals, and replication debt ----------------
    stalls = sum(1 for a in incidents if a.rule == "store_stall")
    raw = 5 * stalls + slow_pending
    detail = f"{stalls} store_stall incident(s), {slow_pending} deferred"
    if store_census is not None:
        # Degraded shards bill per shard; any *lost* object is a
        # full-weight failure — a store that cannot produce an object
        # it acked is not "slightly unhealthy".
        raw += (3 * store_census.under_replicated
                + 2 * len(store_census.degraded_shards))
        if store_census.lost:
            raw = max(raw, COMPONENT_WEIGHTS["store"])
        detail += (
            f"; census: {store_census.lost} lost, "
            f"{store_census.under_replicated} under-replicated, "
            f"{len(store_census.degraded_shards)} degraded shard(s)"
        )
    deductions.append(_capped("store", raw, detail))

    total = sum(d.deduction for d in deductions)
    return HealthScore(
        cluster=cluster, score=100 - total, deductions=tuple(deductions)
    )


def _capped(component: str, raw: int, detail: str) -> ComponentDeduction:
    weight = COMPONENT_WEIGHTS[component]
    return ComponentDeduction(
        component=component, weight=weight, raw=int(raw),
        deduction=min(int(raw), weight), detail=detail,
    )
