"""Simulated parallel file systems.

The paper's experiments run every application against two file systems
with very different performance characters — NFS (single-server, high
latency, modest shared bandwidth) and Lustre (metadata server plus
striped object storage targets, high parallel bandwidth).  I/O
performance *variability* caused by shared usage is the paper's central
motivation, so both models are driven by a :class:`LoadProcess`, a
deterministic-but-noisy multiplicative slowdown factor over time with a
diurnal component and heavy-tailed congestion incidents.

Layering:

* :mod:`repro.fs.base` — files, handles, the abstract queueing model;
* :mod:`repro.fs.nfs` / :mod:`repro.fs.lustre` — the two concrete models;
* :mod:`repro.fs.posix` — the POSIX syscall veneer that applications
  call and Darshan instruments.
"""

from repro.fs.base import (
    File,
    FileHandle,
    FileSystem,
    FileSystemError,
    OpRecord,
)
from repro.fs.lustre import LustreFileSystem, LustreParams
from repro.fs.nfs import NFSFileSystem, NFSParams
from repro.fs.posix import PosixClient
from repro.fs.variability import LoadProcess

__all__ = [
    "File",
    "FileHandle",
    "FileSystem",
    "FileSystemError",
    "LoadProcess",
    "LustreFileSystem",
    "LustreParams",
    "NFSFileSystem",
    "NFSParams",
    "OpRecord",
    "PosixClient",
]
