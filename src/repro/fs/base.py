"""File, handle and the abstract file-system queueing model.

A :class:`FileSystem` tracks a namespace of :class:`File` objects (we
simulate sizes and access accounting, not byte contents) and exposes
generator-based operations — ``open``/``read``/``write``/``close``/
``fsync``/``stat``/``unlink`` — that charge simulated time through
subclass-specific service models.  Every completed operation returns an
:class:`OpRecord` carrying the exact fields Darshan's DXT traces record
(start, end, offset, length), which is what the connector later
timestamps and publishes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.fs.variability import LoadProcess
from repro.sim import Environment

__all__ = ["File", "FileHandle", "FileSystem", "FileSystemError", "OpRecord"]


class FileSystemError(RuntimeError):
    """Simulated I/O error (missing file, bad handle, ...)."""


@dataclass(frozen=True)
class OpRecord:
    """Timing/extent record of one completed I/O operation.

    Mirrors a Darshan DXT segment: absolute start/end times, byte offset
    and length.  ``op`` is one of ``open/read/write/close/fsync/stat``.
    """

    op: str
    path: str
    offset: int
    nbytes: int
    start: float
    end: float
    #: Set by the MPI-IO layer on two-phase collective operations.
    collective: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class File:
    """Namespace entry.  ``size`` is the highest byte ever written + 1."""

    path: str
    size: int = 0
    create_time: float = 0.0
    #: Aggregate access counters (reads/writes/bytes), for fs-level stats.
    counters: dict = field(
        default_factory=lambda: {
            "opens": 0,
            "closes": 0,
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
        }
    )


class FileHandle:
    """An open file descriptor bound to a node."""

    _fd_counter = itertools.count(3)  # 0-2 are stdio, as tradition demands

    def __init__(self, file: File, node_name: str, flags: str):
        self.fd = next(FileHandle._fd_counter)
        self.file = file
        self.node_name = node_name
        self.flags = flags
        self.position = 0
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FileHandle(fd={self.fd}, path={self.file.path!r})"


class FileSystem:
    """Abstract queueing file system.

    Subclasses implement two hooks:

    * ``_meta_op(op, node_name)`` — generator charging the time of a
      metadata operation (open/close/stat/unlink/fsync-commit);
    * ``_data_op(op, file, offset, nbytes, node_name)`` — generator
      charging the time of a data transfer.

    Both receive the current load factor implicitly via ``self.load``.
    """

    #: Subclass-set human name ("nfs", "lustre").
    name: str = "abstract"

    def __init__(self, env: Environment, load: LoadProcess):
        self.env = env
        self.load = load
        self.files: dict[str, File] = {}
        #: Running totals across all files (conservation-checked in tests).
        self.totals = {"bytes_read": 0, "bytes_written": 0, "ops": 0}

    # -- namespace -------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self.files

    def _lookup(self, path: str, create: bool) -> File:
        f = self.files.get(path)
        if f is None:
            if not create:
                raise FileSystemError(f"[{self.name}] no such file: {path}")
            f = File(path=path, create_time=self.env.now)
            self.files[path] = f
        return f

    # -- operations (generator API) ---------------------------------------

    def open(self, path: str, node_name: str, flags: str = "r"):
        """Open ``path``; creates it when flags contain ``w`` or ``a``."""
        create = any(c in flags for c in "wa")
        start = self.env.now
        file = self._lookup(path, create=create)
        if "w" in flags:
            file.size = 0  # truncate
        yield from self._meta_op("open", node_name)
        file.counters["opens"] += 1
        self.totals["ops"] += 1
        handle = FileHandle(file, node_name, flags)
        record = OpRecord("open", path, 0, 0, start, self.env.now)
        return handle, record

    def close(self, handle: FileHandle):
        self._check(handle)
        start = self.env.now
        yield from self._meta_op("close", handle.node_name)
        handle.closed = True
        handle.file.counters["closes"] += 1
        self.totals["ops"] += 1
        return OpRecord("close", handle.file.path, 0, 0, start, self.env.now)

    def read(self, handle: FileHandle, nbytes: int, offset: int | None = None):
        """Read ``nbytes`` at ``offset`` (or the handle position)."""
        self._check(handle)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        start = self.env.now
        pos = handle.position if offset is None else offset
        # Reads past EOF are truncated, like the syscall.
        avail = max(handle.file.size - pos, 0)
        actual = min(nbytes, avail)
        if actual:
            yield from self._data_op("read", handle.file, pos, actual, handle.node_name)
        else:
            yield from self._meta_op("stat", handle.node_name)
        handle.position = pos + actual
        handle.file.counters["reads"] += 1
        handle.file.counters["bytes_read"] += actual
        self.totals["bytes_read"] += actual
        self.totals["ops"] += 1
        return OpRecord("read", handle.file.path, pos, actual, start, self.env.now)

    def write(self, handle: FileHandle, nbytes: int, offset: int | None = None):
        """Write ``nbytes`` at ``offset`` (or the handle position)."""
        self._check(handle)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        start = self.env.now
        pos = handle.position if offset is None else offset
        if nbytes:
            yield from self._data_op("write", handle.file, pos, nbytes, handle.node_name)
        handle.position = pos + nbytes
        handle.file.size = max(handle.file.size, pos + nbytes)
        handle.file.counters["writes"] += 1
        handle.file.counters["bytes_written"] += nbytes
        self.totals["bytes_written"] += nbytes
        self.totals["ops"] += 1
        return OpRecord("write", handle.file.path, pos, nbytes, start, self.env.now)

    def fsync(self, handle: FileHandle):
        self._check(handle)
        start = self.env.now
        yield from self._meta_op("fsync", handle.node_name)
        self.totals["ops"] += 1
        return OpRecord("fsync", handle.file.path, 0, 0, start, self.env.now)

    def stat(self, path: str, node_name: str):
        start = self.env.now
        file = self._lookup(path, create=False)
        yield from self._meta_op("stat", node_name)
        self.totals["ops"] += 1
        return file.size, OpRecord("stat", path, 0, 0, start, self.env.now)

    def unlink(self, path: str, node_name: str):
        start = self.env.now
        self._lookup(path, create=False)
        yield from self._meta_op("unlink", node_name)
        del self.files[path]
        self.totals["ops"] += 1
        return OpRecord("unlink", path, 0, 0, start, self.env.now)

    # -- subclass hooks ----------------------------------------------------

    def _meta_op(self, op: str, node_name: str):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator

    def _data_op(
        self, op: str, file: File, offset: int, nbytes: int, node_name: str
    ):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # noqa: unreachable

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _check(handle: FileHandle) -> None:
        if handle.closed:
            raise FileSystemError(f"operation on closed handle {handle!r}")
