"""Lustre model: metadata server plus striped object storage targets.

Metadata ops (open/close/stat) serialize on the MDS; data extents are
split along stripe boundaries, the chunks land on their OSTs
round-robin, and chunks on *different* OSTs proceed in parallel.  That
gives Lustre its signature behaviours, both visible in the paper's
tables: far higher aggregate bandwidth than NFS, and a strong preference
for aligned, collective access (two-phase collective I/O aligns with
stripes and wins; unaligned independent access from hundreds of ranks
makes OSTs seek-thrash, modelled as an unaligned-access surcharge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fs.base import File, FileSystem
from repro.fs.variability import LoadProcess
from repro.sim import Distributions, Environment, Resource

__all__ = ["LustreFileSystem", "LustreParams"]


@dataclass(frozen=True)
class LustreParams:
    """Tunable service model of the Lustre deployment."""

    n_osts: int = 8
    stripe_size_bytes: int = 1 * 2**20
    stripe_count: int = 4
    mds_threads: int = 4
    mds_latency_s: float = 0.5e-3
    ost_latency_s: float = 0.35e-3
    ost_bandwidth_bps: float = 150e6
    cv: float = 0.3
    #: Per-chunk surcharge when the access is not stripe-aligned
    #: (read-modify-write & extra seeks on the OST).
    unaligned_penalty: float = 1.8
    #: Head-seek time charged when an OST's next chunk is not contiguous
    #: with its previous one.  This is what makes many independent
    #: writers slower than a few aggregators streaming long runs — the
    #: collective-I/O advantage of Table IIa.
    seek_s: float = 8.0e-3

    def __post_init__(self) -> None:
        if self.n_osts < 1:
            raise ValueError("need at least one OST")
        if not 1 <= self.stripe_count <= self.n_osts:
            raise ValueError("stripe_count must be in [1, n_osts]")
        if self.stripe_size_bytes < 2**16:
            raise ValueError("stripe size unreasonably small")


class LustreFileSystem(FileSystem):
    """MDS + OST queueing model with round-robin striping."""

    name = "lustre"

    def __init__(
        self,
        env: Environment,
        load: LoadProcess,
        rng: np.random.Generator,
        params: LustreParams = LustreParams(),
    ):
        super().__init__(env, load)
        self.params = params
        self.rng = rng
        self._mds = Resource(env, capacity=params.mds_threads)
        self._osts = [Resource(env, capacity=1) for _ in range(params.n_osts)]
        # Stripe-offset assignment per file (round-robin across files,
        # like the MDS's OST allocator).
        self._next_stripe_offset = 0
        self._file_stripe_offset: dict[str, int] = {}
        # Last end-offset served per (OST, path), for the seek model:
        # non-contiguous access *within a file's placement on an OST*
        # costs a seek; streaming through a file does not.
        self._ost_last_pos: dict[tuple[int, str], int] = {}

    # -- striping ------------------------------------------------------------

    def stripe_offset(self, path: str) -> int:
        """First OST index assigned to ``path`` (stable per file)."""
        off = self._file_stripe_offset.get(path)
        if off is None:
            off = self._next_stripe_offset
            self._file_stripe_offset[path] = off
            self._next_stripe_offset = (off + self.params.stripe_count) % self.params.n_osts
        return off

    def chunks_for_extent(self, path: str, offset: int, nbytes: int):
        """Split ``[offset, offset+nbytes)`` into
        (ost_index, chunk_offset, chunk_bytes, aligned) tuples.

        Chunk boundaries are stripe boundaries; the OST for stripe ``k``
        of a file with stripe offset ``o`` and stripe count ``c`` is
        ``(o + k mod c) mod n_osts``.
        """
        p = self.params
        first_ost = self.stripe_offset(path)
        out = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            stripe_index = pos // p.stripe_size_bytes
            within = pos % p.stripe_size_bytes
            chunk = min(remaining, p.stripe_size_bytes - within)
            ost = (first_ost + stripe_index % p.stripe_count) % p.n_osts
            aligned = within == 0 and (
                chunk == p.stripe_size_bytes or remaining == chunk
            )
            out.append((ost, pos, chunk, aligned))
            pos += chunk
            remaining -= chunk
        return out

    # -- service model ---------------------------------------------------------

    def _jitter(self, mean: float) -> float:
        return Distributions.lognormal(self.rng, mean, self.params.cv)

    def _meta_op(self, op: str, node_name: str):
        slow = self.load.factor(self.env.now)
        service = self._jitter(self.params.mds_latency_s) * slow
        yield from self._mds.use(service)

    def _data_op(self, op: str, file: File, offset: int, nbytes: int, node_name: str):
        p = self.params
        slow = self.load.factor(self.env.now)
        chunks = self.chunks_for_extent(file.path, offset, nbytes)
        # Chunks on distinct OSTs proceed in parallel; we spawn one child
        # process per chunk and join.
        children = []
        for ost_index, chunk_offset, chunk, aligned in chunks:
            service = self._jitter(p.ost_latency_s + chunk / p.ost_bandwidth_bps)
            if not aligned:
                service *= p.unaligned_penalty
            # Seek model: compare positions in the OST's *object* space
            # (each OST stores its stripes of a file contiguously), so
            # streaming a striped file round-robin is seek-free while
            # scattered offsets pay.
            stripe_index = chunk_offset // p.stripe_size_bytes
            obj_offset = (
                (stripe_index // p.stripe_count) * p.stripe_size_bytes
                + chunk_offset % p.stripe_size_bytes
            )
            key = (ost_index, file.path)
            last = self._ost_last_pos.get(key)
            if last is not None and last != obj_offset:
                service += p.seek_s
            self._ost_last_pos[key] = obj_offset + chunk
            service *= slow
            children.append(
                self.env.process(self._osts[ost_index].use(service))
            )
        if children:
            yield self.env.all_of(children)

    # -- introspection -----------------------------------------------------------

    def ost_queue_lengths(self) -> list[int]:
        """Current wait-queue depth per OST."""
        return [ost.queue_length for ost in self._osts]
