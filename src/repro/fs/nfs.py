"""NFS model: one server, shared threads, shared bandwidth.

The character that matters for the paper's tables: *every* client on
*every* node funnels through a single server, so per-client throughput
collapses as concurrency rises, and per-op latencies are high (each op
is an RPC), with fsync paying a full server-side COMMIT.  Collective
MPI-IO on NFS is notoriously poor — without exposed striping, ROMIO
falls back to data sieving, doubling the bytes through the server —
which is why the paper's MPI-IO-TEST runs *slower* collectively on NFS
(1376 s) than independently (880 s) while Lustre shows the opposite.
(The sieving itself is modelled in the MPI-IO layer.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.base import File, FileSystem
from repro.fs.variability import LoadProcess
from repro.sim import Distributions, Environment, Resource

import numpy as np

__all__ = ["NFSFileSystem", "NFSParams"]


@dataclass(frozen=True)
class NFSParams:
    """Tunable service model of the NFS server."""

    server_threads: int = 8
    meta_latency_s: float = 1.2e-3
    data_latency_s: float = 0.8e-3
    #: NFS COMMIT forces a server-side disk sync; fsync pays this.
    commit_latency_s: float = 12.0e-3
    server_bandwidth_bps: float = 150e6
    #: Service-time coefficient of variation (per-op jitter).
    cv: float = 0.35

    def __post_init__(self) -> None:
        if self.server_threads < 1:
            raise ValueError("server_threads must be >= 1")
        if self.server_bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")


class NFSFileSystem(FileSystem):
    """Single-server NFS with FIFO thread pool and shared bandwidth."""

    name = "nfs"

    def __init__(
        self,
        env: Environment,
        load: LoadProcess,
        rng: np.random.Generator,
        params: NFSParams = NFSParams(),
    ):
        super().__init__(env, load)
        self.params = params
        self.rng = rng
        # Threads absorb per-RPC latency in parallel; the byte pipe is
        # the server's single disk/network path, so aggregate
        # throughput is bounded by server_bandwidth_bps no matter how
        # many clients are active.
        self._server = Resource(env, capacity=params.server_threads)
        self._pipe = Resource(env, capacity=1)

    # -- service model -----------------------------------------------------

    def _jitter(self, mean: float) -> float:
        return Distributions.lognormal(self.rng, mean, self.params.cv)

    def _meta_op(self, op: str, node_name: str):
        slow = self.load.factor(self.env.now)
        base = (
            self.params.commit_latency_s
            if op == "fsync"
            else self.params.meta_latency_s
        )
        service = self._jitter(base) * slow
        yield from self._server.use(service)

    def _data_op(self, op: str, file: File, offset: int, nbytes: int, node_name: str):
        p = self.params
        slow = self.load.factor(self.env.now)
        # RPC latency on a server thread (parallel across threads)...
        latency = self._jitter(p.data_latency_s) * slow
        yield from self._server.use(latency)
        # ...then the bytes through the shared server pipe (serialized).
        transfer = nbytes / p.server_bandwidth_bps
        if transfer > 0:
            yield from self._pipe.use(transfer * slow)

    # -- introspection -------------------------------------------------------

    @property
    def server_queue_length(self) -> int:
        """Requests currently waiting for a server thread."""
        return self._server.queue_length
