"""POSIX syscall veneer with instrumentation hooks.

Applications (and the MPI-IO layer) do their I/O through a
:class:`PosixClient`.  Every call forwards to the mounted file system's
queueing model and then runs the registered *hooks* — this is the seam
where Darshan's wrappers attach, exactly like the real Darshan
interposes on POSIX symbols via ``LD_PRELOAD`` (the linking mode the
paper's environment section describes).

Hooks are generator-based so an instrument can charge simulated CPU
time to the calling process — the mechanism by which the connector's
JSON-formatting cost slows the application down (the paper's central
overhead finding).

Hook contract: an object with a generator method
``after_op(module: str, context: IOContext, record: OpRecord, handle)``
invoked after each operation completes, on the calling process's clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.base import FileHandle, FileSystem, OpRecord
from repro.sim import Environment

__all__ = ["IOContext", "PosixClient", "StdioClient"]


@dataclass(frozen=True)
class IOContext:
    """Identity of the I/O-issuing process (who/where/what job)."""

    job_id: int
    uid: int
    rank: int
    node_name: str
    exe: str
    app: str = ""


class PosixClient:
    """Per-rank POSIX interface bound to one file system and node."""

    #: Module name reported to instrumentation hooks.
    module = "POSIX"

    def __init__(self, env: Environment, fs: FileSystem, context: IOContext):
        self.env = env
        self.fs = fs
        self.context = context
        #: Instrumentation hooks (see module docstring for the contract).
        self.hooks: list = []

    def add_hook(self, hook) -> None:
        """Register an instrumentation hook (e.g. a Darshan module)."""
        if not hasattr(hook, "after_op"):
            raise TypeError(f"hook {hook!r} lacks an after_op method")
        self.hooks.append(hook)

    def _dispatch(self, record: OpRecord, handle: FileHandle | None):
        for hook in self.hooks:
            yield from hook.after_op(self.module, self.context, record, handle)

    # -- syscalls ------------------------------------------------------------

    def open(self, path: str, flags: str = "r"):
        """Open; returns the handle.  The open's OpRecord reaches hooks."""
        handle, record = yield from self.fs.open(path, self.context.node_name, flags)
        yield from self._dispatch(record, handle)
        return handle

    def read(self, handle: FileHandle, nbytes: int, offset: int | None = None):
        """pread-like; short at EOF.  Returns the OpRecord."""
        record = yield from self.fs.read(handle, nbytes, offset)
        yield from self._dispatch(record, handle)
        return record

    def write(self, handle: FileHandle, nbytes: int, offset: int | None = None):
        """pwrite-like; extends the file.  Returns the OpRecord."""
        record = yield from self.fs.write(handle, nbytes, offset)
        yield from self._dispatch(record, handle)
        return record

    def close(self, handle: FileHandle):
        record = yield from self.fs.close(handle)
        yield from self._dispatch(record, handle)
        return record

    def fsync(self, handle: FileHandle):
        record = yield from self.fs.fsync(handle)
        yield from self._dispatch(record, handle)
        return record

    def stat(self, path: str):
        size, record = yield from self.fs.stat(path, self.context.node_name)
        yield from self._dispatch(record, None)
        return size


class StdioClient:
    """Buffered stdio layer (``fopen``/``fread``/``fwrite``) over POSIX.

    Darshan's STDIO module sees each library call; the underlying
    file system only sees buffer-sized operations.  Writes accumulate in
    a user-space buffer flushed at ``buffer_size``; this is why stdio
    workloads (HMMER's database concatenation) generate enormous event
    *counts* with modest *byte* traffic per event.
    """

    module = "STDIO"

    def __init__(self, posix: PosixClient, buffer_size: int = 64 * 1024):
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        self.env = posix.env
        self.posix = posix
        self.context = posix.context
        self.buffer_size = buffer_size
        self.hooks: list = []
        self._buffered: dict[int, int] = {}  # fd -> unflushed bytes

    def add_hook(self, hook) -> None:
        if not hasattr(hook, "after_op"):
            raise TypeError(f"hook {hook!r} lacks an after_op method")
        self.hooks.append(hook)

    def _dispatch(self, record: OpRecord, handle: FileHandle | None):
        for hook in self.hooks:
            yield from hook.after_op(self.module, self.context, record, handle)

    def fopen(self, path: str, flags: str = "r"):
        start = self.env.now
        handle = yield from self.posix.open(path, flags)
        self._buffered[handle.fd] = 0
        record = OpRecord("open", path, 0, 0, start, self.env.now)
        yield from self._dispatch(record, handle)
        return handle

    def fwrite(self, handle: FileHandle, nbytes: int):
        """Buffered write; flushes to POSIX when the buffer fills."""
        start = self.env.now
        pos = handle.position
        pending = self._buffered.get(handle.fd, 0) + nbytes
        while pending >= self.buffer_size:
            yield from self.posix.write(handle, self.buffer_size)
            pending -= self.buffer_size
        self._buffered[handle.fd] = pending
        record = OpRecord("write", handle.file.path, pos, nbytes, start, self.env.now)
        yield from self._dispatch(record, handle)
        return record

    def fread(self, handle: FileHandle, nbytes: int):
        """Read through (reads are buffered too, one fs op per buffer).

        Refills are buffer-aligned, so sequential small freads cost one
        contiguous POSIX read per buffer window (libc behaviour).
        """
        start = self.env.now
        pos = handle.position
        window = pos % self.buffer_size
        if window == 0 or nbytes > self.buffer_size - window:
            aligned = pos - window
            under = yield from self.posix.read(handle, self.buffer_size + (
                nbytes if nbytes > self.buffer_size else 0
            ), aligned)
            avail_from_pos = max(under.nbytes - window, 0)
            actual = min(nbytes, avail_from_pos) if under.nbytes else min(
                nbytes, max(handle.file.size - pos, 0)
            )
            handle.position = pos + actual
        else:
            actual = min(nbytes, max(handle.file.size - pos, 0))
            handle.position = pos + actual
        record = OpRecord("read", handle.file.path, pos, actual, start, self.env.now)
        yield from self._dispatch(record, handle)
        return record

    def fflush(self, handle: FileHandle, sync: bool = True):
        """Flush the user buffer; with ``sync`` also commit to stable
        storage (the close-to-open consistency round trip that makes
        record-at-a-time writers so expensive on NFS)."""
        start = self.env.now
        pending = self._buffered.get(handle.fd, 0)
        if pending:
            yield from self.posix.write(handle, pending)
            self._buffered[handle.fd] = 0
        if sync:
            yield from self.posix.fsync(handle)
        record = OpRecord("fsync", handle.file.path, 0, 0, start, self.env.now)
        yield from self._dispatch(record, handle)
        return record

    def fclose(self, handle: FileHandle):
        start = self.env.now
        yield from self.fflush(handle)
        yield from self.posix.close(handle)
        self._buffered.pop(handle.fd, None)
        record = OpRecord("close", handle.file.path, 0, 0, start, self.env.now)
        yield from self._dispatch(record, handle)
        return record
