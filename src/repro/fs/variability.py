"""Time-varying file-system load.

Production file systems are shared: the slowdown an application sees
depends on *when* it runs (time of day, who else is hammering the
servers) — the very phenomenon the paper's absolute timestamps exist to
expose.  :class:`LoadProcess` models this as a multiplicative service
-time factor

``factor(t) = base · diurnal(t) · exp(noise(t)) · incidents(t)``

where

* ``diurnal`` is a 24 h sinusoid (systems are busier during the day),
* ``noise`` is a random Fourier series in log space (smooth,
  band-limited wander over minutes-to-hours),
* ``incidents`` are Poisson-arriving congestion bursts with lognormal
  durations and Pareto severities (another user's huge job, a failing
  OST, network congestion).

``factor`` is a *pure function of t* for a given seed, so two campaigns
run weeks apart (as the paper's Darshan-only vs connector campaigns
were) deterministically experience different conditions — reproducing
the paper's "negative overhead" artefacts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LoadProcess"]

_DAY = 86400.0


class LoadProcess:
    """Deterministic noisy slowdown factor over simulated time.

    Parameters
    ----------
    rng:
        Source of the (frozen) random structure.
    base:
        Baseline multiplier (1.0 = nominal service times).
    diurnal_amplitude:
        Relative swing of the 24 h component.
    noise_sigma:
        Std-dev of the log-space Fourier wander.
    n_modes:
        Number of Fourier modes (periods drawn log-uniform between
        ``noise_period_range``).
    incident_rate:
        Mean congestion-incident arrivals per second.
    incident_mean_duration:
        Mean incident length in seconds.
    incident_severity_alpha / incident_max_severity:
        Pareto tail of the slowdown during an incident.
    horizon:
        Length of simulated time (seconds) for which incidents are
        materialized.  Queries beyond the horizon see no incidents.
    origin:
        Clock offset: ``factor(t)`` is evaluated at ``t - origin`` on
        the process's internal timeline.  Experiment worlds whose
        simulated clock is epoch-based pass their epoch here so the
        45-day incident horizon covers the campaign.
    """

    MIN_FACTOR = 0.05

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        base: float = 1.0,
        diurnal_amplitude: float = 0.15,
        noise_sigma: float = 0.18,
        n_modes: int = 8,
        noise_period_range: tuple[float, float] = (120.0, 7200.0),
        incident_rate: float = 1.0 / 2400.0,
        incident_mean_duration: float = 150.0,
        incident_severity_alpha: float = 1.4,
        incident_max_severity: float = 60.0,
        horizon: float = 45.0 * _DAY,
        origin: float = 0.0,
    ):
        if base <= 0:
            raise ValueError("base must be positive")
        if not 0 <= diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.base = float(base)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.horizon = float(horizon)
        self.origin = float(origin)

        # Fourier wander (frozen structure).
        lo, hi = noise_period_range
        if not 0 < lo < hi:
            raise ValueError("noise_period_range must be increasing and positive")
        self._periods = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_modes))
        self._phases = rng.uniform(0.0, 2 * np.pi, size=n_modes)
        self._amps = (
            rng.normal(0.0, 1.0, size=n_modes)
            * (noise_sigma / max(np.sqrt(n_modes), 1.0))
        )
        self._diurnal_phase = rng.uniform(0.0, 2 * np.pi)

        # Congestion incidents over [0, horizon).
        n_expected = incident_rate * horizon
        n_incidents = int(rng.poisson(n_expected)) if n_expected > 0 else 0
        starts = np.sort(rng.uniform(0.0, horizon, size=n_incidents))
        durations = rng.lognormal(
            mean=np.log(max(incident_mean_duration, 1e-9)) - 0.5,
            sigma=1.0,
            size=n_incidents,
        )
        severities = np.minimum(
            1.0 + rng.pareto(incident_severity_alpha, size=n_incidents),
            incident_max_severity,
        )
        self._incident_starts = starts
        self._incident_ends = starts + durations
        self._incident_severities = severities

    # -- queries ---------------------------------------------------------

    def factor(self, t: float) -> float:
        """Slowdown multiplier at simulated time ``t`` (>= MIN_FACTOR)."""
        return float(self.factor_array(np.asarray([t], dtype=float))[0])

    def factor_array(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`factor` for batched event generation."""
        ts = np.asarray(ts, dtype=float) - self.origin
        diurnal = 1.0 + self.diurnal_amplitude * np.sin(
            2 * np.pi * ts / _DAY + self._diurnal_phase
        )
        if len(self._periods):
            angles = (
                2 * np.pi * ts[..., None] / self._periods + self._phases
            )
            noise = np.exp((self._amps * np.sin(angles)).sum(axis=-1))
        else:
            noise = np.ones_like(ts)
        out = self.base * diurnal * noise * self._incident_factor(ts)
        return np.maximum(out, self.MIN_FACTOR)

    def _incident_factor(self, ts: np.ndarray) -> np.ndarray:
        if not len(self._incident_starts):
            return np.ones_like(ts)
        out = np.ones_like(ts)
        # Incidents may overlap; severities multiply (searchsorted window
        # keeps this O(len(ts) · active incidents)).
        idx_hi = np.searchsorted(self._incident_starts, ts, side="right")
        max_span = 32  # only look back a bounded number of incidents
        for offset in range(1, max_span + 1):
            idx = idx_hi - offset
            valid = idx >= 0
            if not valid.any():
                break
            safe = np.where(valid, idx, 0)
            inside = valid & (ts < self._incident_ends[safe])
            if inside.any():
                out[inside] *= self._incident_severities[safe][inside]
        return out

    def incidents_between(self, t0: float, t1: float) -> list[tuple[float, float, float]]:
        """(start, end, severity) of incidents overlapping ``[t0, t1)``.

        Inputs and outputs are in external (origin-shifted) time.
        """
        if t1 < t0:
            raise ValueError("require t0 <= t1")
        out = []
        for s, e, sev in zip(
            self._incident_starts, self._incident_ends, self._incident_severities
        ):
            if s < t1 - self.origin and e > t0 - self.origin:
                out.append((float(s + self.origin), float(e + self.origin), float(sev)))
        return out
