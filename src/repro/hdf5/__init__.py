"""Minimal HDF5-like layer over POSIX.

Table I of the paper includes HDF5-specific metrics in every connector
message (``seg:pt_sel``, ``seg:ndims``, ``seg:reg_hslab``,
``seg:irreg_hslab``, ``seg:data_set``, ``seg:npoints``); they are
``-1``/``"N/A"`` for POSIX traffic and populated for H5F/H5D traffic.
This package provides the smallest HDF5 data model that makes those
fields real: files containing named datasets with an N-dimensional
dataspace, accessed via regular hyperslabs, irregular hyperslabs or
point selections, stored contiguously through a POSIX client.
"""

from repro.hdf5.file import H5Dataset, H5File, H5OpRecord, HDF5Error

__all__ = ["H5Dataset", "H5File", "H5OpRecord", "HDF5Error"]
