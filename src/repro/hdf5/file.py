"""HDF5 file/dataset objects and their instrumentation records.

An :class:`H5File` owns named :class:`H5Dataset` objects laid out
contiguously in the underlying POSIX file after a fixed-size superblock.
Dataset selections translate to byte extents:

* a *regular hyperslab* (start/count per dimension) is contiguous in
  the slowest dimension blocks — we model it as one extent per
  outermost-slab row, coalesced when adjacent;
* an *irregular hyperslab* (union of regular slabs) is multiple extents;
* a *point selection* is ``npoints`` scattered element accesses,
  coalesced into a single gather extent with a seek surcharge borne by
  the file system model's unaligned-access costs.

Every call dispatches an :class:`H5OpRecord` (an
:class:`~repro.fs.base.OpRecord` extended with dataset metadata) to
hooks under module ``H5F`` (file lifecycle) or ``H5D`` (dataset I/O).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fs.base import FileHandle, OpRecord
from repro.fs.posix import PosixClient

__all__ = ["H5File", "H5Dataset", "H5OpRecord", "HDF5Error"]

_SUPERBLOCK_BYTES = 2048
_OBJECT_HEADER_BYTES = 512


class HDF5Error(RuntimeError):
    """Invalid HDF5-layer usage (bad selection, closed file, ...)."""


@dataclass(frozen=True)
class H5OpRecord(OpRecord):
    """OpRecord plus the HDF5 metadata of Table I."""

    data_set: str = "N/A"
    ndims: int = -1
    npoints: int = -1
    pt_sel: int = -1
    reg_hslab: int = -1
    irreg_hslab: int = -1


class H5Dataset:
    """A named N-dimensional dataset with fixed element size."""

    def __init__(self, file: "H5File", name: str, shape: tuple[int, ...], element_size: int):
        if not shape or any(s <= 0 for s in shape):
            raise HDF5Error(f"invalid dataset shape {shape!r}")
        if element_size <= 0:
            raise HDF5Error("element_size must be positive")
        self.file = file
        self.name = name
        self.shape = tuple(shape)
        self.element_size = element_size
        self.base_offset = 0  # assigned by H5File
        #: Selection counters for this dataset (per Table I semantics).
        self.pt_selects = 0
        self.reg_hslab_selects = 0
        self.irreg_hslab_selects = 0
        self.flushes = 0

    @property
    def ndims(self) -> int:
        return len(self.shape)

    @property
    def npoints_total(self) -> int:
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        return self.npoints_total * self.element_size

    # -- selection geometry --------------------------------------------------

    def _slab_extents(self, start: tuple[int, ...], count: tuple[int, ...]):
        """Byte extents of a regular hyperslab, coalescing full rows."""
        if len(start) != self.ndims or len(count) != self.ndims:
            raise HDF5Error(
                f"selection rank mismatch: dataset is {self.ndims}-d, "
                f"got start={start!r} count={count!r}"
            )
        for s, c, dim in zip(start, count, self.shape):
            if s < 0 or c <= 0 or s + c > dim:
                raise HDF5Error(
                    f"selection [{s}:{s + c}) out of bounds for dim {dim}"
                )
        # Contiguous when the slab spans whole trailing dimensions.
        row_elems = math.prod(self.shape[1:]) if self.ndims > 1 else 1
        inner_full = all(
            s == 0 and c == dim
            for s, c, dim in zip(start[1:], count[1:], self.shape[1:])
        )
        if inner_full:
            offset = self.base_offset + start[0] * row_elems * self.element_size
            length = count[0] * row_elems * self.element_size
            return [(offset, length)]
        # Otherwise one extent per outermost index (bounded fan-out).
        extents = []
        inner_elems = math.prod(count[1:])
        inner_offset_elems = 0
        for s, dim_stride in zip(
            start[1:], self._strides()[1:]
        ):
            inner_offset_elems += s * dim_stride
        stride0 = self._strides()[0]
        for i in range(count[0]):
            elem_off = (start[0] + i) * stride0 + inner_offset_elems
            extents.append(
                (
                    self.base_offset + elem_off * self.element_size,
                    inner_elems * self.element_size,
                )
            )
        return extents

    def _strides(self) -> list[int]:
        strides = [1] * self.ndims
        for i in range(self.ndims - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        return strides


class H5File:
    """An HDF5 container bound to one rank's POSIX client."""

    def __init__(self, posix: PosixClient, path: str):
        self.posix = posix
        self.env = posix.env
        self.path = path
        self.datasets: dict[str, H5Dataset] = {}
        self._handle: FileHandle | None = None
        self._next_offset = _SUPERBLOCK_BYTES
        self.hooks: list = []

    def add_hook(self, hook) -> None:
        if not hasattr(hook, "after_op"):
            raise TypeError(f"hook {hook!r} lacks an after_op method")
        self.hooks.append(hook)

    def _dispatch(self, module: str, record: H5OpRecord):
        for hook in self.hooks:
            yield from hook.after_op(module, self.posix.context, record, self._handle)

    def _require_open(self) -> FileHandle:
        if self._handle is None:
            raise HDF5Error(f"HDF5 file {self.path!r} is not open")
        return self._handle

    # -- file lifecycle (H5F) ---------------------------------------------------

    def open(self, flags: str = "w"):
        if self._handle is not None:
            raise HDF5Error(f"{self.path!r} already open")
        start = self.env.now
        self._handle = yield from self.posix.open(self.path, flags)
        # Superblock write on create.
        if "w" in flags:
            yield from self.posix.write(self._handle, _SUPERBLOCK_BYTES, 0)
        record = H5OpRecord("open", self.path, 0, 0, start, self.env.now)
        yield from self._dispatch("H5F", record)
        return self

    def flush(self):
        handle = self._require_open()
        start = self.env.now
        yield from self.posix.fsync(handle)
        record = H5OpRecord("flush", self.path, 0, 0, start, self.env.now)
        yield from self._dispatch("H5F", record)

    def close(self):
        handle = self._require_open()
        start = self.env.now
        yield from self.posix.close(handle)
        self._handle = None
        record = H5OpRecord("close", self.path, 0, 0, start, self.env.now)
        yield from self._dispatch("H5F", record)

    # -- datasets (H5D) ------------------------------------------------------------

    def create_dataset(self, name: str, shape: tuple[int, ...], element_size: int = 8):
        """Create a dataset; writes its object header."""
        handle = self._require_open()
        if name in self.datasets:
            raise HDF5Error(f"dataset {name!r} already exists in {self.path!r}")
        ds = H5Dataset(self, name, shape, element_size)
        ds.base_offset = self._next_offset + _OBJECT_HEADER_BYTES
        self._next_offset = ds.base_offset + ds.nbytes
        self.datasets[name] = ds
        start = self.env.now
        yield from self.posix.write(handle, _OBJECT_HEADER_BYTES, ds.base_offset - _OBJECT_HEADER_BYTES)
        record = H5OpRecord(
            "open",
            self.path,
            0,
            0,
            start,
            self.env.now,
            data_set=name,
            ndims=ds.ndims,
            npoints=ds.npoints_total,
        )
        yield from self._dispatch("H5D", record)
        return ds

    def _io_extents(self, op: str, ds: H5Dataset, extents, meta: dict):
        handle = self._require_open()
        start = self.env.now
        total = 0
        min_off = None
        for offset, length in extents:
            if op == "write":
                yield from self.posix.write(handle, length, offset)
            else:
                yield from self.posix.read(handle, length, offset)
            total += length
            min_off = offset if min_off is None else min(min_off, offset)
        record = H5OpRecord(
            op,
            self.path,
            min_off if min_off is not None else 0,
            total,
            start,
            self.env.now,
            data_set=ds.name,
            ndims=ds.ndims,
            npoints=meta["npoints"],
            pt_sel=ds.pt_selects,
            reg_hslab=ds.reg_hslab_selects,
            irreg_hslab=ds.irreg_hslab_selects,
        )
        yield from self._dispatch("H5D", record)
        return record

    def write_hyperslab(self, ds_name: str, start: tuple, count: tuple):
        """Write a regular hyperslab selection."""
        ds = self._dataset(ds_name)
        ds.reg_hslab_selects += 1
        extents = ds._slab_extents(tuple(start), tuple(count))
        npoints = math.prod(count)
        record = yield from self._io_extents("write", ds, extents, {"npoints": npoints})
        return record

    def read_hyperslab(self, ds_name: str, start: tuple, count: tuple):
        """Read a regular hyperslab selection."""
        ds = self._dataset(ds_name)
        ds.reg_hslab_selects += 1
        extents = ds._slab_extents(tuple(start), tuple(count))
        npoints = math.prod(count)
        record = yield from self._io_extents("read", ds, extents, {"npoints": npoints})
        return record

    def write_irregular(self, ds_name: str, slabs: list[tuple[tuple, tuple]]):
        """Write a union of regular hyperslabs (an irregular selection)."""
        if not slabs:
            raise HDF5Error("irregular selection needs at least one slab")
        ds = self._dataset(ds_name)
        ds.irreg_hslab_selects += 1
        extents = []
        npoints = 0
        for start, count in slabs:
            extents.extend(ds._slab_extents(tuple(start), tuple(count)))
            npoints += math.prod(count)
        record = yield from self._io_extents("write", ds, extents, {"npoints": npoints})
        return record

    def write_points(self, ds_name: str, npoints: int):
        """Write a scattered point selection (modelled as one gather)."""
        if npoints <= 0:
            raise HDF5Error("npoints must be positive")
        ds = self._dataset(ds_name)
        if npoints > ds.npoints_total:
            raise HDF5Error("selection larger than dataspace")
        ds.pt_selects += 1
        extents = [(ds.base_offset, npoints * ds.element_size)]
        record = yield from self._io_extents("write", ds, extents, {"npoints": npoints})
        return record

    def flush_dataset(self, ds_name: str):
        """H5D-level flush (counted separately per Table I)."""
        ds = self._dataset(ds_name)
        handle = self._require_open()
        start = self.env.now
        ds.flushes += 1
        yield from self.posix.fsync(handle)
        record = H5OpRecord(
            "flush",
            self.path,
            0,
            0,
            start,
            self.env.now,
            data_set=ds.name,
            ndims=ds.ndims,
            npoints=ds.npoints_total,
        )
        yield from self._dispatch("H5D", record)

    def _dataset(self, name: str) -> H5Dataset:
        try:
            return self.datasets[name]
        except KeyError:
            raise HDF5Error(f"no dataset {name!r} in {self.path!r}") from None
