"""LDMS: the Lightweight Distributed Metric Service (reimplemented).

The pieces of LDMS the paper leverages and enhances:

* **LDMS Streams** (:mod:`repro.ldms.streams`) — the tag-addressed
  publish/subscribe bus for event data.  Faithful semantics: push-based,
  best-effort (no reconnect/resend), *no caching* — data published
  before a subscription exists is lost; variable-length string or JSON
  payloads.
* **ldmsd** (:mod:`repro.ldms.daemon`) — daemons on every compute node
  and aggregators at multiple levels; stream data is *pushed* hop by
  hop over the cluster network with bounded forwarding queues (overflow
  is dropped, which is what best-effort means operationally).
* **samplers** (:mod:`repro.ldms.sampler`) — periodic metric-set
  collection (meminfo/vmstat style), the classic LDMS data path that
  rides the same aggregation topology.
* **store plugins** (:mod:`repro.ldms.store`) — terminal subscribers
  that persist stream data; the CSV store reproduces Figure 3's
  flattened header, and the DSOS store feeds the paper's database.
"""

from repro.ldms.streams import StreamMessage, StreamsBus
from repro.ldms.daemon import Ldmsd
from repro.ldms.aggregator import AggregationFabric, FabricTotals
from repro.ldms.sampler import LoadSampler, MeminfoSampler, SamplerPlugin
from repro.ldms.store import CSV_HEADER, CsvStreamStore, StorePluginError

__all__ = [
    "AggregationFabric",
    "CSV_HEADER",
    "CsvStreamStore",
    "FabricTotals",
    "Ldmsd",
    "LoadSampler",
    "MeminfoSampler",
    "SamplerPlugin",
    "StorePluginError",
    "StreamMessage",
    "StreamsBus",
]
