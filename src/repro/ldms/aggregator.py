"""Multi-level aggregation topology builder.

Reproduces the paper's environment: sampler ldmsds on every compute
node push Darshan stream data (and metric sets) to a first-level
aggregator on Voltrino's head node, which pushes to a second-level
aggregator on the analysis cluster (Shirley) where storage and the web
services live.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.ldms.daemon import Ldmsd

__all__ = ["AggregationFabric", "FabricTotals"]


@dataclass(frozen=True)
class FabricTotals:
    """Fleet-wide delivery accounting."""

    published_on_compute: int
    received_at_l2: int
    dropped_overflow: int
    bytes_forwarded: int

    @property
    def delivery_ratio(self) -> float:
        if self.published_on_compute == 0:
            return 1.0
        return self.received_at_l2 / self.published_on_compute


class AggregationFabric:
    """All daemons + forwarding rules for one stream tag."""

    def __init__(
        self,
        cluster: Cluster,
        tag: str,
        *,
        queue_depth: int = 65536,
        daemon_name: str = "ldmsd",
        fast_lane: bool = True,
        retry=None,
        standby_l1: bool = False,
    ):
        """``retry`` (a :class:`~repro.ldms.resilience.RetryPolicy`)
        opts every forward rule into backoff/resend; ``standby_l1``
        adds a hot-standby first-level aggregator on the analysis node
        that compute daemons fail over to when the head-node L1 dies —
        a genuinely different route (compute → Shirley direct), which
        exercises the failover path's route re-resolution."""
        self.cluster = cluster
        self.tag = tag
        env = cluster.env
        net = cluster.network

        self.l2 = Ldmsd(env, cluster.analysis_node, net, name=daemon_name,
                        fast_lane=fast_lane)
        self.l1 = Ldmsd(env, cluster.head_node, net, name=daemon_name,
                        fast_lane=fast_lane)
        self.l1.add_stream_forward(tag, self.l2, queue_depth, retry=retry)

        self.l1_standby: Ldmsd | None = None
        if standby_l1:
            self.l1_standby = Ldmsd(
                env, cluster.analysis_node, net,
                name=f"{daemon_name}-standby", fast_lane=fast_lane,
            )
            # Standby relays to L2 over the free same-node loopback.
            self.l1_standby.add_stream_forward(tag, self.l2, queue_depth,
                                               retry=retry)

        self.compute_daemons: dict[str, Ldmsd] = {}
        for node in cluster.compute_nodes:
            d = Ldmsd(env, node, net, name=daemon_name, fast_lane=fast_lane)
            d.add_stream_forward(tag, self.l1, queue_depth, retry=retry,
                                 standby=self.l1_standby)
            self.compute_daemons[node.name] = d

    def daemon_for(self, node_name: str) -> Ldmsd:
        """The compute-node daemon an application on ``node_name`` uses."""
        try:
            return self.compute_daemons[node_name]
        except KeyError:
            raise KeyError(f"no compute ldmsd on {node_name!r}") from None

    def all_daemons(self) -> list[Ldmsd]:
        """Every daemon in the fabric, compute level first."""
        daemons = [*self.compute_daemons.values(), self.l1]
        if self.l1_standby is not None:
            daemons.append(self.l1_standby)
        daemons.append(self.l2)
        return daemons

    def health_snapshots(self) -> list[dict]:
        """Per-daemon :meth:`~repro.ldms.daemon.Ldmsd.stats_snapshot`
        for the whole fabric — the counters section of health reports."""
        return [d.stats_snapshot() for d in self.all_daemons()]

    def stop(self) -> None:
        """Stop sampler loops on every daemon."""
        for d in self.all_daemons():
            d.stop()

    def totals(self) -> FabricTotals:
        published = sum(
            d.streams.stats.published for d in self.compute_daemons.values()
        )
        relays = [*self.compute_daemons.values(), self.l1]
        if self.l1_standby is not None:
            relays.append(self.l1_standby)
        dropped = sum(
            s.dropped_overflow for d in relays for s in d.forward_stats()
        )
        bytes_fwd = sum(
            s.bytes_forwarded for d in relays for s in d.forward_stats()
        )
        return FabricTotals(
            published_on_compute=published,
            received_at_l2=self.l2.streams.stats.published,
            dropped_overflow=dropped,
            bytes_forwarded=bytes_fwd,
        )
