"""ldmsd deployment configuration language.

Real LDMS fleets are wired by configuration files (producer/updater/
storage-policy directives); this module provides the equivalent for the
simulated fleet, so a whole monitoring topology is declared as text:

::

    # comments and blank lines are ignored
    ldmsd host=nid*                        # daemon on every matching node
    ldmsd host=head
    ldmsd host=shirley
    stream_forward from=nid* to=head tag=darshanConnector
    stream_forward from=head to=shirley tag=darshanConnector
    sampler host=head plugin=meminfo interval=5.0
    store host=shirley type=csv tag=darshanConnector

Host patterns are shell globs matched against node names.  The
:func:`build_fleet` entry point validates the whole file before any
daemon is created, so configuration errors surface with line numbers.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.ldms.daemon import Ldmsd
from repro.ldms.sampler import MeminfoSampler
from repro.ldms.store import CsvStreamStore

__all__ = ["ConfigError", "Directive", "Fleet", "build_fleet", "parse_config"]


class ConfigError(ValueError):
    """Malformed configuration; message carries the line number."""


@dataclass(frozen=True)
class Directive:
    """One parsed configuration line."""

    line_no: int
    verb: str
    args: dict

    def require(self, *names: str) -> None:
        missing = [n for n in names if n not in self.args]
        if missing:
            raise ConfigError(
                f"line {self.line_no}: {self.verb} missing {', '.join(missing)}"
            )


_VERBS = ("ldmsd", "stream_forward", "sampler", "store")

_SAMPLER_PLUGINS = {"meminfo": MeminfoSampler}


def parse_config(text: str) -> list[Directive]:
    """Parse the config text into directives (syntax only)."""
    directives = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        verb = parts[0]
        if verb not in _VERBS:
            raise ConfigError(
                f"line {line_no}: unknown directive {verb!r} (expected one of {_VERBS})"
            )
        args = {}
        for token in parts[1:]:
            if "=" not in token:
                raise ConfigError(
                    f"line {line_no}: expected key=value, got {token!r}"
                )
            key, value = token.split("=", 1)
            if not key or not value:
                raise ConfigError(f"line {line_no}: empty key or value in {token!r}")
            if key in args:
                raise ConfigError(f"line {line_no}: duplicate key {key!r}")
            args[key] = value
        directives.append(Directive(line_no, verb, args))
    return directives


@dataclass
class Fleet:
    """The daemons and stores a configuration produced."""

    daemons: dict = field(default_factory=dict)  # node name -> Ldmsd
    stores: list = field(default_factory=list)

    def daemon_for(self, node_name: str) -> Ldmsd:
        try:
            return self.daemons[node_name]
        except KeyError:
            raise KeyError(f"no configured ldmsd on {node_name!r}") from None

    def stop(self) -> None:
        for d in self.daemons.values():
            d.stop()


def _match_nodes(cluster: Cluster, pattern: str, line_no: int) -> list:
    nodes = [n for n in cluster.all_nodes if fnmatch.fnmatch(n.name, pattern)]
    if not nodes:
        raise ConfigError(f"line {line_no}: host pattern {pattern!r} matches no node")
    return nodes


def build_fleet(cluster: Cluster, text: str) -> Fleet:
    """Validate and instantiate the configured monitoring fleet."""
    directives = parse_config(text)
    fleet = Fleet()

    # Pass 1: daemons (so forwards can resolve in pass 2 regardless of order).
    for d in directives:
        if d.verb != "ldmsd":
            continue
        d.require("host")
        for node in _match_nodes(cluster, d.args["host"], d.line_no):
            if node.name in fleet.daemons:
                raise ConfigError(
                    f"line {d.line_no}: duplicate ldmsd on {node.name}"
                )
            fleet.daemons[node.name] = Ldmsd(
                cluster.env, node, cluster.network,
                name=f"ldmsd@{node.name}",
            )

    # Pass 2: wiring.
    for d in directives:
        if d.verb == "stream_forward":
            d.require("from", "to", "tag")
            dst_nodes = _match_nodes(cluster, d.args["to"], d.line_no)
            if len(dst_nodes) != 1:
                raise ConfigError(
                    f"line {d.line_no}: 'to' must match exactly one node, "
                    f"got {len(dst_nodes)}"
                )
            dst = fleet.daemons.get(dst_nodes[0].name)
            if dst is None:
                raise ConfigError(
                    f"line {d.line_no}: no ldmsd configured on {dst_nodes[0].name}"
                )
            for node in _match_nodes(cluster, d.args["from"], d.line_no):
                src = fleet.daemons.get(node.name)
                if src is None:
                    raise ConfigError(
                        f"line {d.line_no}: no ldmsd configured on {node.name}"
                    )
                if src is not dst:
                    src.add_stream_forward(d.args["tag"], dst)
        elif d.verb == "sampler":
            d.require("host", "plugin", "interval")
            plugin_cls = _SAMPLER_PLUGINS.get(d.args["plugin"])
            if plugin_cls is None:
                raise ConfigError(
                    f"line {d.line_no}: unknown sampler plugin "
                    f"{d.args['plugin']!r} (have {sorted(_SAMPLER_PLUGINS)})"
                )
            try:
                interval = float(d.args["interval"])
            except ValueError:
                raise ConfigError(
                    f"line {d.line_no}: interval must be a number"
                ) from None
            for node in _match_nodes(cluster, d.args["host"], d.line_no):
                daemon = fleet.daemons.get(node.name)
                if daemon is None:
                    raise ConfigError(
                        f"line {d.line_no}: no ldmsd configured on {node.name}"
                    )
                daemon.add_sampler(plugin_cls(node), interval)
        elif d.verb == "store":
            d.require("host", "type", "tag")
            if d.args["type"] != "csv":
                raise ConfigError(
                    f"line {d.line_no}: unknown store type {d.args['type']!r} "
                    "(config supports 'csv'; attach DSOS stores via the API)"
                )
            nodes = _match_nodes(cluster, d.args["host"], d.line_no)
            if len(nodes) != 1:
                raise ConfigError(
                    f"line {d.line_no}: store host must match exactly one node"
                )
            daemon = fleet.daemons.get(nodes[0].name)
            if daemon is None:
                raise ConfigError(
                    f"line {d.line_no}: no ldmsd configured on {nodes[0].name}"
                )
            fleet.stores.append(CsvStreamStore(daemon, d.args["tag"]))
    return fleet
