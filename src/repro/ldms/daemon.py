"""ldmsd: the LDMS daemon and its stream-forwarding transport.

Each daemon owns a local :class:`~repro.ldms.streams.StreamsBus`.
Forward rules push matching messages to a peer daemon over the cluster
network through a *bounded* FIFO outbox drained by a forwarder process;
when the outbox is full the message is dropped (best-effort, no resend —
the Streams semantics the paper documents).  Samplers publish periodic
metric sets onto reserved ``metrics/<name>`` tags riding the same
fabric.

The application-facing :meth:`Ldmsd.publish` is a generator charging a
small, size-dependent publish cost to the caller — deliberately tiny,
because the paper's ablation shows the Streams API itself costs ~0.37 %;
it is the JSON *formatting* upstream that hurts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from zlib import crc32

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.ldms.resilience import RetryPolicy
from repro.ldms.streams import StreamMessage, StreamsBus
from repro.sim import Environment, Event, Interrupt, Store
from repro.telemetry import trace as _trace
from repro.telemetry.collector import collector_for

__all__ = ["Ldmsd", "ForwardStats"]


class _BusTelemetry:
    """Bridge from one daemon's bus to the env's trace collector.

    Installed unconditionally; every hook is a single weak-dict miss
    when no collector is installed, so the untraced hot path is
    untouched.
    """

    __slots__ = ("daemon",)

    def __init__(self, daemon: "Ldmsd"):
        self.daemon = daemon

    def on_publish(self, message: StreamMessage, delivered: int) -> None:
        if not message.trace_id:
            return
        collector = collector_for(self.daemon.env)
        if collector is None:
            return
        outcome = _trace.DELIVERED if delivered else _trace.DROP_NO_SUBSCRIBER
        collector.hop(
            message.trace_id, _trace.STAGE_BUS, self.daemon.node.name, outcome
        )


@dataclass
class ForwardStats:
    """Accounting for one forward rule."""

    enqueued: int = 0
    forwarded: int = 0
    dropped_overflow: int = 0
    bytes_forwarded: int = 0
    max_queue_depth: int = 0
    # -- resilience counters (all zero unless retry/flaky configured,
    #    except purged_on_crash, which any owner crash can raise) --
    retries: int = 0
    redelivered: int = 0
    failovers: int = 0
    dead_letters: int = 0
    purged_on_crash: int = 0


class _FlakyTransport:
    """Probabilistic send errors on one forward rule.

    ``mode="lost"`` drops the batch on the wire; ``mode="unacked"``
    delivers it but loses the acknowledgement, so the sender retries
    and the peer sees a duplicate — the case the idempotent ingest
    journal exists for.  Draws come from a seeded stream, so error
    sequences replay exactly.
    """

    __slots__ = ("error_rate", "mode", "rng")

    def __init__(self, error_rate: float, mode: str, rng):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if mode not in ("lost", "unacked"):
            raise ValueError("mode must be 'lost' or 'unacked'")
        self.error_rate = error_rate
        self.mode = mode
        self.rng = rng

    def draw(self) -> str | None:
        """The error mode this send suffers, or ``None`` (clean send)."""
        return self.mode if self.rng.random() < self.error_rate else None


class _Forwarder:
    """Pushes one tag's messages to one peer over the network.

    Messages queued behind the head of the outbox are coalesced into
    one network transfer of up to ``batch_size`` messages — the
    batching a real aggregation hop performs, and the reason stream
    transport keeps up with event bursts.

    Two drive modes share the outbox and all accounting:

    * ``batch_deliver=False`` — the reference path: a persistent
      process blocks on the outbox and walks each batch through
      :meth:`Network.transfer`.
    * ``batch_deliver=True`` — the fast lane: no persistent process.
      :meth:`enqueue` schedules a same-timestep drain callback when the
      forwarder is idle (behind the rest of the current timestep, so
      burst/overflow behaviour matches the blocked-process wakeup), and
      each uncontended single-link transfer is one fused engine event
      whose completion callback delivers the batch and drains again.
      Completion instants are float-identical to the reference path;
      only the event *count* differs, so simulated results can diverge
      solely on exact float-time ties.
    """

    def __init__(
        self,
        env: Environment,
        owner: "Ldmsd",
        tag: str,
        peer: "Ldmsd",
        queue_depth: int,
        batch_size: int = 64,
        batch_deliver: bool = True,
        retry: RetryPolicy | None = None,
        standby: "Ldmsd | None" = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.env = env
        self.owner = owner
        self.tag = tag
        self.peer = peer
        self.batch_size = batch_size
        #: Hand whole batches to ``peer.receive_batch`` (one ingest
        #: append-path per batch) instead of per-message ``receive``.
        #: Host-side only — the network transfer is identical.
        self.batch_deliver = batch_deliver
        #: Optional self-healing (repro.faults).  With ``retry=None``
        #: and no flaky transport, delivery is the legacy best-effort
        #: path, bit-for-bit.  With a policy, failed sends back off and
        #: resend; with a ``standby``, delivery fails over (stickily)
        #: when the primary peer is down, re-resolving the route.
        self.retry = retry
        self.standby = standby
        self._active_peer = peer
        self._flaky: _FlakyTransport | None = None
        self._retry_seq = 0
        self._retry_key = crc32(f"{owner.node.name}/{tag}".encode())
        self.outbox = Store(env, capacity=queue_depth)
        self.stats = ForwardStats()
        if batch_deliver:
            self.process = None
            self._draining = False
        else:
            self.process = env.process(self._run())

    def set_flaky(self, error_rate: float, mode: str, rng) -> None:
        """Make sends error with probability ``error_rate`` (seeded)."""
        self._flaky = _FlakyTransport(error_rate, mode, rng)

    def clear_flaky(self) -> None:
        self._flaky = None

    def enqueue(self, message: StreamMessage) -> None:
        if self.outbox.try_put(message):
            self.stats.enqueued += 1
            depth = len(self.outbox)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            collector = collector_for(self.env)
            if collector is not None:
                node = self.owner.node.name
                if message.trace_id:
                    # The forward hop spans outbox wait + batched transfer.
                    collector.open_hop(message.trace_id, _trace.STAGE_FORWARD, node)
                collector.gauge(f"outbox_depth/{node}/{self.tag}", depth)
            if self.batch_deliver and not self._draining:
                self._draining = True
                kick = Event(self.env)
                kick.callbacks.append(self._kick)
                kick.succeed()
        else:
            self.stats.dropped_overflow += 1
            if message.trace_id:
                collector = collector_for(self.env)
                if collector is not None:
                    collector.hop(
                        message.trace_id,
                        _trace.STAGE_FORWARD,
                        self.owner.node.name,
                        _trace.DROP_OVERFLOW,
                    )

    # -- fast lane: event-callback drive --------------------------------------

    def _drain_batch(self) -> list:
        batch = []
        outbox = self.outbox
        while len(batch) < self.batch_size:
            message = outbox.try_get()
            if message is None:
                break
            batch.append(message)
        return batch

    def _kick(self, _event: Event | None = None) -> None:
        """Run transfer cycles until the outbox is empty (fast lane)."""
        env = self.env
        network = self.owner.network
        src = self.owner.node.name
        while True:
            dst = self._active_peer.node.name
            batch = self._drain_batch()
            if not batch:
                self._draining = False
                return
            total_bytes = sum(m.size_bytes for m in batch)
            if network is None or src == dst:
                self._complete(batch, total_bytes)
                continue
            if total_bytes:
                links = network.links_on_path(src, dst)
                if len(links) == 1:
                    link = links[0]
                    server = link._server
                    if (
                        link._up
                        and not link._approaching
                        and not server._holders
                        and not server._waiting
                    ):
                        factor = network.congestion_factor()
                        req = server.acquire()
                        done = env.timeout_at(
                            (env.now + link.latency_s * factor)
                            + link.transmit_time(total_bytes) * factor
                        )
                        done.callbacks.append(
                            lambda _ev, b=batch, t=total_bytes, r=req, s=server: (
                                s.release(r),
                                self._complete(b, t),
                                self._kick(),
                            )
                        )
                        return
            # Contended, multi-link or zero-byte route: walk this one
            # batch through the generator transfer, then drain again.
            env.process(self._finish_slow(batch, total_bytes))
            return

    def _finish_slow(self, batch: list, total_bytes: int):
        yield from self.owner.network.transfer_coalesced(
            self.owner.node.name, self._active_peer.node.name, total_bytes
        )
        self._complete(batch, total_bytes)
        self._kick()

    # -- delivery (both drive modes) -------------------------------------

    def _complete(self, batch: list, total_bytes: int) -> None:
        """A batch's network transfer finished: deliver, or start healing.

        With no retry policy and no flaky transport this is exactly the
        legacy best-effort path (synchronous delivery, drops recorded at
        the receiving daemon).  Otherwise the send can fail — flaky
        transport error, or the active peer is down — and the batch
        enters the retry/failover loop instead of being handed over.
        """
        peer = self._active_peer
        if self.retry is None and self._flaky is None:
            self._finish(batch, total_bytes, peer)
            return
        err = self._flaky.draw() if self._flaky is not None else None
        delivered = False
        if err == "unacked" and not peer.failed:
            # The batch arrived; only the ack was lost.  The peer has
            # the data now — the sender just doesn't know, and will
            # resend (the duplicate the ingest journal absorbs).
            self._finish(batch, total_bytes, peer)
            delivered = True
        if err is not None or peer.failed:
            if self.retry is None:
                if not delivered:
                    self._dead_letter(batch)
                return
            self._retry_seq += 1
            self.env.process(
                self._retry_loop(batch, total_bytes, delivered, self._retry_seq)
            )
            return
        self._finish(batch, total_bytes, peer)

    def _finish(
        self,
        batch: list,
        total_bytes: int,
        peer: "Ldmsd",
        recovery: tuple = (),
    ) -> None:
        """Hand a batch to ``peer``, closing forward hops.

        ``recovery`` lists extra outcome stamps (REDELIVERED, FAILOVER)
        to record per message before the FORWARDED close — the recovery-
        site ledger feeds off these.
        """
        self.stats.forwarded += len(batch)
        self.stats.bytes_forwarded += total_bytes
        collector = collector_for(self.env)
        if collector is not None:
            node = self.owner.node.name
            if not recovery:
                collector.close_hop_batch(
                    [m.trace_id for m in batch],
                    _trace.STAGE_FORWARD, node, _trace.FORWARDED,
                )
            else:
                for message in batch:
                    if message.trace_id:
                        for outcome in recovery:
                            collector.hop(
                                message.trace_id, _trace.STAGE_FORWARD, node, outcome
                            )
                        collector.close_hop(
                            message.trace_id, _trace.STAGE_FORWARD, node, _trace.FORWARDED
                        )
        if self.batch_deliver:
            peer.receive_batch(batch)
        else:
            for message in batch:
                peer.receive(message)

    def _dead_letter(self, batch: list) -> None:
        """Give up on a batch: attribute every message, drop it."""
        self.stats.dead_letters += len(batch)
        collector = collector_for(self.env)
        if collector is not None:
            # Count-weighted: the batch died as one unit, but every one
            # of its N messages is attributed to this drop site.
            collector.close_hop_batch(
                [m.trace_id for m in batch],
                _trace.STAGE_FORWARD,
                self.owner.node.name,
                _trace.DROP_DEAD_LETTER,
            )

    def _retry_loop(self, batch: list, total_bytes: int, delivered: bool, seq: int):
        """Back off, resend, fail over; dead-letter on exhaustion.

        ``delivered`` is True when an earlier send actually arrived
        (unacked-mode flaky error): the loop still resends — the sender
        has no ack — but exhaustion is then silent, not a drop.
        """
        policy = self.retry
        key = self._retry_key ^ seq
        failed_over = False
        network = self.owner.network
        src = self.owner.node.name
        for attempt in range(1, policy.max_attempts + 1):
            self.stats.retries += 1
            yield self.env.timeout(policy.delay(attempt, key))
            peer = self._active_peer
            if (
                peer.failed
                and self.standby is not None
                and peer is not self.standby
                and not self.standby.failed
            ):
                # Sticky failover: re-point the rule at the standby and
                # let route resolution find the new path.  Subsequent
                # batches go straight there with no FAILOVER stamp —
                # the stamp marks messages that lived through a switch.
                self._active_peer = peer = self.standby
                self.stats.failovers += 1
                failed_over = True
            if network is not None and src != peer.node.name:
                yield from network.transfer_coalesced(
                    src, peer.node.name, total_bytes
                )
            err = self._flaky.draw() if self._flaky is not None else None
            if err == "unacked" and not peer.failed:
                self._finish(
                    batch, total_bytes, peer,
                    recovery=self._recovery_stamps(failed_over, delivered),
                )
                delivered = True
                continue
            if err is not None or peer.failed:
                continue
            self._finish(
                batch, total_bytes, peer,
                recovery=self._recovery_stamps(failed_over, delivered),
            )
            self.stats.redelivered += len(batch)
            return
        if not delivered:
            self._dead_letter(batch)

    @staticmethod
    def _recovery_stamps(failed_over: bool, duplicate: bool) -> tuple:
        stamps = (_trace.FAILOVER,) if failed_over else ()
        # A resend that the peer already has is recovery bookkeeping at
        # the *ingest* dedup, not here; first arrivals get REDELIVERED.
        if not duplicate:
            stamps += (_trace.REDELIVERED,)
        return stamps

    def purge_on_crash(self) -> None:
        """The owner crashed: its queued, unsent messages die with it."""
        while True:
            message = self.outbox.try_get()
            if message is None:
                break
            self.stats.purged_on_crash += 1
            if message.trace_id:
                collector = collector_for(self.env)
                if collector is not None:
                    collector.close_hop(
                        message.trace_id,
                        _trace.STAGE_FORWARD,
                        self.owner.node.name,
                        _trace.DROP_DAEMON_FAILED,
                    )

    # -- reference path: blocking process -------------------------------------

    def _run(self):
        network = self.owner.network
        while True:
            try:
                first = yield self.outbox.get()
            except Interrupt:
                return
            batch = [first]
            while len(batch) < self.batch_size:
                extra = self.outbox.try_get()
                if extra is None:
                    break
                batch.append(extra)
            total_bytes = sum(m.size_bytes for m in batch)
            dst = self._active_peer.node.name
            if network is not None and self.owner.node.name != dst:
                yield from network.transfer(
                    self.owner.node.name, dst, total_bytes
                )
            self._complete(batch, total_bytes)


class Ldmsd:
    """One LDMS daemon on one node."""

    #: Express-spine back-pointer (repro.core.batch).  While an armed
    #: spine virtualizes this daemon's stream traffic, any publish or
    #: fault applied through the daemon itself de-arms the spine first —
    #: queued virtual rows complete delivery, then the per-message path
    #: handles everything from the mutation on.
    _express_spine = None

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network | None = None,
        *,
        name: str = "ldmsd",
        forward_queue_depth: int = 65536,
        publish_overhead_s: float = 0.8e-6,
        loopback_bandwidth_bps: float = 4e9,
        fast_lane: bool = True,
    ):
        if forward_queue_depth < 1:
            raise ValueError("forward_queue_depth must be >= 1")
        self.env = env
        self.node = node
        self.network = network
        self.name = name
        self.publish_overhead_s = publish_overhead_s
        self.loopback_bandwidth_bps = loopback_bandwidth_bps
        #: Host-side batching of forward delivery (simulated results are
        #: identical; False keeps the per-message reference path).
        self.fast_lane = fast_lane
        self.streams = StreamsBus()
        self.streams.telemetry = _BusTelemetry(self)
        self._forwarders: list[_Forwarder] = []
        self._samplers: list = []
        self._failed = False
        #: Messages discarded because the daemon was down.
        self.dropped_while_failed = 0
        node.register_daemon(name, self)

    # -- stream topology -----------------------------------------------------

    def add_stream_forward(
        self,
        tag: str,
        peer: "Ldmsd",
        queue_depth: int | None = None,
        retry: RetryPolicy | None = None,
        standby: "Ldmsd | None" = None,
    ) -> None:
        """Push every message on ``tag`` to ``peer`` (aggregation hop).

        ``retry``/``standby`` opt this rule into the self-healing
        delivery path (see :class:`_Forwarder`); left at ``None`` the
        rule is the paper's best-effort Streams transport, unchanged.
        """
        if peer is self:
            raise ValueError("a daemon cannot forward to itself")
        if standby is self:
            raise ValueError("a daemon cannot fail over to itself")
        fwd = _Forwarder(
            self.env,
            self,
            tag,
            peer,
            queue_depth or 65536,
            batch_deliver=self.fast_lane,
            retry=retry,
            standby=standby,
        )
        self._forwarders.append(fwd)
        self.streams.subscribe(tag, fwd.enqueue)

    def set_flaky(self, error_rate: float, mode: str, rng, tag: str | None = None) -> None:
        """Make forward sends (on ``tag``, or all rules) error randomly."""
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        for fwd in self._forwarders:
            if tag is None or fwd.tag == tag:
                fwd.set_flaky(error_rate, mode, rng)

    def clear_flaky(self, tag: str | None = None) -> None:
        for fwd in self._forwarders:
            if tag is None or fwd.tag == tag:
                fwd.clear_flaky()

    def forward_stats(self) -> list[ForwardStats]:
        return [f.stats for f in self._forwarders]

    def stats_snapshot(self) -> dict:
        """Merged bus + per-rule forward accounting as one plain dict.

        The single entry point health reports (and operators) use —
        callers no longer reach into ``_Forwarder`` internals.
        """
        return {
            "name": self.name,
            "node": self.node.name,
            "failed": self._failed,
            "dropped_while_failed": self.dropped_while_failed,
            "bus": {
                "published": self.streams.stats.published,
                "delivered": self.streams.stats.delivered,
                "dropped_no_subscriber": self.streams.stats.dropped_no_subscriber,
                "bytes_published": self.streams.stats.bytes_published,
            },
            "forwards": [
                {
                    "tag": f.tag,
                    "peer": f"{f.peer.node.name}/{f.peer.name}",
                    "active_peer": (
                        f"{f._active_peer.node.name}/{f._active_peer.name}"
                    ),
                    "enqueued": f.stats.enqueued,
                    "forwarded": f.stats.forwarded,
                    "dropped_overflow": f.stats.dropped_overflow,
                    "bytes_forwarded": f.stats.bytes_forwarded,
                    "max_queue_depth": f.stats.max_queue_depth,
                    "queue_depth": len(f.outbox),
                    "retries": f.stats.retries,
                    "redelivered": f.stats.redelivered,
                    "failovers": f.stats.failovers,
                    "dead_letters": f.stats.dead_letters,
                    "purged_on_crash": f.stats.purged_on_crash,
                }
                for f in self._forwarders
            ],
        }

    # -- the app-facing Streams API -------------------------------------------

    def publish(self, tag: str, payload, fmt: str = "json", trace_id: str = ""):
        """Generator: publish to the local bus, charging publish cost.

        ``payload`` may be a pre-formatted string or any JSON-serializable
        object (serialized here as the API does).

        Best-effort all the way down: publishing into a failed daemon
        costs the caller the same tiny send time and silently loses the
        message — monitoring failure never breaks the application.
        """
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        if not isinstance(payload, str):
            payload = json.dumps(payload, separators=(",", ":"))
        message = StreamMessage(
            tag=tag,
            payload=payload,
            fmt=fmt,
            src_node=self.node.name,
            publish_time=self.env.now,
            trace_id=trace_id,
        )
        cost = self.publish_cost(message.size_bytes)
        t0 = self.env.now
        yield self.env.timeout(cost)
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.DROP_DAEMON_FAILED)
            return 0
        self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.PUBLISHED, t_in=t0)
        delivered = self.streams.publish(message)
        return delivered

    def publish_cost(self, nbytes: int) -> float:
        """Simulated seconds one publish of ``nbytes`` charges the caller."""
        return self.publish_overhead_s + nbytes / self.loopback_bandwidth_bps

    def publish_prepaid(
        self,
        tag: str,
        payload: str,
        fmt: str = "json",
        trace_id: str = "",
        publish_time: float | None = None,
        parsed: dict | None = None,
    ) -> int:
        """The post-timeout half of :meth:`publish`, for callers that
        already charged :meth:`publish_cost` themselves (the connector's
        coalesced fast lane).  ``publish_time`` is the instant the
        two-trip path would have stamped (format done, cost not yet
        charged); failure is checked *now*, exactly like :meth:`publish`
        checks after its own timeout.
        """
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        t_pub = self.env.now if publish_time is None else publish_time
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.DROP_DAEMON_FAILED)
            return 0
        message = StreamMessage(
            tag=tag,
            payload=payload,
            fmt=fmt,
            src_node=self.node.name,
            publish_time=t_pub,
            trace_id=trace_id,
            parsed=parsed,
        )
        self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.PUBLISHED, t_in=t_pub)
        return self.streams.publish(message)

    def publish_prepaid_message(self, message) -> int:
        """:meth:`publish_prepaid` for a caller-built message object.

        The columnar per-message fallback publishes a lazy
        :class:`~repro.core.batch.ColumnarMessage` whose payload joins
        only if something downstream reads it; semantics (failure
        check, publish hop, bus delivery) are identical.
        """
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(
                message.trace_id, _trace.STAGE_PUBLISH, _trace.DROP_DAEMON_FAILED
            )
            return 0
        self._record_hop(
            message.trace_id, _trace.STAGE_PUBLISH, _trace.PUBLISHED,
            t_in=message.publish_time,
        )
        return self.streams.publish(message)

    def publish_now(self, tag: str, payload, fmt: str = "json", trace_id: str = "") -> int:
        """Zero-cost publish for daemon-internal producers (samplers)."""
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.DROP_DAEMON_FAILED)
            return 0
        if not isinstance(payload, str):
            payload = json.dumps(payload, separators=(",", ":"))
        message = StreamMessage(
            tag=tag,
            payload=payload,
            fmt=fmt,
            src_node=self.node.name,
            publish_time=self.env.now,
            trace_id=trace_id,
        )
        return self.streams.publish(message)

    def _record_hop(
        self, trace_id: str, stage: str, outcome: str, t_in: float | None = None
    ) -> None:
        if not trace_id:
            return
        collector = collector_for(self.env)
        if collector is not None:
            collector.hop(trace_id, stage, self.node.name, outcome, t_in=t_in)

    # -- receiving from peers ----------------------------------------------------

    def receive(self, message: StreamMessage) -> None:
        """Deliver a forwarded message to this daemon's local bus."""
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(
                message.trace_id, _trace.STAGE_RECEIVE, _trace.DROP_DAEMON_FAILED
            )
            return
        self.streams.publish(message)

    def receive_batch(self, messages: list) -> None:
        """Deliver a forwarder batch, equivalent to per-message
        :meth:`receive` calls.

        Delivery stays message-by-message (a subscriber can fail this
        daemon mid-batch, and the messages behind the trip wire must
        drop exactly as they would sequentially); the win is the batch
        window the bus opens around it — batch sinks (the DSOS store)
        buffer their per-message work and flush it once per batch.
        """
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        if len(messages) == 1:
            # A batch window around one message buys nothing — skip the
            # begin/flush scaffolding (same failed-daemon check, same
            # per-row ingest the window's flush would perform).
            self.receive(messages[0])
            return
        bus = self.streams
        remainder = None
        bus.begin_batch()
        try:
            for i, message in enumerate(messages):
                if self._failed:
                    remainder = messages[i:]
                    break
                bus.publish(message)
        finally:
            bus.end_batch()
        if remainder is not None:
            for message in remainder:
                self.receive(message)

    # -- failure injection ------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Crash the daemon: everything sent to it from now on is lost
        (Streams is best-effort — no reconnect, no resend), and its own
        queued-but-unsent outbox contents die with the process.  Batches
        already mid-transfer are packets on the wire and complete."""
        if self._express_spine is not None:
            self._express_spine.on_mutation()
        self._failed = True
        for fwd in self._forwarders:
            fwd.purge_on_crash()

    def recover(self) -> None:
        """Restart the daemon.  Nothing lost in between comes back."""
        self._failed = False

    # -- samplers -------------------------------------------------------------------

    def add_sampler(self, plugin, interval_s: float) -> None:
        """Run ``plugin`` every ``interval_s``, publishing metric sets."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        proc = self.env.process(self._sampler_loop(plugin, interval_s))
        self._samplers.append(proc)

    def _sampler_loop(self, plugin, interval_s: float):
        tag = f"metrics/{plugin.name}"
        while True:
            try:
                yield self.env.timeout(interval_s)
            except Interrupt:
                return
            metrics = plugin.sample(self.env.now)
            self.publish_now(
                tag,
                {
                    "producer": self.node.name,
                    "timestamp": self.env.now,
                    "metrics": metrics,
                },
            )

    def stop(self) -> None:
        """Stop sampler loops (forwarders idle out on their own)."""
        for proc in self._samplers:
            if proc.is_alive:
                proc.interrupt("daemon stopping")
        self._samplers.clear()
