"""ldmsd: the LDMS daemon and its stream-forwarding transport.

Each daemon owns a local :class:`~repro.ldms.streams.StreamsBus`.
Forward rules push matching messages to a peer daemon over the cluster
network through a *bounded* FIFO outbox drained by a forwarder process;
when the outbox is full the message is dropped (best-effort, no resend —
the Streams semantics the paper documents).  Samplers publish periodic
metric sets onto reserved ``metrics/<name>`` tags riding the same
fabric.

The application-facing :meth:`Ldmsd.publish` is a generator charging a
small, size-dependent publish cost to the caller — deliberately tiny,
because the paper's ablation shows the Streams API itself costs ~0.37 %;
it is the JSON *formatting* upstream that hurts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.ldms.streams import StreamMessage, StreamsBus
from repro.sim import Environment, Interrupt, Store

__all__ = ["Ldmsd", "ForwardStats"]


@dataclass
class ForwardStats:
    """Accounting for one forward rule."""

    enqueued: int = 0
    forwarded: int = 0
    dropped_overflow: int = 0
    bytes_forwarded: int = 0
    max_queue_depth: int = 0


class _Forwarder:
    """Pushes one tag's messages to one peer over the network.

    Messages queued behind the head of the outbox are coalesced into
    one network transfer of up to ``batch_size`` messages — the
    batching a real aggregation hop performs, and the reason stream
    transport keeps up with event bursts.
    """

    def __init__(
        self,
        env: Environment,
        owner: "Ldmsd",
        tag: str,
        peer: "Ldmsd",
        queue_depth: int,
        batch_size: int = 64,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.env = env
        self.owner = owner
        self.tag = tag
        self.peer = peer
        self.batch_size = batch_size
        self.outbox = Store(env, capacity=queue_depth)
        self.stats = ForwardStats()
        self.process = env.process(self._run())

    def enqueue(self, message: StreamMessage) -> None:
        if self.outbox.try_put(message):
            self.stats.enqueued += 1
            depth = len(self.outbox)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
        else:
            self.stats.dropped_overflow += 1

    def _run(self):
        network = self.owner.network
        while True:
            try:
                first = yield self.outbox.get()
            except Interrupt:
                return
            batch = [first]
            while len(batch) < self.batch_size:
                extra = self.outbox.try_get()
                if extra is None:
                    break
                batch.append(extra)
            total_bytes = sum(m.size_bytes for m in batch)
            if network is not None and self.owner.node.name != self.peer.node.name:
                yield from network.transfer(
                    self.owner.node.name, self.peer.node.name, total_bytes
                )
            self.stats.forwarded += len(batch)
            self.stats.bytes_forwarded += total_bytes
            for message in batch:
                self.peer.receive(message)


class Ldmsd:
    """One LDMS daemon on one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network | None = None,
        *,
        name: str = "ldmsd",
        forward_queue_depth: int = 65536,
        publish_overhead_s: float = 0.8e-6,
        loopback_bandwidth_bps: float = 4e9,
    ):
        if forward_queue_depth < 1:
            raise ValueError("forward_queue_depth must be >= 1")
        self.env = env
        self.node = node
        self.network = network
        self.name = name
        self.publish_overhead_s = publish_overhead_s
        self.loopback_bandwidth_bps = loopback_bandwidth_bps
        self.streams = StreamsBus()
        self._forwarders: list[_Forwarder] = []
        self._samplers: list = []
        self._failed = False
        #: Messages discarded because the daemon was down.
        self.dropped_while_failed = 0
        node.register_daemon(name, self)

    # -- stream topology -----------------------------------------------------

    def add_stream_forward(self, tag: str, peer: "Ldmsd", queue_depth: int | None = None) -> None:
        """Push every message on ``tag`` to ``peer`` (aggregation hop)."""
        if peer is self:
            raise ValueError("a daemon cannot forward to itself")
        fwd = _Forwarder(
            self.env,
            self,
            tag,
            peer,
            queue_depth or 65536,
        )
        self._forwarders.append(fwd)
        self.streams.subscribe(tag, fwd.enqueue)

    def forward_stats(self) -> list[ForwardStats]:
        return [f.stats for f in self._forwarders]

    # -- the app-facing Streams API -------------------------------------------

    def publish(self, tag: str, payload, fmt: str = "json"):
        """Generator: publish to the local bus, charging publish cost.

        ``payload`` may be a pre-formatted string or any JSON-serializable
        object (serialized here as the API does).

        Best-effort all the way down: publishing into a failed daemon
        costs the caller the same tiny send time and silently loses the
        message — monitoring failure never breaks the application.
        """
        if not isinstance(payload, str):
            payload = json.dumps(payload, separators=(",", ":"))
        message = StreamMessage(
            tag=tag,
            payload=payload,
            fmt=fmt,
            src_node=self.node.name,
            publish_time=self.env.now,
        )
        cost = self.publish_overhead_s + message.size_bytes / self.loopback_bandwidth_bps
        yield self.env.timeout(cost)
        if self._failed:
            self.dropped_while_failed += 1
            return 0
        delivered = self.streams.publish(message)
        return delivered

    def publish_now(self, tag: str, payload, fmt: str = "json") -> int:
        """Zero-cost publish for daemon-internal producers (samplers)."""
        if self._failed:
            self.dropped_while_failed += 1
            return 0
        if not isinstance(payload, str):
            payload = json.dumps(payload, separators=(",", ":"))
        message = StreamMessage(
            tag=tag,
            payload=payload,
            fmt=fmt,
            src_node=self.node.name,
            publish_time=self.env.now,
        )
        return self.streams.publish(message)

    # -- receiving from peers ----------------------------------------------------

    def receive(self, message: StreamMessage) -> None:
        """Deliver a forwarded message to this daemon's local bus."""
        if self._failed:
            self.dropped_while_failed += 1
            return
        self.streams.publish(message)

    # -- failure injection ------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Crash the daemon: everything sent to it from now on is lost
        (Streams is best-effort — no reconnect, no resend)."""
        self._failed = True

    def recover(self) -> None:
        """Restart the daemon.  Nothing lost in between comes back."""
        self._failed = False

    # -- samplers -------------------------------------------------------------------

    def add_sampler(self, plugin, interval_s: float) -> None:
        """Run ``plugin`` every ``interval_s``, publishing metric sets."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        proc = self.env.process(self._sampler_loop(plugin, interval_s))
        self._samplers.append(proc)

    def _sampler_loop(self, plugin, interval_s: float):
        tag = f"metrics/{plugin.name}"
        while True:
            try:
                yield self.env.timeout(interval_s)
            except Interrupt:
                return
            metrics = plugin.sample(self.env.now)
            self.publish_now(
                tag,
                {
                    "producer": self.node.name,
                    "timestamp": self.env.now,
                    "metrics": metrics,
                },
            )

    def stop(self) -> None:
        """Stop sampler loops (forwarders idle out on their own)."""
        for proc in self._samplers:
            if proc.is_alive:
                proc.interrupt("daemon stopping")
        self._samplers.clear()
