"""ldmsd: the LDMS daemon and its stream-forwarding transport.

Each daemon owns a local :class:`~repro.ldms.streams.StreamsBus`.
Forward rules push matching messages to a peer daemon over the cluster
network through a *bounded* FIFO outbox drained by a forwarder process;
when the outbox is full the message is dropped (best-effort, no resend —
the Streams semantics the paper documents).  Samplers publish periodic
metric sets onto reserved ``metrics/<name>`` tags riding the same
fabric.

The application-facing :meth:`Ldmsd.publish` is a generator charging a
small, size-dependent publish cost to the caller — deliberately tiny,
because the paper's ablation shows the Streams API itself costs ~0.37 %;
it is the JSON *formatting* upstream that hurts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.ldms.streams import StreamMessage, StreamsBus
from repro.sim import Environment, Interrupt, Store
from repro.telemetry import trace as _trace
from repro.telemetry.collector import collector_for

__all__ = ["Ldmsd", "ForwardStats"]


class _BusTelemetry:
    """Bridge from one daemon's bus to the env's trace collector.

    Installed unconditionally; every hook is a single weak-dict miss
    when no collector is installed, so the untraced hot path is
    untouched.
    """

    __slots__ = ("daemon",)

    def __init__(self, daemon: "Ldmsd"):
        self.daemon = daemon

    def on_publish(self, message: StreamMessage, delivered: int) -> None:
        if not message.trace_id:
            return
        collector = collector_for(self.daemon.env)
        if collector is None:
            return
        outcome = _trace.DELIVERED if delivered else _trace.DROP_NO_SUBSCRIBER
        collector.hop(
            message.trace_id, _trace.STAGE_BUS, self.daemon.node.name, outcome
        )


@dataclass
class ForwardStats:
    """Accounting for one forward rule."""

    enqueued: int = 0
    forwarded: int = 0
    dropped_overflow: int = 0
    bytes_forwarded: int = 0
    max_queue_depth: int = 0


class _Forwarder:
    """Pushes one tag's messages to one peer over the network.

    Messages queued behind the head of the outbox are coalesced into
    one network transfer of up to ``batch_size`` messages — the
    batching a real aggregation hop performs, and the reason stream
    transport keeps up with event bursts.
    """

    def __init__(
        self,
        env: Environment,
        owner: "Ldmsd",
        tag: str,
        peer: "Ldmsd",
        queue_depth: int,
        batch_size: int = 64,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.env = env
        self.owner = owner
        self.tag = tag
        self.peer = peer
        self.batch_size = batch_size
        self.outbox = Store(env, capacity=queue_depth)
        self.stats = ForwardStats()
        self.process = env.process(self._run())

    def enqueue(self, message: StreamMessage) -> None:
        if self.outbox.try_put(message):
            self.stats.enqueued += 1
            depth = len(self.outbox)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            collector = collector_for(self.env)
            if collector is not None:
                node = self.owner.node.name
                if message.trace_id:
                    # The forward hop spans outbox wait + batched transfer.
                    collector.open_hop(message.trace_id, _trace.STAGE_FORWARD, node)
                collector.gauge(f"outbox_depth/{node}/{self.tag}", depth)
        else:
            self.stats.dropped_overflow += 1
            if message.trace_id:
                collector = collector_for(self.env)
                if collector is not None:
                    collector.hop(
                        message.trace_id,
                        _trace.STAGE_FORWARD,
                        self.owner.node.name,
                        _trace.DROP_OVERFLOW,
                    )

    def _run(self):
        network = self.owner.network
        while True:
            try:
                first = yield self.outbox.get()
            except Interrupt:
                return
            batch = [first]
            while len(batch) < self.batch_size:
                extra = self.outbox.try_get()
                if extra is None:
                    break
                batch.append(extra)
            total_bytes = sum(m.size_bytes for m in batch)
            if network is not None and self.owner.node.name != self.peer.node.name:
                yield from network.transfer(
                    self.owner.node.name, self.peer.node.name, total_bytes
                )
            self.stats.forwarded += len(batch)
            self.stats.bytes_forwarded += total_bytes
            collector = collector_for(self.env)
            for message in batch:
                if collector is not None and message.trace_id:
                    collector.close_hop(
                        message.trace_id,
                        _trace.STAGE_FORWARD,
                        self.owner.node.name,
                        _trace.FORWARDED,
                    )
                self.peer.receive(message)


class Ldmsd:
    """One LDMS daemon on one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network | None = None,
        *,
        name: str = "ldmsd",
        forward_queue_depth: int = 65536,
        publish_overhead_s: float = 0.8e-6,
        loopback_bandwidth_bps: float = 4e9,
    ):
        if forward_queue_depth < 1:
            raise ValueError("forward_queue_depth must be >= 1")
        self.env = env
        self.node = node
        self.network = network
        self.name = name
        self.publish_overhead_s = publish_overhead_s
        self.loopback_bandwidth_bps = loopback_bandwidth_bps
        self.streams = StreamsBus()
        self.streams.telemetry = _BusTelemetry(self)
        self._forwarders: list[_Forwarder] = []
        self._samplers: list = []
        self._failed = False
        #: Messages discarded because the daemon was down.
        self.dropped_while_failed = 0
        node.register_daemon(name, self)

    # -- stream topology -----------------------------------------------------

    def add_stream_forward(self, tag: str, peer: "Ldmsd", queue_depth: int | None = None) -> None:
        """Push every message on ``tag`` to ``peer`` (aggregation hop)."""
        if peer is self:
            raise ValueError("a daemon cannot forward to itself")
        fwd = _Forwarder(
            self.env,
            self,
            tag,
            peer,
            queue_depth or 65536,
        )
        self._forwarders.append(fwd)
        self.streams.subscribe(tag, fwd.enqueue)

    def forward_stats(self) -> list[ForwardStats]:
        return [f.stats for f in self._forwarders]

    def stats_snapshot(self) -> dict:
        """Merged bus + per-rule forward accounting as one plain dict.

        The single entry point health reports (and operators) use —
        callers no longer reach into ``_Forwarder`` internals.
        """
        return {
            "name": self.name,
            "node": self.node.name,
            "failed": self._failed,
            "dropped_while_failed": self.dropped_while_failed,
            "bus": {
                "published": self.streams.stats.published,
                "delivered": self.streams.stats.delivered,
                "dropped_no_subscriber": self.streams.stats.dropped_no_subscriber,
                "bytes_published": self.streams.stats.bytes_published,
            },
            "forwards": [
                {
                    "tag": f.tag,
                    "peer": f.peer.node.name,
                    "enqueued": f.stats.enqueued,
                    "forwarded": f.stats.forwarded,
                    "dropped_overflow": f.stats.dropped_overflow,
                    "bytes_forwarded": f.stats.bytes_forwarded,
                    "max_queue_depth": f.stats.max_queue_depth,
                    "queue_depth": len(f.outbox),
                }
                for f in self._forwarders
            ],
        }

    # -- the app-facing Streams API -------------------------------------------

    def publish(self, tag: str, payload, fmt: str = "json", trace_id: str = ""):
        """Generator: publish to the local bus, charging publish cost.

        ``payload`` may be a pre-formatted string or any JSON-serializable
        object (serialized here as the API does).

        Best-effort all the way down: publishing into a failed daemon
        costs the caller the same tiny send time and silently loses the
        message — monitoring failure never breaks the application.
        """
        if not isinstance(payload, str):
            payload = json.dumps(payload, separators=(",", ":"))
        message = StreamMessage(
            tag=tag,
            payload=payload,
            fmt=fmt,
            src_node=self.node.name,
            publish_time=self.env.now,
            trace_id=trace_id,
        )
        cost = self.publish_overhead_s + message.size_bytes / self.loopback_bandwidth_bps
        t0 = self.env.now
        yield self.env.timeout(cost)
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.DROP_DAEMON_FAILED)
            return 0
        self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.PUBLISHED, t_in=t0)
        delivered = self.streams.publish(message)
        return delivered

    def publish_now(self, tag: str, payload, fmt: str = "json", trace_id: str = "") -> int:
        """Zero-cost publish for daemon-internal producers (samplers)."""
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(trace_id, _trace.STAGE_PUBLISH, _trace.DROP_DAEMON_FAILED)
            return 0
        if not isinstance(payload, str):
            payload = json.dumps(payload, separators=(",", ":"))
        message = StreamMessage(
            tag=tag,
            payload=payload,
            fmt=fmt,
            src_node=self.node.name,
            publish_time=self.env.now,
            trace_id=trace_id,
        )
        return self.streams.publish(message)

    def _record_hop(
        self, trace_id: str, stage: str, outcome: str, t_in: float | None = None
    ) -> None:
        if not trace_id:
            return
        collector = collector_for(self.env)
        if collector is not None:
            collector.hop(trace_id, stage, self.node.name, outcome, t_in=t_in)

    # -- receiving from peers ----------------------------------------------------

    def receive(self, message: StreamMessage) -> None:
        """Deliver a forwarded message to this daemon's local bus."""
        if self._failed:
            self.dropped_while_failed += 1
            self._record_hop(
                message.trace_id, _trace.STAGE_RECEIVE, _trace.DROP_DAEMON_FAILED
            )
            return
        self.streams.publish(message)

    # -- failure injection ------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Crash the daemon: everything sent to it from now on is lost
        (Streams is best-effort — no reconnect, no resend)."""
        self._failed = True

    def recover(self) -> None:
        """Restart the daemon.  Nothing lost in between comes back."""
        self._failed = False

    # -- samplers -------------------------------------------------------------------

    def add_sampler(self, plugin, interval_s: float) -> None:
        """Run ``plugin`` every ``interval_s``, publishing metric sets."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        proc = self.env.process(self._sampler_loop(plugin, interval_s))
        self._samplers.append(proc)

    def _sampler_loop(self, plugin, interval_s: float):
        tag = f"metrics/{plugin.name}"
        while True:
            try:
                yield self.env.timeout(interval_s)
            except Interrupt:
                return
            metrics = plugin.sample(self.env.now)
            self.publish_now(
                tag,
                {
                    "producer": self.node.name,
                    "timestamp": self.env.now,
                    "metrics": metrics,
                },
            )

    def stop(self) -> None:
        """Stop sampler loops (forwarders idle out on their own)."""
        for proc in self._samplers:
            if proc.is_alive:
                proc.interrupt("daemon stopping")
        self._samplers.clear()
