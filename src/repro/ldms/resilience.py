"""Retry/backoff policy for the self-healing transport paths.

Shared by the forwarder's per-hop retry loop and the connector's
reconnect-after-spill loop.  Backoff is exponential with a cap, and the
jitter is *deterministic*: a multiplicative hash of ``(key, attempt)``
rather than an RNG draw, so enabling resilience consumes no random
numbers and a seeded campaign replays bit-for-bit — while distinct
retriers (different keys) still decorrelate, which is all jitter is for.

This lives here rather than in :mod:`repro.faults` because
:mod:`repro.ldms.daemon` needs it and the faults package imports the
LDMS layer (the dependency only points downward).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "jitter_factor"]

#: Knuth's multiplicative-hash constant; 40503 is its 16-bit analogue.
_MIX_A = 2654435761
_MIX_B = 40503


def jitter_factor(key: int, attempt: int) -> float:
    """Deterministic jitter multiplier in ``[0.5, 1.0)``.

    Pure function of ``(key, attempt)``: the same retrier backs off
    identically on every same-seed run, different retriers spread out.
    """
    h = (key * _MIX_A + attempt * _MIX_B) % 1024
    return 0.5 + h / 2048.0


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` bounds every retry loop — a simulation driven with
    ``env.run(until=None)`` must drain, so nothing may retry forever.
    """

    max_attempts: int = 4
    base_s: float = 1e-3
    cap_s: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError("need 0 < base_s <= cap_s")

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before retry ``attempt`` (1-based) for retrier ``key``."""
        raw = min(self.base_s * (2 ** (attempt - 1)), self.cap_s)
        return raw * jitter_factor(key, attempt)
