"""Sampler plugins: periodic node-level metric sets.

LDMS's original job is synchronous system telemetry; the paper's
framework rides the same daemons.  We provide the sampler interface and
a meminfo-style plugin so experiments can correlate application I/O
events with node state — the cross-correlation use case the paper's
introduction motivates.
"""

from __future__ import annotations

from repro.cluster.node import Node

__all__ = ["SamplerPlugin", "MeminfoSampler", "LoadSampler"]


class SamplerPlugin:
    """Interface: ``sample(now) -> dict[str, float]``."""

    #: Plugin name; metric sets publish on tag ``metrics/<name>``.
    name = "sampler"

    def sample(self, now: float) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError


class MeminfoSampler(SamplerPlugin):
    """Reports the node's simulated memory occupancy."""

    name = "meminfo"

    def __init__(self, node: Node):
        self.node = node

    def sample(self, now: float) -> dict:
        total = self.node.memory.capacity
        used = self.node.memory.level
        return {
            "MemTotal": float(total),
            "MemUsed": float(used),
            "MemFree": float(total - used),
        }


class LoadSampler(SamplerPlugin):
    """Reports the shared file-system load factor seen from this node.

    This is the "system behaviour" series the paper's Grafana dashboards
    put next to the I/O timeline to explain variability.
    """

    name = "fsload"

    def __init__(self, load_process):
        self.load = load_process

    def sample(self, now: float) -> dict:
        return {"load_factor": float(self.load.factor(now))}
