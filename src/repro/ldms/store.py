"""Store plugins: terminal subscribers that persist stream data.

:class:`CsvStreamStore` reproduces the pipeline stage shown in the
paper's Figure 3: the JSON message published to LDMS Streams is
flattened into CSV rows — one row per ``seg`` entry — under exactly the
header the figure prints.  (The DSOS store plugin lives in
:mod:`repro.dsos.store_plugin` since it needs the database client.)
"""

from __future__ import annotations

import json

from repro.ldms.streams import StreamMessage

__all__ = ["CsvStreamStore", "StorePluginError", "CSV_HEADER"]

#: The exact flattened header of Figure 3 (bottom).
CSV_HEADER = [
    "module",
    "uid",
    "ProducerName",
    "switches",
    "file",
    "rank",
    "flushes",
    "record_id",
    "exe",
    "max_byte",
    "type",
    "job_id",
    "op",
    "cnt",
    "seg:off",
    "seg:pt_sel",
    "seg:dur",
    "seg:len",
    "seg:ndims",
    "seg:reg_hslab",
    "seg:irreg_hslab",
    "seg:data_set",
    "seg:npoints",
    "seg:timestamp",
]


class StorePluginError(RuntimeError):
    """Raised for store misconfiguration (not per-message parse noise)."""


class CsvStreamStore:
    """Flattens JSON stream messages into Figure-3-style CSV rows."""

    def __init__(self, daemon, tag: str):
        self.tag = tag
        self.rows: list[dict] = []
        self.parse_errors = 0
        self.messages_stored = 0
        daemon.streams.subscribe(tag, self.on_message)

    def on_message(self, message: StreamMessage) -> None:
        """Bus callback: parse, flatten, append.  Bad payloads are
        counted and skipped (the pipeline must not die on one datum)."""
        try:
            data = json.loads(message.payload)
        except json.JSONDecodeError:
            self.parse_errors += 1
            return
        if not isinstance(data, dict):
            self.parse_errors += 1
            return
        segments = data.get("seg") or [{}]
        for seg in segments:
            row = {}
            for column in CSV_HEADER:
                if column.startswith("seg:"):
                    row[column] = seg.get(column[4:], "N/A")
                else:
                    row[column] = data.get(column, "N/A")
            self.rows.append(row)
        self.messages_stored += 1

    # -- output ------------------------------------------------------------

    def header_line(self) -> str:
        """The CSV header exactly as Figure 3 prints it."""
        return "#" + ",".join(CSV_HEADER)

    def to_csv(self) -> str:
        lines = [self.header_line()]
        for row in self.rows:
            lines.append(",".join(str(row[c]) for c in CSV_HEADER))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
