"""LDMS Streams: the tag-addressed publish/subscribe bus.

One bus lives inside each ldmsd.  Publishing is synchronous, local and
best-effort: each message is handed to the callbacks subscribed to its
tag *at that moment*; if none exist the message is dropped and counted.
There is no replay — exactly the "no caching, subscribe before publish"
behaviour the paper calls out in Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StreamMessage", "StreamsBus"]


@dataclass(frozen=True, slots=True)
class StreamMessage:
    """One stream datum: a tagged string/JSON payload with provenance."""

    tag: str
    payload: str
    fmt: str = "json"  # "json" or "string", per the Streams API
    src_node: str = ""
    publish_time: float = 0.0
    #: Optional pipeline-telemetry trace id (repro.telemetry).  Carried
    #: out of band — never part of the payload, so tracing cannot change
    #: message sizes or costs.
    trace_id: str = ""
    #: Fast-lane sidecar: the dict ``json.loads(payload)`` yields,
    #: attached by publishers that built the payload from a compiled
    #: template.  Out of band like ``trace_id`` — consumers that use it
    #: (the DSOS store) skip the parse; everything else ignores it.
    parsed: dict | None = None

    def __post_init__(self) -> None:
        if self.fmt not in ("json", "string"):
            raise ValueError(f"stream format must be json or string, got {self.fmt!r}")

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


@dataclass
class BusStats:
    """Delivery accounting for one bus."""

    published: int = 0
    delivered: int = 0
    dropped_no_subscriber: int = 0
    bytes_published: int = 0


class StreamsBus:
    """Per-daemon pub/sub fabric."""

    #: Express-spine back-pointer (repro.core.batch): while an armed
    #: spine virtualizes traffic over this bus, topology edits must
    #: de-arm it first so in-flight virtual rows deliver to the
    #: topology they were sent into.
    _express_spine = None

    def __init__(self):
        self._subscribers: dict[str, list] = {}
        self.stats = BusStats()
        #: Optional telemetry hook with ``on_publish(message, delivered)``
        #: (set by the owning daemon; None on standalone buses).
        self.telemetry = None
        self._batch_depth = 0
        self._batch_sinks: list = []

    # -- batch windows -------------------------------------------------------
    #
    # A batch window brackets a burst of publishes delivered in one host
    # step (a forwarder handing over its transfer batch).  Subscribers
    # that can amortize per-message work (the DSOS store's ingest) check
    # ``in_batch`` to buffer, and register a flush hook that runs when
    # the window closes.  Purely host-side: no simulated time passes
    # inside a window, and per-message delivery semantics are unchanged.

    @property
    def in_batch(self) -> bool:
        """True while a batch window is open (see :meth:`begin_batch`)."""
        return self._batch_depth > 0

    def add_batch_sink(self, flush) -> None:
        """Register ``flush()`` to run whenever a batch window closes."""
        if not callable(flush):
            raise TypeError(f"batch sink {flush!r} is not callable")
        self._batch_sinks.append(flush)

    def begin_batch(self) -> None:
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Close a window; flush hooks run even if delivery aborted."""
        if self._batch_depth <= 0:
            raise RuntimeError("end_batch without begin_batch")
        self._batch_depth -= 1
        if self._batch_depth == 0:
            for flush in self._batch_sinks:
                flush()

    def publish_batch(self, messages) -> int:
        """Publish several messages inside one batch window.

        Exactly equivalent to sequential :meth:`publish` calls; returns
        the number of messages published.
        """
        self.begin_batch()
        try:
            n = 0
            for message in messages:
                self.publish(message)
                n += 1
            return n
        finally:
            self.end_batch()

    def subscribe(self, tag: str, callback) -> None:
        """Register ``callback(message)`` for messages matching ``tag``."""
        if not callable(callback):
            raise TypeError(f"subscriber callback {callback!r} is not callable")
        if self._express_spine is not None:
            self._express_spine.on_subscribe(self, tag)
        self._subscribers.setdefault(tag, []).append(callback)

    def unsubscribe(self, tag: str, callback) -> None:
        try:
            self._subscribers.get(tag, []).remove(callback)
        except ValueError:
            raise KeyError(f"callback not subscribed to tag {tag!r}") from None

    def subscriber_count(self, tag: str) -> int:
        return len(self._subscribers.get(tag, ()))

    def publish(self, message: StreamMessage) -> int:
        """Deliver to current subscribers; returns the delivery count.

        Zero subscribers means the datum is gone — counted, not raised,
        because best-effort delivery is the protocol.
        """
        self.stats.published += 1
        self.stats.bytes_published += message.size_bytes
        callbacks = self._subscribers.get(message.tag)
        if not callbacks:
            self.stats.dropped_no_subscriber += 1
            if self.telemetry is not None:
                self.telemetry.on_publish(message, 0)
            return 0
        # Count each *successful* callback invocation: a callback that
        # raises or mutates the subscription list mid-delivery must not
        # skew the ledger (delivery is to the snapshot taken above).
        delivered = 0
        for callback in list(callbacks):
            callback(message)
            delivered += 1
            self.stats.delivered += 1
        if self.telemetry is not None:
            self.telemetry.on_publish(message, delivered)
        return delivered
