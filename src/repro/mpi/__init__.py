"""Simulated MPI runtime.

Applications in the paper are MPI codes; this package provides the
subset of MPI semantics their I/O patterns need: per-rank processes on
allocated nodes, barriers, time-charged collectives, and an MPI-IO file
API with both *independent* (``write_at``) and *collective two-phase*
(``write_at_all``) data movement — the axis the paper's MPI-IO-TEST
benchmark sweeps.

The MPI-IO layer sits on top of each rank's POSIX client, so Darshan's
POSIX module observes the file-system-level operations of collective
aggregators while the MPIIO module observes every rank's library-level
call, matching real Darshan's layered records.
"""

from repro.mpi.communicator import Communicator, RankContext
from repro.mpi.io import MPIIOFile, CollectiveError

__all__ = ["CollectiveError", "Communicator", "MPIIOFile", "RankContext"]
