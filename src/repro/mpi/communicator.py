"""Communicators, rank contexts and collective-time models.

Collective costs use the standard log-tree model: a ``size``-rank
collective moving ``nbytes`` per rank costs
``ceil(log2(size)) · (alpha + nbytes / beta)`` where ``alpha`` is the
per-hop launch latency and ``beta`` the fabric bandwidth.  Barriers are
exact synchronization points (counting barrier + sync cost); every rank
must call every collective in the same order, as in MPI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.node import Node
from repro.fs.posix import PosixClient
from repro.sim import Environment

__all__ = ["Communicator", "RankContext"]


@dataclass
class RankContext:
    """One MPI rank: its index, host node and POSIX client."""

    rank: int
    node: Node
    posix: PosixClient


class Communicator:
    """A fixed group of ranks with barrier/collective operations."""

    def __init__(
        self,
        env: Environment,
        ranks: list[RankContext],
        *,
        alpha_s: float = 2.0e-6,
        beta_bps: float = 8e9,
    ):
        if not ranks:
            raise ValueError("communicator needs at least one rank")
        got = [rc.rank for rc in ranks]
        if got != list(range(len(ranks))):
            raise ValueError(f"ranks must be 0..n-1 in order, got {got}")
        self.env = env
        self.ranks = list(ranks)
        self.alpha_s = alpha_s
        self.beta_bps = beta_bps
        self._barrier_count = 0
        self._barrier_event = env.event()
        #: Scratch used by collective I/O to gather per-rank payloads.
        self._gather_buffers: dict[str, dict[int, object]] = {}

    @property
    def size(self) -> int:
        return len(self.ranks)

    def rank_context(self, rank: int) -> RankContext:
        return self.ranks[rank]

    def nodes(self) -> list[Node]:
        """Distinct nodes hosting ranks, in rank order."""
        seen: dict[str, Node] = {}
        for rc in self.ranks:
            seen.setdefault(rc.node.name, rc.node)
        return list(seen.values())

    # -- synchronization ---------------------------------------------------

    def _rounds(self) -> int:
        return max(1, math.ceil(math.log2(self.size))) if self.size > 1 else 0

    def sync_cost(self) -> float:
        """Latency of one full synchronization (dissemination barrier)."""
        return self._rounds() * self.alpha_s

    def barrier(self, rank: int):
        """Counting barrier; all ranks block until the last arrives."""
        if self.size == 1:
            return
        self._barrier_count += 1
        if self._barrier_count == self.size:
            self._barrier_count = 0
            release, self._barrier_event = self._barrier_event, self.env.event()
            release.succeed()
        else:
            yield self._barrier_event
        yield self.env.timeout(self.sync_cost())

    # -- collectives (time-charged models) -----------------------------------

    def _collective_cost(self, nbytes: int, rounds_factor: int = 1) -> float:
        return self._rounds() * rounds_factor * (
            self.alpha_s + nbytes / self.beta_bps
        )

    def bcast(self, rank: int, nbytes: int):
        """Broadcast ``nbytes`` from root; synchronizing, log-tree cost."""
        yield from self.barrier(rank)
        yield self.env.timeout(self._collective_cost(nbytes))

    def allreduce(self, rank: int, nbytes: int):
        """Reduce-then-broadcast: two tree traversals."""
        yield from self.barrier(rank)
        yield self.env.timeout(self._collective_cost(nbytes, rounds_factor=2))

    def alltoall(self, rank: int, nbytes_per_pair: int):
        """Every rank exchanges ``nbytes_per_pair`` with every other rank."""
        yield from self.barrier(rank)
        volume = nbytes_per_pair * max(self.size - 1, 0)
        yield self.env.timeout(
            self._rounds() * self.alpha_s + volume / self.beta_bps
        )

    # -- gather scratch for collective I/O ------------------------------------

    def gather_put(self, key: str, rank: int, value: object) -> dict | None:
        """Deposit this rank's contribution; returns the full map when
        the last rank deposits, else None."""
        buf = self._gather_buffers.setdefault(key, {})
        if rank in buf:
            raise RuntimeError(
                f"rank {rank} deposited twice into gather buffer {key!r}"
            )
        buf[rank] = value
        if len(buf) == self.size:
            return self._gather_buffers.pop(key)
        return None
