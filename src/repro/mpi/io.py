"""MPI-IO: independent and collective (two-phase) file access.

Independent access (``write_at``/``read_at``) goes straight through the
calling rank's POSIX client.  Collective access (``write_at_all``/
``read_at_all``) implements ROMIO-style two-phase I/O:

1. all ranks synchronize and gather their (offset, nbytes) intents;
2. the data is exchanged to *aggregator* ranks (one per ``cb_nodes``
   node, like ROMIO's ``cb_config_list``), charged as an all-to-all;
3. aggregators issue large contiguous POSIX operations covering the
   union extent, chunked at ``cb_buffer_size``;
4. a closing barrier releases everyone.

Because aggregators do the POSIX calls, Darshan's POSIX module sees few
large well-formed accesses under collective I/O while the MPIIO module
still records one event per rank per call — exactly the two-layer
record structure real Darshan logs show, and the reason collective and
independent runs publish such different LDMS message counts in
Table IIa.
"""

from __future__ import annotations

from repro.fs.base import FileHandle, OpRecord
from repro.mpi.communicator import Communicator

__all__ = ["MPIIOFile", "CollectiveError"]


class CollectiveError(RuntimeError):
    """Misuse of the collective API (mismatched calls, reopened file)."""


class MPIIOFile:
    """A file opened across a communicator."""

    module = "MPIIO"

    def __init__(
        self,
        comm: Communicator,
        path: str,
        *,
        cb_nodes: int | None = None,
        cb_buffer_size: int = 16 * 2**20,
        data_sieving: bool = False,
        ds_buffer_size: int = 4 * 2**20,
    ):
        if cb_buffer_size <= 0:
            raise ValueError("cb_buffer_size must be positive")
        if ds_buffer_size <= 0:
            raise ValueError("ds_buffer_size must be positive")
        self.comm = comm
        self.env = comm.env
        self.path = path
        self.cb_buffer_size = cb_buffer_size
        #: ROMIO-style data sieving: on file systems without stripe
        #: alignment (NFS), collective writes do read-modify-write in
        #: ds_buffer-sized pieces — many more, smaller POSIX ops.  This
        #: is why the paper's NFS collective runs publish ~8x more
        #: messages and run slower than independent ones.
        self.data_sieving = data_sieving
        self.ds_buffer_size = ds_buffer_size
        self._handles: dict[int, FileHandle] = {}
        self._open = False
        self._coll_seq: dict[tuple[str, int], int] = {}
        self._coll_events: dict[str, object] = {}
        #: Instrumentation hooks (Darshan MPIIO module attaches here).
        self.hooks: list = []

        # Aggregators: the lowest rank on each of the first cb_nodes nodes.
        nodes = comm.nodes()
        n_agg = min(cb_nodes or len(nodes), len(nodes))
        agg_node_names = {node.name for node in nodes[:n_agg]}
        self.aggregator_ranks: list[int] = []
        seen: set[str] = set()
        for rc in comm.ranks:
            if rc.node.name in agg_node_names and rc.node.name not in seen:
                seen.add(rc.node.name)
                self.aggregator_ranks.append(rc.rank)

    def add_hook(self, hook) -> None:
        if not hasattr(hook, "after_op"):
            raise TypeError(f"hook {hook!r} lacks an after_op method")
        self.hooks.append(hook)

    def _dispatch(self, rank: int, record: OpRecord):
        context = self.comm.rank_context(rank).posix.context
        for hook in self.hooks:
            yield from hook.after_op(
                self.module, context, record, self._handles.get(rank)
            )

    # -- collective bookkeeping -------------------------------------------

    def _next_key(self, op: str, rank: int) -> str:
        seq = self._coll_seq.get((op, rank), 0)
        self._coll_seq[(op, rank)] = seq + 1
        return f"{op}:{seq}"

    def _collect(self, key: str, rank: int, value):
        """Gather per-rank values; every rank resumes with the full map."""
        ev = self._coll_events.get(key)
        if ev is None:
            ev = self.env.event()
            self._coll_events[key] = ev
        full = self.comm.gather_put(key, rank, value)
        if full is not None:
            del self._coll_events[key]
            ev.succeed(full)
            return full
        full = yield ev
        return full

    # -- open / close -------------------------------------------------------

    def open_all(self, rank: int, flags: str = "w"):
        """Collective open: every rank opens at the POSIX level."""
        if rank in self._handles:
            raise CollectiveError(f"rank {rank} already opened {self.path!r}")
        start = self.env.now
        rc = self.comm.rank_context(rank)
        # Rank 0 creates the file first so others open an existing file.
        if rank == 0:
            handle = yield from rc.posix.open(self.path, flags)
            self._handles[rank] = handle
            self._open = True
        yield from self.comm.barrier(rank)
        if rank != 0:
            reopen_flags = "a" if flags in ("w", "a") else flags
            handle = yield from rc.posix.open(self.path, reopen_flags)
            handle.position = 0
            self._handles[rank] = handle
        yield from self.comm.barrier(rank)
        record = OpRecord("open", self.path, 0, 0, start, self.env.now)
        yield from self._dispatch(rank, record)
        return self._handles[rank]

    def close_all(self, rank: int):
        """Collective close."""
        handle = self._require_handle(rank)
        start = self.env.now
        yield from self.comm.barrier(rank)
        rc = self.comm.rank_context(rank)
        yield from rc.posix.close(handle)
        del self._handles[rank]
        record = OpRecord("close", self.path, 0, 0, start, self.env.now)
        yield from self._dispatch(rank, record)

    # -- independent access ----------------------------------------------------

    def write_at(self, rank: int, offset: int, nbytes: int):
        """Independent write through the rank's own POSIX client."""
        handle = self._require_handle(rank)
        start = self.env.now
        rc = self.comm.rank_context(rank)
        yield from rc.posix.write(handle, nbytes, offset)
        record = OpRecord("write", self.path, offset, nbytes, start, self.env.now)
        yield from self._dispatch(rank, record)
        return record

    def read_at(self, rank: int, offset: int, nbytes: int):
        """Independent read through the rank's own POSIX client."""
        handle = self._require_handle(rank)
        start = self.env.now
        rc = self.comm.rank_context(rank)
        under = yield from rc.posix.read(handle, nbytes, offset)
        record = OpRecord("read", self.path, offset, under.nbytes, start, self.env.now)
        yield from self._dispatch(rank, record)
        return record

    # -- collective access ---------------------------------------------------

    def write_at_all(self, rank: int, offset: int, nbytes: int):
        """Collective two-phase write (all ranks must call)."""
        record = yield from self._two_phase("write", rank, offset, nbytes)
        return record

    def read_at_all(self, rank: int, offset: int, nbytes: int):
        """Collective two-phase read (all ranks must call)."""
        record = yield from self._two_phase("read", rank, offset, nbytes)
        return record

    def _two_phase(self, op: str, rank: int, offset: int, nbytes: int):
        handle = self._require_handle(rank)
        start = self.env.now
        key = self._next_key(op, rank)

        # Phase 0: gather everyone's intent.
        intents = yield from self._collect(key, rank, (offset, nbytes))

        # Phase 1: shuffle data between ranks and aggregators.
        yield from self.comm.alltoall(rank, nbytes // max(self.comm.size, 1))

        # Phase 2: aggregators cover the union extent with large
        # contiguous POSIX accesses, chunked at cb_buffer_size.
        if rank in self.aggregator_ranks:
            my_chunks = self._aggregator_chunks(rank, intents)
            rc = self.comm.rank_context(rank)
            for chunk_offset, chunk_len in my_chunks:
                if op == "write":
                    if self.data_sieving:
                        # Read-modify-write: the chunk goes through the
                        # server twice — once as ds-buffer-sized write
                        # pieces, once as the sieve's read pass (issued
                        # after the write so the extent exists and the
                        # full byte cost is charged).
                        pos = chunk_offset
                        remaining = chunk_len
                        while remaining > 0:
                            piece = min(self.ds_buffer_size, remaining)
                            yield from rc.posix.write(handle, piece, pos)
                            pos += piece
                            remaining -= piece
                        yield from rc.posix.read(handle, chunk_len, chunk_offset)
                    else:
                        yield from rc.posix.write(handle, chunk_len, chunk_offset)
                else:
                    yield from rc.posix.read(handle, chunk_len, chunk_offset)

        # Phase 3: closing sync.
        yield from self.comm.barrier(rank)
        record = OpRecord(
            op, self.path, offset, nbytes, start, self.env.now, collective=True
        )
        yield from self._dispatch(rank, record)
        return record

    def _aggregator_chunks(self, rank: int, intents: dict) -> list[tuple[int, int]]:
        """(offset, nbytes) chunks this aggregator is responsible for."""
        extents = [(off, n) for off, n in intents.values() if n > 0]
        if not extents:
            return []
        lo = min(off for off, _ in extents)
        hi = max(off + n for off, n in extents)
        chunks = []
        pos = lo
        index = 0
        my_index = self.aggregator_ranks.index(rank)
        n_agg = len(self.aggregator_ranks)
        while pos < hi:
            chunk = min(self.cb_buffer_size, hi - pos)
            if index % n_agg == my_index:
                chunks.append((pos, chunk))
            pos += chunk
            index += 1
        return chunks

    # -- helpers -------------------------------------------------------------

    def _require_handle(self, rank: int) -> FileHandle:
        handle = self._handles.get(rank)
        if handle is None:
            raise CollectiveError(
                f"rank {rank} has not opened {self.path!r} (call open_all first)"
            )
        return handle
