"""Deterministic discrete-event simulation (DES) kernel.

This package is the foundation every other subsystem builds on.  It
provides a process-based simulation model in the style of SimPy:

* :class:`~repro.sim.engine.Environment` — the event loop and simulated
  clock.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` —
  schedulable occurrences that processes wait on.
* :class:`~repro.sim.process.Process` — a generator-driven simulated
  process (``yield env.timeout(dt)`` style).
* :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Container` — contention primitives used to
  model file-system servers, network links and queues.
* :class:`~repro.sim.rng.RngRegistry` — named, reproducible random
  sub-streams derived from one root seed, so that a whole experiment
  campaign is a pure function of ``(seed, config)``.

The kernel is intentionally small and fully deterministic: two events
scheduled for the same simulated time fire in scheduling order (FIFO),
never in hash or heap-tiebreak order.
"""

from repro.sim.engine import Environment, SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.profile import ComponentCost, PipelineProfile
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RngRegistry, Distributions

__all__ = [
    "AllOf",
    "AnyOf",
    "ComponentCost",
    "Container",
    "Distributions",
    "Environment",
    "Event",
    "Interrupt",
    "PipelineProfile",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "Timeout",
]
