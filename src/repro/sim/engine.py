"""The simulation event loop.

:class:`Environment` owns the simulated clock and a priority queue of
triggered events.  Determinism guarantee: events scheduled for the same
simulated time are processed in the order they were scheduled (a
monotonically increasing sequence number breaks ties), so simulation
results depend only on the model and the seed — never on hash ordering
or heap internals.
"""

from __future__ import annotations

import heapq
from typing import Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for engine-level errors (e.g. running a finished sim)."""


class Environment:
    """Event loop, simulated clock and factory for events/processes.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock.  Experiments use an epoch
        offset here so that "absolute timestamps" look like wall-clock
        epochs (the quantity the paper's connector exposes).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, seq, event)
        self._seq = 0  # tie-breaker; also counts scheduled events
        self._strong_pending = 0  # queued events that keep the sim alive
        self._active_process: Optional[Process] = None
        self._horizon = float("inf")  # numeric run(until=) ceiling

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, weak: bool = False) -> None:
        """Enqueue a triggered event to be processed after ``delay``.

        ``weak=True`` marks the event as one that must not keep the
        simulation alive: :meth:`run` treats a queue holding only weak
        events as drained (the clock never advances into them).  Weak
        events scheduled *before* the last strong event are processed
        normally, in time order — they are invisible only at the end.
        Periodic observers (the diagnosis engine's evaluation ticks)
        use this so that opting into observation cannot extend a run.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if weak:
            event._weak = True
        else:
            self._strong_pending += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def advance_if_idle(self, when: float) -> bool:
        """Fast-forward the clock to ``when`` if nothing would notice.

        The columnar lane's macro-event rule: a process that knows the
        absolute completion time of a whole burst may move the clock
        there directly — *only* when no queued event (weak or strong)
        is due at or before ``when`` and ``when`` does not overrun a
        numeric ``run(until=...)`` horizon.  Under those conditions the
        jump is observationally identical to scheduling a timeout and
        draining the queue to it, minus the heap traffic: the DES clock
        rule ("the clock moves to the next due event") is preserved
        because ``when`` *is* the next due instant.

        Returns ``True`` on success; ``False`` means the caller must
        fall back to a real :meth:`timeout_at` yield.
        """
        if when < self._now:
            raise ValueError(
                f"advance_if_idle({when}) is in the past (now={self._now})"
            )
        if self._queue and self._queue[0][0] <= when:
            return False
        if when > self._horizon:
            return False
        self._now = when
        return True

    # -- factories -----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None, weak: bool = False) -> Timeout:
        """An event succeeding after ``delay`` simulated seconds.

        ``weak=True`` makes it a weak timeout: processed in time order
        while strong events remain, but never the reason the simulation
        keeps running (see :meth:`schedule`).
        """
        return Timeout(self, delay, value, weak=weak)

    def timeout_at(self, when: float, value: object = None) -> Event:
        """An event succeeding at the *absolute* simulated time ``when``.

        The coalesced-publish fast lane needs this: a process replacing
        two chained timeouts (``t1 = now + a``, ``t2 = t1 + b``) with one
        must schedule at the identically-computed absolute ``(now + a) +
        b`` — a single relative ``timeout(a + b)`` lands one float ULP
        away and breaks bit-exact equivalence with the chained path.
        """
        if when < self._now:
            raise ValueError(f"timeout_at({when}) is in the past (now={self._now})")
        event = Event(self)
        event._value = value
        self._strong_pending += 1
        heapq.heappush(self._queue, (when, self._seq, event))
        self._seq += 1
        return event

    def process(self, generator: Generator) -> Process:
        """Start a new simulated process driving ``generator``."""
        return Process(self, generator)

    def every(self, period_s: float, fn, *, weak: bool = False) -> Process:
        """Start a process calling ``fn()`` every ``period_s`` seconds.

        The canonical home of the periodic-observer pattern: with
        ``weak=True`` every tick is a weak timeout (see
        :meth:`schedule`), so arming an observer — a diagnosis engine,
        a fleet probe scanner — can never extend or perturb a run.
        ``fn`` is called after each period elapses, with the clock at
        the tick instant.
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")

        def _loop():
            while True:
                yield self.timeout(period_s, weak=weak)
                fn()

        return self.process(_loop())

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition succeeding when every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition succeeding when any event in ``events`` has."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("no more events")
        self._now, _, event = heapq.heappop(self._queue)
        if not event._weak:
            self._strong_pending -= 1
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event.ok and not event._defused:
            # An event failed and nothing was waiting on it: surface the
            # error instead of silently dropping it.
            raise event.value

    def run(self, until: "float | Event | None" = None) -> object:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until the clock reaches it) or an :class:`Event` (run until
        it is processed, returning its value).

        Clock rule: if the queue drains *before* a numeric horizon, the
        clock stays at the last processed event (the standard DES rule);
        it only advances to ``until`` when an event beyond the horizon
        remains pending.

        The three ``until`` variants dispatch events in separate inlined
        loops — this is the hottest code in the simulator, and per-event
        ``step()`` calls plus stop-condition re-checks cost several
        percent of campaign wall-clock.
        """
        queue = self._queue
        pop = heapq.heappop

        if until is None:
            # A queue holding only weak events counts as drained: the
            # clock stays at the last *strong* event, exactly where a
            # run without the weak observers would have stopped.
            while queue and self._strong_pending:
                self._now, _, event = pop(queue)
                if not event._weak:
                    self._strong_pending -= 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event.value
            return None

        if isinstance(until, Event):
            stop_event = until
            while queue and self._strong_pending and not stop_event._processed:
                self._now, _, event = pop(queue)
                if not event._weak:
                    self._strong_pending -= 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event.value
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the awaited event triggered"
                )
            if not stop_event._ok:
                raise stop_event.value
            return stop_event.value

        stop_time = float(until)
        if stop_time < self._now:
            raise SimulationError(
                f"until={stop_time} is in the past (now={self._now})"
            )
        # Weak events are ignored by the stop rules here too: a queue
        # holding only weak events is drained (clock stays), and only a
        # *strong* event beyond the horizon advances the clock to it.
        # The horizon is published so advance_if_idle cannot jump the
        # clock past ``until`` from inside a dispatched event.
        self._horizon = stop_time
        try:
            while queue and self._strong_pending:
                t = queue[0][0]
                if t > stop_time:
                    self._now = stop_time
                    break
                # Same-time drain: events dispatched at t that schedule
                # more work at t (zero delays are everywhere in the
                # stream path) are processed without re-checking the
                # horizon.
                while queue and queue[0][0] == t:
                    self._now, _, event = pop(queue)
                    if not event._weak:
                        self._strong_pending -= 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event.value
        finally:
            self._horizon = float("inf")
        return None
