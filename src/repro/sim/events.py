"""Event primitives for the DES kernel.

An :class:`Event` is the unit of coordination: processes ``yield`` events
and are resumed when the event *succeeds* (optionally carrying a value)
or *fails* (carrying an exception).  :class:`Timeout` is an event that
succeeds after a fixed simulated delay.  :class:`AllOf` / :class:`AnyOf`
are condition events composing several child events.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Interrupt", "EventError"]

# Sentinel distinguishing "not yet triggered" from a ``None`` value.
_PENDING = object()


class EventError(RuntimeError):
    """Raised on invalid event-state transitions (double trigger etc.)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary, caller-supplied object
    describing why the interrupt happened.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Lifecycle: *pending* → *triggered* (scheduled on the event queue) →
    *processed* (callbacks have run).  An event may only be triggered
    once; triggering it a second time raises :class:`EventError`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused", "_weak")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables ``cb(event)`` invoked when the event is processed.
        self.callbacks: list | None = []
        self._value: object = _PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False
        #: Weak events do not keep the simulation alive (see
        #: :meth:`Environment.schedule`).
        self._weak = False

    # -- introspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful when triggered."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise EventError(f"value of {self!r} is not yet available")
        return self._value

    # -- state transitions --------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise EventError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine does not re-raise.

        The engine raises unhandled failures at the end of the step in
        which they are processed; waiting on a failed event (a process
        yield or a condition) defuses it automatically.
        """
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation.

    ``weak=True`` schedules it as a weak event: it fires normally while
    strong events remain, but never keeps the simulation alive on its
    own (see :meth:`Environment.schedule`).
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        env: "Environment",
        delay: float,
        value: object = None,
        weak: bool = False,
    ):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay, weak=weak)


class _Condition(Event):
    """Base for events that fire as a function of several child events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events):
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        self._pending_count = sum(1 for ev in self.events if not ev.processed)
        # Check already-processed children first (e.g. AnyOf over a
        # finished timeout must fire immediately).
        if self._check_now():
            return
        for ev in self.events:
            if ev.processed:
                continue
            ev.callbacks.append(self._on_child)

    # Subclasses decide when the condition is satisfied.
    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        """Values of all processed-and-ok child events, in order."""
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.processed and ev.ok
        }

    def _check_now(self) -> bool:
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())
            return True
        return False

    def _on_child(self, child: Event) -> None:
        self._pending_count -= 1
        if self.triggered:
            return
        if not child.ok:
            child.defuse()
            self.fail(child.value)
            return
        self._check_now()


class AllOf(_Condition):
    """Condition event that succeeds when *all* child events have."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        # ``processed`` (not ``triggered``): a Timeout is triggered at
        # construction but only *fires* when the clock reaches it.
        return all(ev.processed and ev.ok for ev in self.events)


class AnyOf(_Condition):
    """Condition event that succeeds when *any* child event has.

    With zero children it succeeds immediately (vacuous truth mirrors
    SimPy semantics).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        if not self.events:
            return True
        return any(ev.processed and ev.ok for ev in self.events)
