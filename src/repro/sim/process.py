"""Generator-driven simulated processes.

A :class:`Process` wraps a Python generator; every value the generator
yields must be an :class:`~repro.sim.events.Event`, and the process is
resumed with the event's value when it fires (or has the event's
exception thrown into it when the event failed).  A process is itself an
event — it triggers when the generator returns — so processes can wait
on each other (fork/join).
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulated process.  Also an event: fires on return."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when
        #: ready to run or finished).
        self._target: Event | None = None
        self.name = getattr(generator, "__name__", "process")
        # Kick off at the current simulated time.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a dead process is an error; interrupting yourself is
        too (it would re-enter the running generator).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self.env.active_process is self:
            raise RuntimeError("a process is not allowed to interrupt itself")
        # Detach from whatever the process was waiting on, then schedule
        # an immediate resume that raises.
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # already detached
                pass
        wakeup = Event(self.env)
        wakeup.callbacks.append(self._resume_interrupt)
        wakeup._value = Interrupt(cause)
        wakeup._ok = True  # carried as a value; _resume_interrupt throws it
        self.env.schedule(wakeup)

    # -- driving the generator ----------------------------------------

    def _resume(self, event: Event) -> None:
        self._step(event, throw=not event.ok)

    def _resume_interrupt(self, event: Event) -> None:
        self._step(event, throw=True)

    def _step(self, event: Event, throw: bool) -> None:
        env = self.env
        prev, env._active_process = env._active_process, self
        try:
            if throw:
                if not event.ok:
                    event.defuse()
                try:
                    target = self._generator.throw(event.value)
                except StopIteration as stop:
                    self._finish(stop.value)
                    return
                except BaseException as exc:
                    self._crash(exc)
                    return
            else:
                try:
                    target = self._generator.send(event.value)
                except StopIteration as stop:
                    self._finish(stop.value)
                    return
                except BaseException as exc:
                    self._crash(exc)
                    return
            if not isinstance(target, Event):
                self._crash(
                    TypeError(
                        f"process {self.name!r} yielded {target!r}; "
                        "processes may only yield Event instances"
                    )
                )
                return
            self._target = target
            if target.processed:
                # Already fired: resume immediately (next engine step).
                wake = Event(env)
                wake._ok = target.ok
                wake._value = target._value
                wake.callbacks.append(self._resume)
                env.schedule(wake)
            else:
                target.callbacks.append(self._resume)
        finally:
            env._active_process = prev

    def _finish(self, value: object) -> None:
        self._target = None
        self.succeed(value)

    def _crash(self, exc: BaseException) -> None:
        self._target = None
        self.fail(exc)
