"""Sim-time profiler: where does pipeline latency live?

A :class:`PipelineProfile` attributes *simulated* seconds and event
counts to each pipeline component (connector publish, local bus,
forwarder hops, peer receive, store ingest) from the hop traces the
telemetry collector already records.  Attribution is exact by
construction: for every stored message the per-stage hop spans plus an
explicit ``unattributed`` residual (scheduling gaps between hops; also
negative when recovery hops overlap) sum to that message's end-to-end
latency, so the profile total always reconciles with the end-to-end
histogram — there is no "lost" time.

Opt-in and read-only: profiling consumes finished traces, it installs
nothing in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComponentCost", "PipelineProfile", "UNATTRIBUTED"]

#: Pseudo-component for the residual (inter-hop scheduling gaps).
UNATTRIBUTED = "unattributed"

#: Pipeline order used for rendering (components first seen elsewhere
#: append after these).
_STAGE_ORDER = ("publish", "bus", "forward", "receive", "ingest", UNATTRIBUTED)

#: Friendly component labels per hop stage.
_STAGE_LABELS = {
    "publish": "connector",
    "bus": "bus",
    "forward": "forwarder",
    "receive": "receive",
    "ingest": "store",
}


@dataclass
class ComponentCost:
    """Accumulated attribution for one pipeline component."""

    stage: str
    label: str
    events: int = 0
    sim_seconds: float = 0.0

    def share_of(self, total: float) -> float:
        return self.sim_seconds / total if total else 0.0


@dataclass
class PipelineProfile:
    """Per-component simulated-time attribution over stored messages."""

    components: dict = field(default_factory=dict)
    #: Σ end-to-end latency over all stored messages (seconds).
    end_to_end_s: float = 0.0
    #: Number of stored messages profiled.
    messages: int = 0
    #: Traces skipped because they never reached a store.
    unstored: int = 0

    @classmethod
    def from_traces(cls, traces) -> "PipelineProfile":
        """Profile an iterable of telemetry ``MessageTrace`` objects.

        Only *stored* messages have a defined end-to-end span, so only
        they are attributed; dropped/in-flight traces are counted in
        ``unstored``.
        """
        profile = cls()
        components = profile.components
        residual = profile._component(UNATTRIBUTED)
        for trace in traces:
            e2e = trace.end_to_end_latency_s
            if e2e is None:
                profile.unstored += 1
                continue
            profile.messages += 1
            profile.end_to_end_s += e2e
            attributed = 0.0
            for hop in trace.hops:
                cost = components.get(hop.stage)
                if cost is None:
                    cost = profile._component(hop.stage)
                span = hop.t_out - hop.t_in
                cost.events += 1
                cost.sim_seconds += span
                attributed += span
            residual.events += 1
            residual.sim_seconds += e2e - attributed
        return profile

    @classmethod
    def from_collector(cls, collector) -> "PipelineProfile":
        """Profile everything a ``TraceCollector`` has seen."""
        return cls.from_traces(collector.traces.values())

    def _component(self, stage: str) -> ComponentCost:
        cost = self.components.get(stage)
        if cost is None:
            cost = self.components[stage] = ComponentCost(
                stage=stage, label=_STAGE_LABELS.get(stage, stage)
            )
        return cost

    @classmethod
    def from_registry(cls, registry) -> "PipelineProfile":
        """Profile the retained span trees of a
        :class:`~repro.telemetry.spans.TraceRegistry` (hop spans are
        preserved in the trees, so attribution is identical to
        profiling the underlying traces)."""
        profile = cls()
        components = profile.components
        residual = profile._component(UNATTRIBUTED)
        for tree in registry.trees.values():
            e2e = tree.end_to_end_s
            if e2e is None:
                profile.unstored += 1
                continue
            profile.messages += 1
            profile.end_to_end_s += e2e
            attributed = 0.0
            for span in tree.children:
                cost = components.get(span.stage)
                if cost is None:
                    cost = profile._component(span.stage)
                duration = span.duration_s
                cost.events += 1
                cost.sim_seconds += duration
                attributed += duration
            residual.events += 1
            residual.sim_seconds += e2e - attributed
        return profile

    # -- reconciliation ------------------------------------------------

    def stage_seconds(self) -> dict[str, float]:
        """``stage -> Σ sim seconds`` (the critical-path rollup's
        per-stage upper bound; residual included under its own key)."""
        return {s: c.sim_seconds for s, c in self.components.items()}

    @property
    def attributed_s(self) -> float:
        """Σ component seconds, the residual included."""
        return sum(c.sim_seconds for c in self.components.values())

    def reconciles(self, rel_tol: float = 1e-9) -> bool:
        """Component seconds (incl. residual) must re-sum to the
        end-to-end total — the profiler's own invariant."""
        import math

        return math.isclose(
            self.attributed_s, self.end_to_end_s, rel_tol=rel_tol, abs_tol=1e-12
        )

    # -- rendering -----------------------------------------------------

    def _ordered(self) -> list:
        known = [
            self.components[s] for s in _STAGE_ORDER if s in self.components
        ]
        extra = [
            c for s, c in sorted(self.components.items()) if s not in _STAGE_ORDER
        ]
        return [*known, *extra]

    def rows(self) -> list[dict]:
        """Table rows, pipeline order, shares of the end-to-end total."""
        total = self.end_to_end_s
        return [
            {
                "component": c.label,
                "stage": c.stage,
                "events": c.events,
                "sim_seconds": c.sim_seconds,
                "share": c.share_of(total),
            }
            for c in self._ordered()
        ]

    def render_text(self) -> str:
        lines = [
            "== pipeline sim-time profile ==",
            f"messages={self.messages} unstored={self.unstored} "
            f"end_to_end={self.end_to_end_s:.6f}s",
            f"{'component':<12} {'stage':<12} {'events':>8} "
            f"{'sim_seconds':>12} {'share':>7}",
        ]
        for row in self.rows():
            lines.append(
                f"{row['component']:<12} {row['stage']:<12} {row['events']:>8} "
                f"{row['sim_seconds']:>12.6f} {row['share']:>6.1%}"
            )
        verdict = "EXACT" if self.reconciles() else "VIOLATED"
        lines.append(
            f"reconciliation Σ components (+ residual) == Σ end-to-end: {verdict}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "messages": self.messages,
            "unstored": self.unstored,
            "end_to_end_s": self.end_to_end_s,
            "attributed_s": self.attributed_s,
            "reconciles": self.reconciles(),
            "components": self.rows(),
        }
