"""Contention primitives: resources, stores and containers.

These model the queueing behaviour of shared hardware: a file-system
server is a :class:`Resource` with some number of service slots, a
network link is a :class:`Resource` whose holders charge transmission
time, a mailbox between daemons is a :class:`Store`, and a byte budget
(e.g. a node's memory for stream buffering) is a :class:`Container`.

All wait queues are strict FIFO, which together with the engine's
deterministic tie-breaking makes every simulation replayable.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Resource", "Store", "Container"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical service slots with a FIFO wait queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)

    or the one-shot helper ``yield from resource.use(env, service_time)``.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._holders: set = set()
        self._waiting: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self.env, self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def acquire(self) -> Request:
        """Synchronously grant a slot the caller has checked is free.

        No engine event is scheduled and the returned request must never
        be yielded — pair it with :meth:`release`.  This is the fast
        lane's way of holding a slot across a single fused timeout
        instead of the request-event round trip; callers are responsible
        for the equivalence argument (see ``Network.transfer_coalesced``).
        """
        if len(self._holders) >= self.capacity:
            raise RuntimeError("acquire() on a resource with no free slot")
        req = Request(self.env, self)
        req._value = None
        req._processed = True
        self._holders.add(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot.  Granting the next waiter happens immediately."""
        if request in self._holders:
            self._holders.remove(request)
        else:
            # Cancelling a queued request is allowed (e.g. interrupted
            # process backing out).
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise RuntimeError("releasing a request that was never granted")
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt.succeed()

    def use(self, duration: float):
        """Generator helper: acquire, hold for ``duration``, release."""
        req = self.request()
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(req)


class Store:
    """An unbounded (or bounded) FIFO buffer of Python objects.

    ``put`` events fire when the item is accepted; ``get`` events fire
    with the item when one is available.  Used for daemon mailboxes and
    stream delivery queues.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()  # of (event, item)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: object) -> Event:
        ev = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            if self._putters and len(self.items) < self.capacity:
                put_ev, item = self._putters.popleft()
                self.items.append(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev

    def try_put(self, item: object) -> bool:
        """Non-blocking put; returns False (item dropped) when full.

        This is the primitive behind best-effort delivery: a bounded
        daemon queue that is full loses the message rather than
        back-pressuring the publisher.
        """
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            return True
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def try_get(self) -> object | None:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        if self._putters and len(self.items) < self.capacity:
            put_ev, queued = self._putters.popleft()
            self.items.append(queued)
            put_ev.succeed()
        return item


class Container:
    """A continuous quantity (bytes, tokens) with blocking put/get.

    Models bounded buffers where the *amount* matters rather than item
    identity — e.g. a compute node's stream-buffer memory budget.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque = deque()  # of (event, amount)
        self._putters: deque = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed()
                    progress = True
            if self._getters:
                ev, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed()
                    progress = True
