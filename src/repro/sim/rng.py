"""Reproducible named random streams.

Every stochastic component of the simulation (each file system, each
application rank, the variability process, the network) draws from its
own named sub-stream derived from a single root seed via
``numpy.random.SeedSequence``.  Adding a new component therefore never
perturbs the draws of existing ones, and a campaign is a pure function
of ``(seed, config)``.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "Distributions"]


def _name_to_int(name: str) -> int:
    """Stable 32-bit hash of a stream name (not Python's salted hash)."""
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Factory for named ``numpy.random.Generator`` sub-streams."""

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root seed must be an int, got {root_seed!r}")
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        Repeated calls with the same name return the *same* generator
        object (so draws advance), while a fresh registry with the same
        root seed reproduces the identical sequence per name.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(_name_to_int(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent.

        Used to give each job run in a campaign its own seed universe.
        """
        child_seed = int(
            np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(_name_to_int(name), 0xC0FFEE)
            ).generate_state(1)[0]
        )
        return RngRegistry(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"


class Distributions:
    """Service-time distribution helpers parameterized by mean and CV.

    Queueing models are most naturally specified by a mean service time
    and a coefficient of variation; these helpers translate that into
    the underlying distribution parameters.
    """

    @staticmethod
    def lognormal(rng: np.random.Generator, mean: float, cv: float) -> float:
        """One lognormal draw with the given mean and coefficient of variation."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv <= 0:
            return float(mean)
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean) - 0.5 * sigma2
        return float(rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))

    @staticmethod
    def lognormal_array(
        rng: np.random.Generator, mean: float, cv: float, size: int
    ) -> np.ndarray:
        """Vectorized :meth:`lognormal` (used by batched event generators)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv <= 0:
            return np.full(size, float(mean))
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean) - 0.5 * sigma2
        return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=size)

    @staticmethod
    def exponential(rng: np.random.Generator, mean: float) -> float:
        """One exponential draw with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(rng.exponential(mean))

    @staticmethod
    def pareto_bounded(
        rng: np.random.Generator, minimum: float, alpha: float, cap: float
    ) -> float:
        """Heavy-tailed draw in ``[minimum, cap]`` (congestion bursts)."""
        if minimum <= 0 or cap < minimum:
            raise ValueError("require 0 < minimum <= cap")
        draw = minimum * (1.0 + rng.pareto(alpha))
        return float(min(draw, cap))

    @staticmethod
    def truncated_normal(
        rng: np.random.Generator,
        mean: float,
        std: float,
        low: float,
        high: float,
    ) -> float:
        """Normal draw clipped by rejection to ``[low, high]``."""
        if low >= high:
            raise ValueError("require low < high")
        for _ in range(64):
            x = rng.normal(mean, std)
            if low <= x <= high:
                return float(x)
        return float(min(max(mean, low), high))
