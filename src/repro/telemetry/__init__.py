"""repro.telemetry: self-observability for the monitoring pipeline.

The paper's system diagnoses *application* I/O at run time; this
package turns the same lens on the monitoring pipeline itself:

* **hop tracing** (:mod:`~repro.telemetry.trace`,
  :mod:`~repro.telemetry.collector`) — the connector stamps each
  stream message with a deterministic ``(job, rank, seq)`` trace id and
  every instrumented stage (bus delivery, forwarder outbox, aggregator
  relay, DSOS ingest) appends a hop record, giving per-message
  end-to-end latency and a drop site for every lost message;
* **streaming metrics** (:mod:`~repro.telemetry.histogram`,
  :mod:`~repro.telemetry.metrics`) — fixed-bin log-scale latency
  histograms and queue-depth gauges, also publishable as ordinary LDMS
  metric sets so telemetry rides the fabric it measures;
* **reporting** (:mod:`~repro.telemetry.report`) — the
  :class:`PipelineHealthReport` that reconciles
  ``published == stored + Σ drops(site)`` exactly per job/rank and
  renders via the web-services panels or the ``repro telemetry`` CLI.

Tracing is opt-in per environment (:func:`install`) and purely
observational: with or without a collector, a seeded campaign produces
byte-identical results.
"""

from repro.telemetry.collector import TraceCollector, collector_for, install, uninstall
from repro.telemetry.exporter import render_openmetrics
from repro.telemetry.flightrec import (
    RECORDER_METRICS,
    BundleLog,
    FlightRecorder,
    FlightRecorderConfig,
    ForensicBundle,
    RingBuffer,
)
from repro.telemetry.histogram import GaugeStats, LogHistogram
from repro.telemetry.spans import (
    CriticalPath,
    CriticalPathRollup,
    Span,
    SpanTree,
    TelemetryConfig,
    TraceRegistry,
    critical_path,
)
from repro.telemetry.trace import (
    DELIVERED,
    DROP_DAEMON_FAILED,
    DROP_DEAD_LETTER,
    DROP_NO_SUBSCRIBER,
    DROP_OVERFLOW,
    DROP_PARSE_ERROR,
    DUP_IGNORED,
    FAILOVER,
    FORWARDED,
    PUBLISHED,
    RECOVERY_OUTCOMES,
    REDELIVERED,
    REPLAYED,
    SPILLED,
    STAGE_BUS,
    STAGE_FORWARD,
    STAGE_INGEST,
    STAGE_PUBLISH,
    STAGE_RECEIVE,
    STORED,
    HopRecord,
    MessageTrace,
    make_trace_id,
    parse_trace_id,
)

__all__ = [
    "BundleLog",
    "CriticalPath",
    "CriticalPathRollup",
    "DELIVERED",
    "DROP_DAEMON_FAILED",
    "DROP_DEAD_LETTER",
    "DROP_NO_SUBSCRIBER",
    "DROP_OVERFLOW",
    "DROP_PARSE_ERROR",
    "DUP_IGNORED",
    "FAILOVER",
    "FORWARDED",
    "FlightRecorder",
    "FlightRecorderConfig",
    "ForensicBundle",
    "GaugeStats",
    "HopRecord",
    "LogHistogram",
    "MessageTrace",
    "PUBLISHED",
    "PipelineHealthReport",
    "PipelineStatsSampler",
    "RECORDER_METRICS",
    "RECOVERY_OUTCOMES",
    "REDELIVERED",
    "REPLAYED",
    "ReconRow",
    "RingBuffer",
    "SPILLED",
    "STAGE_BUS",
    "STAGE_FORWARD",
    "STAGE_INGEST",
    "STAGE_PUBLISH",
    "STAGE_RECEIVE",
    "STORED",
    "Span",
    "SpanTree",
    "TelemetryConfig",
    "TraceCollector",
    "TraceRegistry",
    "collector_for",
    "critical_path",
    "install",
    "make_trace_id",
    "parse_trace_id",
    "render_openmetrics",
    "uninstall",
]

_LAZY = {
    # Imported on first use to keep the low-level tracing modules free
    # of repro.ldms / repro.webservices dependencies (the daemons import
    # the collector on *their* import path).
    "PipelineHealthReport": "repro.telemetry.report",
    "ReconRow": "repro.telemetry.report",
    "PipelineStatsSampler": "repro.telemetry.metrics",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
