"""The per-environment trace collector.

A :class:`TraceCollector` is *installed* against one simulation
:class:`~repro.sim.Environment`; instrumented pipeline stages (the
streams bus, forwarder outboxes, daemon receive paths, store plugins)
look it up with :func:`collector_for` at each hop and append
:class:`~repro.telemetry.trace.HopRecord`\\ s.  When no collector is
installed every hook is a dictionary miss and the pipeline behaves
byte-identically — telemetry observes, it never perturbs: no RNG draws,
no scheduled events, no payload changes.
"""

from __future__ import annotations

from repro.telemetry.histogram import GaugeStats, LogHistogram
from repro.telemetry.trace import (
    RECOVERY_OUTCOMES,
    STORED,
    HopRecord,
    MessageTrace,
    parse_trace_id,
)

__all__ = ["TraceCollector", "collector_for", "install", "uninstall"]

#: Synthetic stage for the full publish-begin → stored span.
END_TO_END = "end_to_end"

#: Attribute the collector is stored under on the Environment.  A plain
#: attribute beats the previous WeakKeyDictionary: collector_for runs
#: ~10× per message, and the weakref machinery was measurable in
#: campaign profiles.  Lifetime is identical (the collector dies with
#: its env) since the env owns the reference.
_ENV_ATTR = "_repro_trace_collector"


def install(env) -> "TraceCollector":
    """Attach (or return the existing) collector for ``env``."""
    collector = getattr(env, _ENV_ATTR, None)
    if collector is None:
        collector = TraceCollector(env)
        setattr(env, _ENV_ATTR, collector)
    return collector


def collector_for(env) -> "TraceCollector | None":
    """The collector installed for ``env``, or ``None`` (the hot path)."""
    return getattr(env, _ENV_ATTR, None)


def uninstall(env) -> None:
    """Detach any collector from ``env``."""
    if getattr(env, _ENV_ATTR, None) is not None:
        delattr(env, _ENV_ATTR)


class TraceCollector:
    """Hop traces, per-stage latency histograms and gauges for one env."""

    def __init__(self, env):
        self.env = env
        #: trace_id -> MessageTrace
        self.traces: dict[str, MessageTrace] = {}
        #: (trace_id, stage, node) -> t_in of a hop in progress
        self._open: dict[tuple[str, str, str], float] = {}
        #: stage -> LogHistogram of hop latencies (positive spans only)
        self.histograms: dict[str, LogHistogram] = {}
        #: name -> GaugeStats (queue depths, etc.)
        self.gauges: dict[str, GaugeStats] = {}
        #: ``(e2e_latency_s, trace_id)`` of the slowest stored message
        #: seen so far — the live exemplar diagnosis rules cite.
        self.slowest_stored: tuple[float, str] | None = None
        #: ``cb(trace_id, stage, node, outcome, t)`` fired for hops with
        #: a recovery outcome (replay, failover, dedup, quorum degrade).
        #: Empty on a plain collector so the hot path stays one falsy
        #: check; observers must be read-only host-side appends.
        self._recovery_observers: list = []

    # -- trace lifecycle -----------------------------------------------

    def begin(
        self,
        trace_id: str,
        job_id: int,
        rank: int,
        node: str = "",
        t_begin: float | None = None,
    ) -> MessageTrace:
        """Register a message at its origin (the connector, pre-publish).

        ``t_begin`` lets a caller that already advanced past the origin
        instant (the coalesced-publish fast lane) stamp the exact time
        the reference path would have.
        """
        trace = MessageTrace(
            trace_id=trace_id, job_id=job_id, rank=rank,
            t_begin=self.env.now if t_begin is None else t_begin,
        )
        self.traces[trace_id] = trace
        return trace

    def _trace(self, trace_id: str, t_begin: float) -> MessageTrace:
        trace = self.traces.get(trace_id)
        if trace is None:
            # A hop for a message begun before this collector existed
            # (or stamped outside the connector): recover (job, rank)
            # from the id itself so reconciliation still groups it.
            parsed = parse_trace_id(trace_id) or (-1, -1, -1)
            trace = MessageTrace(
                trace_id=trace_id, job_id=parsed[0], rank=parsed[1], t_begin=t_begin
            )
            self.traces[trace_id] = trace
        return trace

    # -- hops ----------------------------------------------------------

    def hop(
        self,
        trace_id: str,
        stage: str,
        node: str,
        outcome: str,
        t_in: float | None = None,
        t_out: float | None = None,
    ) -> HopRecord:
        """Append one hop; instantaneous unless ``t_in``/``t_out`` given."""
        now = self.env.now
        if t_out is None:
            t_out = now
        if t_in is None:
            t_in = t_out
        trace = self._trace(trace_id, t_in)
        record = HopRecord(stage=stage, node=node, t_in=t_in, t_out=t_out, outcome=outcome)
        trace.hops.append(record)
        if self._recovery_observers and outcome in RECOVERY_OUTCOMES:
            for callback in self._recovery_observers:
                callback(trace_id, stage, node, outcome, t_out)
        if t_out > t_in:
            self._histogram(stage).observe(t_out - t_in)
        if outcome == STORED and t_out > trace.t_begin:
            e2e = t_out - trace.t_begin
            self._histogram(END_TO_END).observe(e2e)
            if self.slowest_stored is None or e2e > self.slowest_stored[0]:
                self.slowest_stored = (e2e, trace_id)
        return record

    def add_recovery_observer(self, callback) -> None:
        """Subscribe to recovery-outcome hops (the flight recorder's
        feed).  Purity bar: callbacks observe, they never perturb."""
        self._recovery_observers.append(callback)

    def open_hop(self, trace_id: str, stage: str, node: str) -> None:
        """Mark a hop's entry time (e.g. enqueue into an outbox)."""
        self._open[(trace_id, stage, node)] = self.env.now

    def close_hop(self, trace_id: str, stage: str, node: str, outcome: str) -> HopRecord:
        """Complete a hop opened with :meth:`open_hop`."""
        t_in = self._open.pop((trace_id, stage, node), self.env.now)
        return self.hop(trace_id, stage, node, outcome, t_in=t_in)

    # -- count-weighted batch hops --------------------------------------
    #
    # A record batch moving as one unit still represents N messages: a
    # hop (or drop) at a batch boundary must attribute all N, not 1, or
    # the reconciliation ledger under-counts exactly when batching is
    # on.  These helpers stamp one record per trace id — identical
    # records, in list order, to N single calls — while hoisting the
    # per-call time/NaN bookkeeping out of the loop.

    def hop_batch(
        self,
        trace_ids,
        stage: str,
        node: str,
        outcome: str,
        t_in: float | None = None,
        t_out: float | None = None,
    ) -> None:
        """:meth:`hop` for every id in ``trace_ids`` (falsy ids skipped)."""
        if t_out is None:
            t_out = self.env.now
        if t_in is None:
            t_in = t_out
        for trace_id in trace_ids:
            if trace_id:
                self.hop(trace_id, stage, node, outcome, t_in=t_in, t_out=t_out)

    def close_hop_batch(self, trace_ids, stage: str, node: str, outcome: str) -> None:
        """:meth:`close_hop` for every id in ``trace_ids`` (falsy skipped)."""
        for trace_id in trace_ids:
            if trace_id:
                self.close_hop(trace_id, stage, node, outcome)

    def _histogram(self, stage: str) -> LogHistogram:
        hist = self.histograms.get(stage)
        if hist is None:
            hist = self.histograms[stage] = LogHistogram()
        return hist

    # -- gauges --------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        stats = self.gauges.get(name)
        if stats is None:
            stats = self.gauges[name] = GaugeStats()
        stats.observe(value)

    # -- aggregation ---------------------------------------------------

    def drop_sites(self, job_id: int | None = None) -> dict[tuple[str, str, str], int]:
        """``(stage, node, outcome) -> count`` over terminally dropped traces."""
        sites: dict[tuple[str, str, str], int] = {}
        for trace in self.traces.values():
            if job_id is not None and trace.job_id != job_id:
                continue
            if trace.status != "dropped":
                continue
            site = trace.drop_site
            sites[site] = sites.get(site, 0) + 1
        return sites

    def recovery_sites(self, job_id: int | None = None) -> dict[tuple[str, str, str], int]:
        """``(stage, node, outcome) -> count`` over recovery hops.

        Counts every replay, retry redelivery, standby failover and
        dedup skip — the self-healing ledger complementing
        :meth:`drop_sites`.  One message may contribute several entries
        (e.g. spilled twice and replayed twice).
        """
        sites: dict[tuple[str, str, str], int] = {}
        for trace in self.traces.values():
            if job_id is not None and trace.job_id != job_id:
                continue
            for hop in trace.hops:
                if hop.outcome in RECOVERY_OUTCOMES:
                    sites[hop.site] = sites.get(hop.site, 0) + 1
        return sites

    def reconcile(self, job_id: int | None = None) -> dict[tuple[int, int], dict]:
        """Per-(job, rank) ledger: published, stored, drops by site.

        The pipeline invariant — ``published == stored + Σ drops(site)
        + in_flight_spill`` — holds exactly for every group once the
        simulation has drained (``in_flight == 0``); anything else is a
        telemetry bug.  ``spilled`` counts messages parked in a
        connector's fallback buffer awaiting a reconnect.
        """
        groups: dict[tuple[int, int], dict] = {}
        for trace in self.traces.values():
            if job_id is not None and trace.job_id != job_id:
                continue
            key = (trace.job_id, trace.rank)
            g = groups.get(key)
            if g is None:
                g = groups[key] = {
                    "published": 0,
                    "stored": 0,
                    "dropped": 0,
                    "spilled": 0,
                    "in_flight": 0,
                    "drops": {},
                }
            g["published"] += 1
            status = trace.status
            if status == "stored":
                g["stored"] += 1
            elif status == "dropped":
                g["dropped"] += 1
                site = trace.drop_site
                g["drops"][site] = g["drops"].get(site, 0) + 1
            elif status == "spilled":
                g["spilled"] += 1
            else:
                g["in_flight"] += 1
        return groups
