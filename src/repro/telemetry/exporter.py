"""OpenMetrics-style text exposition of a fleet scan.

:func:`render_openmetrics` turns a :class:`~repro.fleet.FleetReport`
into the text format external scrapers speak: one family per catalogued
signal that the scan produced a value for — ``# HELP`` / ``# TYPE``
header lines, then samples with sorted ``{cluster=...}`` label sets,
families in sorted name order, terminated by ``# EOF``.  Everything is
emitted in deterministic order from deterministic inputs, so the
``repro fleet --export`` output is byte-stable for a given seed set —
pinned by the CLI test suite.

Metric names carry a ``repro_`` prefix; histogram families expose
``_count`` / ``_sum`` pairs (enough for rate/mean recording rules
without shipping every bucket edge).
"""

from __future__ import annotations

__all__ = ["render_openmetrics"]

_PREFIX = "repro_"

#: Catalog kind → OpenMetrics type token.
_OM_TYPES = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "alert": "gauge",
    "score": "gauge",
}


def _fmt(value) -> str:
    """Deterministic sample-value formatting (ints stay ints)."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sample(name: str, labels: dict, value) -> str:
    label_str = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return f"{_PREFIX}{name}{{{label_str}}} {_fmt(value)}"


def _collect(report) -> dict[str, list[str]]:
    """Family name → rendered sample lines, from one fleet report."""
    from repro.diagnosis.signals import _standard_rules

    rules = _standard_rules()
    families: dict[str, list[str]] = {}

    def emit(name: str, labels: dict, value) -> None:
        families.setdefault(name, []).append(_sample(name, labels, value))

    for cluster in report:
        base = {"cluster": cluster.name}

        # Scorecard.
        emit("health_score", base, cluster.score.score)
        for d in cluster.score.deductions:
            emit(f"score_deduction_{d.component}", base, d.deduction)

        # Probe scan.
        for node in cluster.probe_report.nodes:
            labels = dict(base, node=node.node)
            emit("probe_latency_s", labels, node.mean_latency_s)
            emit("probe_lost_total", labels, node.lost)
        emit("probe_stragglers", base, len(cluster.probe_report.stragglers))

        # Alert incidents, one family per rule (0 included so scrapers
        # see the whole alert surface even on a clean fleet).
        by_rule: dict[str, int] = {}
        for alert in cluster.incidents:
            by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
        for rule in rules:
            emit(f"alert_{rule.name}", base, by_rule.get(rule.name, 0))

        # Diagnosis sampled series (end-of-scan values).
        for name, value in sorted(cluster.gauges.items()):
            emit(name, base, value)

        # Hop-latency histograms: count + sum per stage.
        for stage, hist in sorted(cluster.health.collector.histograms.items()):
            emit(f"hop_latency_{stage}_count", base, hist.count)
            emit(f"hop_latency_{stage}_sum", base, hist.total)

        # Replicated-store counters, one series per (shard, daemon) —
        # absent on legacy flat stores, so non-replicated expositions
        # are byte-identical to the pre-replication format.
        store = getattr(cluster, "store", None)
        if store:
            emit("store_writes_total", base, store["writes"])
            emit("store_quorum_degraded_total", base,
                 store["quorum_degraded_writes"])
            emit("store_rejected_writes_total", base,
                 store["rejected_writes"])
            for snap in store["daemons"]:
                labels = dict(base, daemon=snap["daemon"],
                              shard=snap["shard"])
                emit("store_objects", labels, snap["objects_stored"])
                emit("store_crashes_total", labels, snap["crashes"])
                if "wal_records" in snap:
                    emit("store_wal_records_total", labels,
                         snap["wal_records"])
                    emit("store_wal_replayed_total", labels,
                         snap["wal_replayed"])
                    emit("store_wal_truncated_bytes_total", labels,
                         snap["wal_truncated_bytes"])
                    emit("store_repair_pulled_total", labels,
                         snap["repair_pulled"])

        # Flight-recorder self-metrics — absent when the recorder is
        # not armed, so legacy expositions stay byte-identical.
        recorder = getattr(cluster, "recorder", None)
        if recorder:
            emit("flightrec_bundles_frozen_total", base,
                 recorder["bundles_frozen"])
            emit("flightrec_bundle_bytes_total", base,
                 recorder["bundle_bytes"])
            emit("flightrec_triggers_dropped_total", base,
                 recorder["triggers_dropped"])
            for stream, counters in sorted(recorder["streams"].items()):
                labels = dict(base, stream=stream)
                emit("flightrec_captured_total", labels,
                     counters["captured"])
                emit("flightrec_evicted_total", labels,
                     counters["evicted"])
                emit("flightrec_retained", labels, counters["retained"])

        # Bottleneck-explanation gauges — absent when the scan carried
        # no explain report, so legacy expositions stay byte-identical.
        explain = getattr(cluster, "explain", None)
        if explain:
            for name, value in sorted(explain["gauges"].items()):
                emit(name, base, value)

    return families


def render_openmetrics(report, catalog=None) -> str:
    """The fleet report as an OpenMetrics text exposition."""
    from repro.diagnosis.signals import default_catalog

    catalog = catalog or default_catalog()
    families = _collect(report)

    lines: list[str] = []
    emitted = set()
    for name in sorted(families):
        # _count/_sum samples belong to their parent histogram family.
        root = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix) and catalog.get(name[: -len(suffix)]):
                root = name[: -len(suffix)]
        signal = catalog.get(root)
        if root not in emitted:
            emitted.add(root)
            if signal is not None:
                lines.append(f"# HELP {_PREFIX}{root} {signal.description}")
                om_type = _OM_TYPES.get(signal.kind, "gauge")
                lines.append(f"# TYPE {_PREFIX}{root} {om_type}")
            else:
                lines.append(f"# HELP {_PREFIX}{root} (uncatalogued)")
                lines.append(f"# TYPE {_PREFIX}{root} gauge")
        lines.extend(families[name])
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
