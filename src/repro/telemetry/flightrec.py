"""The black-box flight recorder: bounded always-on incident capture.

A :class:`FlightRecorder` arms against a campaign
:class:`~repro.experiments.world.World` and keeps one sim-time
:class:`RingBuffer` per evidence stream — alert transitions, retained
span tails, rule-window snapshots, hop recovery events, store census
deltas, probe straggler flags and applied faults (:data:`STREAMS`).
Every ring is capacity-capped with an eviction counter and the exact
reconciliation invariant ``captured == retained + evicted`` per stream.

When a trigger fires — an alert enters ``firing``, a quorum-degraded
write lands, a ``StoreCrash`` is injected, or the dead-letter count
grows — the recorder freezes a :class:`ForensicBundle`: a canonical-
JSON, byte-stable snapshot of a ±window around the trigger, carrying
cross-layer evidence links (trace ids into the span registry, rule →
signal-catalog entries, store sequence high-waters).  Bundles are
serialized through the store's WAL framing
(:func:`repro.dsos.journal.recover_entries`), so a torn
:class:`BundleLog` truncates-doesn't-trust on reload exactly like the
``dsosd`` durability log.

Purity: recording is observation only.  The recorder's tick is a *weak*
simulation event, every hook is an append into host-side state, it
draws no randomness and schedules nothing — a seeded campaign with the
recorder armed is byte-identical to one without, on all three lanes
(pinned by ``tests/property/test_flightrec_properties.py``).  All
recorded times are epoch-relative, so same-seed runs freeze
byte-identical bundles regardless of ``campaign_offset_days``.
"""

from __future__ import annotations

import json
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.telemetry.trace import QUORUM_DEGRADED, STORED

__all__ = [
    "BundleLog",
    "FlightRecorder",
    "FlightRecorderConfig",
    "ForensicBundle",
    "RECORDER_METRICS",
    "RingBuffer",
    "STREAMS",
    "canonical_json",
]

#: Every evidence stream the recorder keeps a ring for, as ``(name,
#: description)`` — the declarative registry the forensics tooling and
#: the self-metric exposition iterate.
STREAMS = (
    ("alerts", "alert lifecycle transitions (pending/firing/resolved)"),
    ("rules", "rule-window snapshots at each diagnosis tick"),
    ("spans", "retained span tails: stored messages with e2e latency"),
    ("recovery", "hop recovery events: replays, failovers, dedups"),
    ("store", "store census deltas: replication health changes"),
    ("probes", "probe straggler flags and lost probes"),
    ("faults", "applied faults from the injector's ground-truth log"),
    ("verdicts", "post-hoc bottleneck verdicts from the explain layer"),
)

#: Recorder self-metrics, as ``(name, unit, description)`` — registered
#: in the signal catalog (:mod:`repro.diagnosis.signals`) and emitted by
#: the OpenMetrics exporter so drift detection covers the recorder.
RECORDER_METRICS = (
    ("flightrec_captured_total", "records",
     "ring records captured per stream so far (cumulative)"),
    ("flightrec_evicted_total", "records",
     "ring records evicted by the capacity cap (cumulative)"),
    ("flightrec_retained", "records",
     "ring records currently retained per stream"),
    ("flightrec_bundles_frozen_total", "bundles",
     "forensic bundles frozen by triggers so far (cumulative)"),
    ("flightrec_bundle_bytes_total", "bytes",
     "serialized bytes appended to the bundle log (cumulative)"),
    ("flightrec_triggers_dropped_total", "triggers",
     "triggers ignored by coalescing or the bundle cap (cumulative)"),
)


def canonical_json(obj) -> str:
    """The house canonical form: sorted keys, compact separators.

    Identical to the WAL payload encoding in
    :meth:`repro.dsos.journal.WalRecord.make`; float formatting is
    ``repr`` (shortest round-trip), so equal values always serialize to
    equal bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class RingBuffer:
    """A bounded sim-time event ring with an exact eviction ledger.

    ``captured`` counts every append ever made; ``retained`` is what the
    ring still holds; ``evicted`` counts what the capacity cap pushed
    out.  ``captured == retained + evicted`` holds at every instant —
    :meth:`reconciles` is the invariant forensics ``--check`` asserts
    per stream.
    """

    def __init__(self, name: str, capacity: int):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self.captured = 0
        self.evicted = 0

    @property
    def retained(self) -> int:
        return len(self._items)

    def append(self, t: float, record: dict) -> None:
        """Record one event at epoch-relative instant ``t``."""
        self.captured += 1
        if len(self._items) >= self.capacity:
            self._items.popleft()
            self.evicted += 1
        self._items.append((t, record))

    def window(self, t_begin: float, t_end: float) -> list:
        """Retained ``(t, record)`` pairs with ``t_begin <= t <= t_end``."""
        return [(t, r) for t, r in self._items if t_begin <= t <= t_end]

    def all(self) -> list:
        return list(self._items)

    def reconciles(self) -> bool:
        return self.captured == self.retained + self.evicted

    def __len__(self) -> int:
        return len(self._items)


@dataclass(frozen=True)
class FlightRecorderConfig:
    """Tuning for one recorder: cadence, ring caps, freeze windows."""

    #: Simulated seconds between recorder ticks (census/dead-letter
    #: sampling and pending-freeze processing).
    tick_period_s: float = 0.1
    #: Default per-stream ring capacity.
    capacity: int = 512
    #: Per-stream capacity overrides, ``{stream: capacity}``.
    capacities: dict = field(default_factory=dict)
    #: Bundle window reaches this far *before* the trigger instant...
    pre_window_s: float = 1.0
    #: ...and this far after (the freeze happens once the clock passes
    #: ``t_trigger + post_window_s``, or at :meth:`FlightRecorder.flush`).
    post_window_s: float = 0.25
    #: Hard cap on frozen bundles per run (further triggers are counted
    #: in ``triggers_dropped``, never recorded as bundles).
    max_bundles: int = 16
    #: Evidence cap on trace ids per bundle (the count of distinct ids
    #: is always reported; only the listing is truncated).
    trace_id_cap: int = 32

    def __post_init__(self):
        if self.tick_period_s <= 0:
            raise ValueError("tick_period_s must be positive")
        if self.pre_window_s < 0 or self.post_window_s < 0:
            raise ValueError("freeze windows must be >= 0")
        if self.max_bundles < 1:
            raise ValueError("max_bundles must be >= 1")

    def stream_capacity(self, stream: str) -> int:
        return int(self.capacities.get(stream, self.capacity))


@dataclass
class ForensicBundle:
    """One frozen incident snapshot: ±window of every stream, linked.

    All times are epoch-relative simulated seconds.  ``streams`` maps
    stream name → ``{"records": [{"t": ..., ...}], "captured": ...,
    "evicted": ..., "retained": ...}`` (the ring's ledger at freeze
    time); ``evidence`` carries the cross-layer links — trace ids into
    the span registry, rules with the signal-catalog entries feeding
    them, incident ids, and per-shard store sequence high-waters.
    """

    bundle_id: str
    trigger_kind: str
    trigger_detail: str
    rule: str
    t_trigger: float
    window: tuple
    streams: dict
    evidence: dict

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "trigger_kind": self.trigger_kind,
            "trigger_detail": self.trigger_detail,
            "rule": self.rule,
            "t_trigger": self.t_trigger,
            "window": list(self.window),
            "streams": self.streams,
            "evidence": self.evidence,
        }

    def to_canonical_json(self) -> str:
        """Byte-stable serialization — equal bundles, equal bytes."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, d: dict) -> "ForensicBundle":
        return cls(
            bundle_id=d["bundle_id"],
            trigger_kind=d["trigger_kind"],
            trigger_detail=d["trigger_detail"],
            rule=d["rule"],
            t_trigger=d["t_trigger"],
            window=tuple(d["window"]),
            streams=d["streams"],
            evidence=d["evidence"],
        )

    def records(self, stream: str) -> list:
        return self.streams.get(stream, {}).get("records", [])

    def n_records(self) -> int:
        return sum(len(s["records"]) for s in self.streams.values())


def _crc(text: str) -> int:
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class _BundleRecord:
    """One framed bundle-log record (same discipline as the store WAL)."""

    bundle_id: str
    payload: str  # canonical JSON of the bundle
    checksum: int = -1

    @staticmethod
    def compute_checksum(bundle_id: str, payload: str) -> int:
        return _crc(f"{bundle_id}|{payload}")

    @classmethod
    def make(cls, bundle: ForensicBundle) -> "_BundleRecord":
        payload = bundle.to_canonical_json()
        return cls(bundle.bundle_id, payload,
                   cls.compute_checksum(bundle.bundle_id, payload))

    @property
    def valid(self) -> bool:
        return self.checksum == self.compute_checksum(
            self.bundle_id, self.payload
        )

    def encode(self) -> bytes:
        return f"{self.bundle_id}|{self.payload}|{self.checksum:08x}\n".encode()

    @classmethod
    def decode(cls, line: bytes) -> "_BundleRecord | None":
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
        # Split from both ends so only the JSON payload may absorb
        # embedded separators (same framing trick as WalRecord).
        parts = text.split("|")
        if len(parts) < 3:
            return None
        bundle_id, crc_text = parts[0], parts[-1]
        payload = "|".join(parts[1:-1])
        try:
            record = cls(bundle_id, payload, int(crc_text, 16))
        except ValueError:
            return None
        return record if record.valid else None


class BundleLog:
    """Append-only serialized bundle archive with torn-tail recovery.

    The byte buffer is the "disk": :meth:`append` serializes each frozen
    bundle eagerly, :meth:`tear_tail` simulates a crash landing
    mid-append, and :meth:`recover` replays the longest clean prefix —
    truncate, don't trust, exactly like
    :class:`repro.dsos.journal.StoreWal`.
    """

    def __init__(self):
        self._buf = bytearray()
        self.records_appended = 0
        self.torn_writes = 0

    def append(self, bundle: ForensicBundle) -> int:
        """Serialize one bundle; returns the bytes appended."""
        encoded = _BundleRecord.make(bundle).encode()
        self._buf += encoded
        self.records_appended += 1
        return len(encoded)

    def to_bytes(self) -> bytes:
        return bytes(self._buf)

    def tear_tail(self, drop_bytes: int = 7) -> None:
        """Simulate a torn write: the last ``drop_bytes`` never landed."""
        if drop_bytes <= 0:
            raise ValueError("drop_bytes must be positive")
        del self._buf[max(0, len(self._buf) - drop_bytes):]
        self.torn_writes += 1

    def recover(self):
        """Replay the longest clean prefix; torn bytes are truncated.

        Returns ``(bundles, truncated_bytes)``.
        """
        bundles, truncated = BundleLog.load(bytes(self._buf))
        if truncated:
            del self._buf[len(self._buf) - truncated:]
        return bundles, truncated

    @staticmethod
    def load(data: bytes):
        """Decode a serialized archive: ``(bundles, truncated_bytes)``."""
        from repro.dsos.journal import recover_entries

        recovery = recover_entries(data, _BundleRecord.decode)
        bundles = [
            ForensicBundle.from_dict(json.loads(rec.payload))
            for rec in recovery.entries
        ]
        return bundles, recovery.truncated_bytes

    def __len__(self) -> int:
        return self.records_appended


@dataclass(frozen=True)
class _PendingTrigger:
    """A trigger waiting for its post-window to elapse before freezing."""

    t: float  # absolute sim time of the trigger
    kind: str
    detail: str
    rule: str


class FlightRecorder:
    """Always-on bounded capture of one world's evidence streams."""

    def __init__(self, world, config: FlightRecorderConfig | None = None):
        self.world = world
        self.config = config or FlightRecorderConfig()
        self.rings: dict[str, RingBuffer] = {
            name: RingBuffer(name, self.config.stream_capacity(name))
            for name, _ in STREAMS
        }
        self.bundles: list[ForensicBundle] = []
        self.log = BundleLog()
        self.bundles_frozen = 0
        self.bundle_bytes = 0
        self.triggers_dropped = 0
        self.ticks = 0
        self._pending: list[_PendingTrigger] = []
        self._last_trigger: dict[tuple, float] = {}
        self._last_census: dict | None = None
        self._last_dead_letters = 0
        self._probe_idx = 0
        self._stragglers_seen: set[str] = set()
        self._snapshots = 0
        self._catalog = None
        self._armed = False

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        """Install every observer hook and the weak recorder tick.

        Must run after the fault injector is built (its applied-log
        observer) and before the columnar spine (whose arming guard
        must see the recorder's store ingest observer).
        """
        if self._armed:
            raise RuntimeError("flight recorder already armed")
        self._armed = True
        world = self.world
        world.env.every(self.config.tick_period_s, self.tick, weak=True)
        world.store.add_ingest_observer(self._on_stored)
        if world.telemetry is not None:
            world.telemetry.add_recovery_observer(self._on_recovery)
        if world.diagnosis is not None:
            world.diagnosis.add_transition_observer(self._on_alert)
            world.diagnosis.add_tick_observer(self._on_diagnosis_tick)
        if world.fault_injector is not None:
            world.fault_injector.add_observer(self._on_fault)

    def _rel(self, t: float) -> float:
        return t - self.world.config.epoch

    def _record(self, stream: str, t: float, record: dict) -> None:
        self.rings[stream].append(self._rel(t), record)

    def record_verdicts(self, report) -> None:
        """Append an explain report's verdicts as evidence records.

        The explain layer runs post-hoc, so this is a host-side append
        at the current instant — one record per verdict, linking the
        verdict back to its incidents and exemplar trace.
        """
        now = self.world.env.now
        for verdict in report.verdicts:
            evidence = verdict.evidence or {}
            self._record("verdicts", now, {
                "event": "verdict",
                "job_id": report.job_id,
                "class": verdict.cls,
                "score": verdict.score,
                "strategy": verdict.strategy,
                "incidents": list(evidence.get("incidents", ())),
                "trace_id": evidence.get("trace_id", ""),
            })

    # -- observer hooks ------------------------------------------------

    def _on_alert(self, alert, transition: str, now: float) -> None:
        self._record("alerts", now, {
            "event": transition,
            "rule": alert.rule,
            "severity": alert.severity,
            "id": alert.incident_id,
            "value": alert.peak_value,
            "detail": alert.detail,
        })
        if transition == "firing":
            self._trigger(now, "alert_firing", alert.rule, alert.rule)

    def _on_diagnosis_tick(self, engine, now: float) -> None:
        self._record("rules", now, {
            "event": "windows",
            "values": {
                name: series.latest
                for name, series in engine.rule_series.items()
            },
        })

    def _on_stored(self, message, n_rows: int) -> None:
        trace_id = getattr(message, "trace_id", "")
        e2e = None
        collector = self.world.telemetry
        if collector is not None and trace_id:
            trace = collector.traces.get(trace_id)
            if trace is not None:
                for hop in reversed(trace.hops):
                    if hop.outcome == STORED:
                        e2e = hop.t_out - trace.t_begin
                        break
        self._record("spans", self.world.env.now, {
            "event": "stored",
            "trace": trace_id,
            "rows": n_rows,
            "e2e_s": e2e,
        })

    def _on_recovery(self, trace_id: str, stage: str, node: str,
                     outcome: str, t: float) -> None:
        self._record("recovery", t, {
            "event": outcome,
            "trace": trace_id,
            "stage": stage,
            "node": node,
        })
        if outcome == QUORUM_DEGRADED:
            self._trigger(t, "quorum_degraded", node, "under_replication")

    def _on_fault(self, fault) -> None:
        self._record("faults", fault.t, {
            "event": fault.kind,
            "detail": fault.detail,
        })
        if fault.kind == "store_crash":
            self._trigger(fault.t, "store_crash", fault.detail,
                          "under_replication")

    # -- the recorder tick ---------------------------------------------

    def tick(self) -> None:
        """One weak tick: sample census/dead-letter/probe state, then
        freeze any pending trigger whose post-window has elapsed."""
        now = self.world.env.now
        self.ticks += 1
        self._sample_census(now)
        self._sample_dead_letters(now)
        self._sample_probes(now)
        self._process_pending(now)

    def _sample_census(self, now: float) -> None:
        summary = self.world.dsos.cluster.health_summary()
        if summary != self._last_census:
            self._record("store", now, dict({"event": "census"}, **summary))
            self._last_census = summary

    def _sample_dead_letters(self, now: float) -> None:
        total = 0
        for daemon in self.world.fabric.all_daemons():
            for fwd in daemon.stats_snapshot()["forwards"]:
                total += fwd["dead_letters"]
        if total > self._last_dead_letters:
            self._record("recovery", now, {
                "event": "dead_letter_growth",
                "total": total,
                "delta": total - self._last_dead_letters,
            })
            self._trigger(now, "deadletter_growth", f"total={total}",
                          "deadletter_growth")
        self._last_dead_letters = total

    def _sample_probes(self, now: float) -> None:
        scanner = self.world.probe_scanner
        if scanner is None or len(scanner.samples) <= self._probe_idx:
            return
        for sample in scanner.samples[self._probe_idx:]:
            if sample.lost:
                self._record("probes", sample.t, {
                    "event": "probe_lost",
                    "node": sample.node,
                    "reason": sample.reason,
                })
        self._probe_idx = len(scanner.samples)
        for node in scanner.report().stragglers:
            if node not in self._stragglers_seen:
                self._stragglers_seen.add(node)
                self._record("probes", now, {
                    "event": "straggler",
                    "node": node,
                })

    # -- triggers and freezing -----------------------------------------

    def _trigger(self, t: float, kind: str, detail: str, rule: str) -> None:
        key = (kind, detail)
        cooldown = self.config.pre_window_s + self.config.post_window_s
        last = self._last_trigger.get(key)
        if last is not None and t - last < cooldown:
            self.triggers_dropped += 1
            return
        if len(self.bundles) + len(self._pending) >= self.config.max_bundles:
            self.triggers_dropped += 1
            return
        self._last_trigger[key] = t
        self._pending.append(_PendingTrigger(t, kind, detail, rule))

    def _process_pending(self, now: float) -> None:
        due = [
            p for p in self._pending
            if now >= p.t + self.config.post_window_s
        ]
        if not due:
            return
        self._pending = [p for p in self._pending if p not in due]
        for trigger in due:
            self._freeze(trigger)

    def flush(self) -> None:
        """Freeze every still-pending trigger (end-of-run path: the last
        post-window may lie beyond the final simulation event)."""
        pending, self._pending = self._pending, []
        for trigger in pending:
            self._freeze(trigger)

    def _freeze(self, trigger: _PendingTrigger) -> None:
        t_rel = self._rel(trigger.t)
        window = (t_rel - self.config.pre_window_s,
                  t_rel + self.config.post_window_s)
        bundle = self._build_bundle(
            bundle_id=f"fb-{len(self.bundles)}",
            kind=trigger.kind, detail=trigger.detail, rule=trigger.rule,
            t_trigger=t_rel, window=window,
        )
        self._commit(bundle)

    def snapshot(self, bundle_id: str | None = None) -> ForensicBundle:
        """Freeze a manual whole-run bundle (the clean-run side of a
        forensic diff needs a snapshot even though nothing triggered)."""
        if bundle_id is None:
            bundle_id = f"snap-{self._snapshots}"
        self._snapshots += 1
        now_rel = self._rel(self.world.env.now)
        bundle = self._build_bundle(
            bundle_id=bundle_id, kind="manual", detail="snapshot", rule="",
            t_trigger=now_rel, window=(0.0, now_rel),
        )
        self._commit(bundle)
        return bundle

    def _commit(self, bundle: ForensicBundle) -> None:
        self.bundle_bytes += self.log.append(bundle)
        self.bundles_frozen += 1
        self.bundles.append(bundle)

    def _build_bundle(self, *, bundle_id: str, kind: str, detail: str,
                      rule: str, t_trigger: float, window: tuple
                      ) -> ForensicBundle:
        streams = {}
        for name, ring in self.rings.items():
            records = [
                dict({"t": t}, **record)
                for t, record in ring.window(window[0], window[1])
            ]
            streams[name] = {
                "records": records,
                "captured": ring.captured,
                "evicted": ring.evicted,
                "retained": ring.retained,
            }
        return ForensicBundle(
            bundle_id=bundle_id,
            trigger_kind=kind,
            trigger_detail=detail,
            rule=rule,
            t_trigger=t_trigger,
            window=window,
            streams=streams,
            evidence=self._evidence(rule, streams),
        )

    def _evidence(self, rule: str, streams: dict) -> dict:
        rules = {rule} if rule else set()
        incidents = set()
        for record in streams["alerts"]["records"]:
            rules.add(record["rule"])
            if record["id"] >= 0:
                incidents.add(record["id"])
        trace_ids = set()
        for stream in ("spans", "recovery"):
            for record in streams[stream]["records"]:
                trace_id = record.get("trace", "")
                if trace_id:
                    trace_ids.add(trace_id)
        signals = sorted(
            s.name for s in self._signal_catalog() if s.rule and s.rule in rules
        )
        cluster = self.world.dsos.cluster
        store_seq = []
        if cluster.sharded:
            store_seq = [
                {"shard": shard, "next_seq": seq}
                for shard, seq in enumerate(cluster._next_seq)
            ]
        listed = sorted(trace_ids)
        return {
            "rules": sorted(rules),
            "signals": signals,
            "incidents": sorted(incidents),
            "trace_ids": listed[: self.config.trace_id_cap],
            "trace_id_count": len(listed),
            "store_seq": store_seq,
        }

    def _signal_catalog(self):
        if self._catalog is None:
            from repro.diagnosis.signals import default_catalog

            self._catalog = default_catalog()
        return self._catalog

    # -- introspection -------------------------------------------------

    def reconciliation(self) -> dict:
        """Per-stream ``captured == retained + evicted`` verdicts."""
        return {name: ring.reconciles() for name, ring in self.rings.items()}

    def reconciles(self) -> bool:
        return all(self.reconciliation().values())

    def bundle(self, bundle_id: str) -> ForensicBundle | None:
        for b in self.bundles:
            if b.bundle_id == bundle_id:
                return b
        return None

    def stats(self) -> dict:
        """The self-metric payload behind the signal-catalog rows."""
        return {
            "streams": {
                name: {
                    "captured": ring.captured,
                    "evicted": ring.evicted,
                    "retained": ring.retained,
                }
                for name, ring in self.rings.items()
            },
            "bundles_frozen": self.bundles_frozen,
            "bundle_bytes": self.bundle_bytes,
            "triggers_dropped": self.triggers_dropped,
            "ticks": self.ticks,
        }
