"""Streaming metric primitives: log-scale histograms and gauges.

Latencies in the pipeline span nine-plus decades (sub-microsecond
publish costs to multi-second queue waits under HMMER-style bursts), so
the histogram uses *fixed* log10-spaced bins — deterministic, mergeable
across stages and daemons, and O(1) per observation with no stored
samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GaugeStats", "LogHistogram"]


class LogHistogram:
    """Fixed-bin log10 histogram with streaming summary statistics.

    Bins are ``bins_per_decade`` equal log-width slices of each decade
    in ``[lo, hi)``; values outside the range clamp to the first/last
    bin so every observation is counted.
    """

    def __init__(
        self,
        lo: float = 1e-7,
        hi: float = 1e4,
        bins_per_decade: int = 3,
    ):
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self.lo = lo
        self.hi = hi
        self.bins_per_decade = bins_per_decade
        self._log_lo = math.log10(lo)
        n_decades = math.log10(hi) - self._log_lo
        self.n_bins = max(int(round(n_decades * bins_per_decade)), 1)
        self.counts = [0] * self.n_bins
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Optional bucket exemplars: bin index -> trace id of one
        #: retained representative (attached after the fact by a
        #: :class:`~repro.telemetry.spans.TraceRegistry`; empty unless
        #: annotated, and never part of equality-sensitive payloads
        #: until then).
        self.exemplars: dict[int, str] = {}

    # -- observation ---------------------------------------------------

    def _bin_of(self, value: float) -> int:
        if value <= self.lo:
            return 0
        idx = int((math.log10(value) - self._log_lo) * self.bins_per_decade)
        return min(idx, self.n_bins - 1)

    def observe(self, value: float) -> None:
        self.counts[self._bin_of(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` (same binning) into this histogram."""
        if (other.lo, other.hi, other.bins_per_decade) != (
            self.lo,
            self.hi,
            self.bins_per_decade,
        ):
            raise ValueError("cannot merge histograms with different bins")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, tid in other.exemplars.items():
            self.exemplars.setdefault(idx, tid)

    # -- summaries -----------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bin_edges(self) -> list[float]:
        """The ``n_bins + 1`` bin boundaries (log-spaced)."""
        step = 1.0 / self.bins_per_decade
        return [10 ** (self._log_lo + i * step) for i in range(self.n_bins + 1)]

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (geometric midpoint of its bin)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        edges = self.bin_edges()
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                return math.sqrt(edges[i] * edges[i + 1])
        return edges[-1]

    def set_exemplar(self, bin_index: int, trace_id: str) -> None:
        """Pin one representative trace id onto a bucket."""
        if not 0 <= bin_index < self.n_bins:
            raise ValueError(
                f"bin index {bin_index} outside [0, {self.n_bins})"
            )
        self.exemplars[bin_index] = trace_id

    def exemplar_for(self, value: float) -> str | None:
        """The exemplar trace id of the bucket ``value`` bins into."""
        return self.exemplars.get(self._bin_of(value))

    def to_dict(self) -> dict:
        """Panel payload: edges + counts + summary scalars."""
        out = {
            "bin_edges": self.bin_edges(),
            "counts": list(self.counts),
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        if self.exemplars:
            out["exemplars"] = {
                str(idx): tid for idx, tid in sorted(self.exemplars.items())
            }
        return out

    def render(self, width: int = 40) -> list[str]:
        """ASCII bars for the non-empty bins."""
        if self.count == 0:
            return ["(empty)"]
        top = max(self.counts)
        edges = self.bin_edges()
        lines = []
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            bar = "#" * max(int(c / top * width), 1)
            lines.append(f"[{edges[i]:8.1e}, {edges[i + 1]:8.1e}) |{bar} {c}")
        return lines


@dataclass
class GaugeStats:
    """Streaming summary of a sampled gauge (queue depth, etc.)."""

    count: int = 0
    last: float = 0.0
    max: float = 0.0
    total: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.last = value
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0
