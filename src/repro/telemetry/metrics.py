"""Pipeline-stats sampler: telemetry riding the fabric it measures.

Following the LIKWID-stack argument that a monitoring framework must
expose its own health, :class:`PipelineStatsSampler` is an ordinary
LDMS sampler plugin whose metric set is the daemon's *own* delivery
ledger (bus counters, forwarder queue depths, overflow drops).  It
publishes on the standard ``metrics/<name>`` tags, so pipeline health
flows through the same streams → aggregation → DSOS path as everything
else and lands in the ``ldms_metrics`` schema, joinable against
application I/O events by timestamp.
"""

from __future__ import annotations

from repro.ldms.sampler import SamplerPlugin

__all__ = ["PipelineStatsSampler"]


class PipelineStatsSampler(SamplerPlugin):
    """Samples one daemon's :meth:`~repro.ldms.daemon.Ldmsd.stats_snapshot`."""

    def __init__(self, daemon, name: str | None = None):
        self.daemon = daemon
        self.name = name or f"pipestats_{daemon.node.name}"

    def sample(self, now: float) -> dict:
        snap = self.daemon.stats_snapshot()
        bus = snap["bus"]
        forwards = snap["forwards"]
        return {
            "published": float(bus["published"]),
            "delivered": float(bus["delivered"]),
            "dropped_no_subscriber": float(bus["dropped_no_subscriber"]),
            "bytes_published": float(bus["bytes_published"]),
            "dropped_while_failed": float(snap["dropped_while_failed"]),
            "forward_enqueued": float(sum(f["enqueued"] for f in forwards)),
            "forward_forwarded": float(sum(f["forwarded"] for f in forwards)),
            "forward_dropped_overflow": float(
                sum(f["dropped_overflow"] for f in forwards)
            ),
            "forward_queue_depth": float(sum(f["queue_depth"] for f in forwards)),
            "forward_max_queue_depth": float(
                max((f["max_queue_depth"] for f in forwards), default=0)
            ),
        }
