"""Pipeline health reporting: reconciliation, histograms, drop tables.

The :class:`PipelineHealthReport` is the single place every "monitor
the monitor" question is answered from: where latency is paid (per-
stage log histograms), where messages are lost (drop-site table), and
whether the ledger closes (``published == stored + Σ drops(site)``,
exactly, per job/rank).  It renders as plain text for the ``repro
telemetry`` CLI and as :class:`~repro.webservices.grafana.PanelData`
for the HTML/Grafana front ends — the same panels application data
flows through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.collector import TraceCollector

__all__ = ["PipelineHealthReport", "ReconRow"]


@dataclass(frozen=True)
class ReconRow:
    """One (job, rank) line of the loss-reconciliation ledger."""

    job_id: int
    rank: int
    published: int
    stored: int
    dropped: int
    in_flight: int
    #: ``((stage, node, outcome), count)`` pairs, sorted.
    drops: tuple
    #: Messages parked in a connector spill buffer (published, neither
    #: stored nor lost — awaiting a reconnect replay).
    in_flight_spill: int = 0

    @property
    def exact(self) -> bool:
        """The reconciliation invariant for this group."""
        return (
            self.in_flight == 0
            and self.published == self.stored + self.dropped + self.in_flight_spill
            and self.dropped == sum(n for _, n in self.drops)
        )


class PipelineHealthReport:
    """Aggregated self-observability report for one campaign/job."""

    def __init__(
        self,
        collector: TraceCollector,
        snapshots: list[dict] | tuple = (),
        job_id: int | None = None,
    ):
        self.collector = collector
        self.snapshots = list(snapshots)
        self.job_id = job_id
        self.rows = self._build_rows()

    @classmethod
    def from_world(cls, world, job_id: int | None = None) -> "PipelineHealthReport":
        """Build from a telemetry-enabled campaign ``World``."""
        if getattr(world, "telemetry", None) is None:
            raise RuntimeError(
                "telemetry not enabled; build the world with "
                "WorldConfig(telemetry=True)"
            )
        return cls(
            world.telemetry,
            snapshots=world.fabric.health_snapshots(),
            job_id=job_id,
        )

    def _build_rows(self) -> list[ReconRow]:
        groups = self.collector.reconcile(job_id=self.job_id)
        rows = []
        for (job_id, rank), g in sorted(groups.items()):
            rows.append(
                ReconRow(
                    job_id=job_id,
                    rank=rank,
                    published=g["published"],
                    stored=g["stored"],
                    dropped=g["dropped"],
                    in_flight=g["in_flight"],
                    drops=tuple(sorted(g["drops"].items())),
                    in_flight_spill=g["spilled"],
                )
            )
        return rows

    # -- ledger --------------------------------------------------------

    @property
    def published(self) -> int:
        return sum(r.published for r in self.rows)

    @property
    def stored(self) -> int:
        return sum(r.stored for r in self.rows)

    @property
    def dropped(self) -> int:
        return sum(r.dropped for r in self.rows)

    @property
    def in_flight(self) -> int:
        return sum(r.in_flight for r in self.rows)

    @property
    def in_flight_spill(self) -> int:
        return sum(r.in_flight_spill for r in self.rows)

    def drop_sites(self) -> dict[tuple[str, str, str], int]:
        """``(stage, node, outcome) -> count``, terminal drops only."""
        return self.collector.drop_sites(job_id=self.job_id)

    def recovery_sites(self) -> dict[tuple[str, str, str], int]:
        """``(stage, node, outcome) -> count`` of self-healing events
        (spill replays, retry redeliveries, failovers, dedup skips)."""
        return self.collector.recovery_sites(job_id=self.job_id)

    def verify(self) -> bool:
        """True iff the loss ledger closes exactly for every group."""
        return all(r.exact for r in self.rows)

    def to_dict(self) -> dict:
        """Machine-readable report: everything ``render_text`` shows.

        The ``repro telemetry --json`` / ``repro chaos --json`` payload,
        and what the diagnosis scoring path consumes instead of
        re-parsing the ASCII rendering.  Site keys flatten into records
        so the result is directly JSON-serializable.
        """

        def _sites(sites: dict, count_key: str) -> list[dict]:
            return [
                {
                    "stage": stage,
                    "node": node,
                    "outcome": outcome,
                    count_key: count,
                }
                for (stage, node, outcome), count in sorted(sites.items())
            ]

        return {
            "published": self.published,
            "stored": self.stored,
            "dropped": self.dropped,
            "in_flight": self.in_flight,
            "in_flight_spill": self.in_flight_spill,
            "exact": self.verify(),
            "rows": [
                {
                    "job": r.job_id,
                    "rank": r.rank,
                    "published": r.published,
                    "stored": r.stored,
                    "dropped": r.dropped,
                    "spilled": r.in_flight_spill,
                    "in_flight": r.in_flight,
                    "exact": r.exact,
                    "drops": [
                        {
                            "stage": stage,
                            "node": node,
                            "outcome": outcome,
                            "drops": count,
                        }
                        for (stage, node, outcome), count in r.drops
                    ],
                }
                for r in self.rows
            ],
            "drop_sites": _sites(self.drop_sites(), "drops"),
            "recovery_sites": _sites(self.recovery_sites(), "events"),
            "histograms": {
                stage: hist.to_dict()
                for stage, hist in sorted(self.collector.histograms.items())
            },
            "snapshots": list(self.snapshots),
        }

    # -- rendering -----------------------------------------------------

    def render_text(self, width: int = 40) -> str:
        lines = ["== pipeline health =="]
        lines.append(
            f"published={self.published} stored={self.stored} "
            f"dropped={self.dropped} in_flight={self.in_flight} "
            f"in_flight_spill={self.in_flight_spill}"
        )
        n_exact = sum(1 for r in self.rows if r.exact)
        verdict = "EXACT" if self.verify() and self.rows else "VIOLATED"
        if not self.rows:
            verdict = "EMPTY"
        lines.append(
            f"reconciliation published == stored + Σ drops(site) "
            f"+ in_flight_spill: "
            f"{verdict} ({n_exact}/{len(self.rows)} job/rank groups)"
        )

        lines.append("")
        lines.append("-- per-stage latency (seconds) --")
        for stage, hist in sorted(self.collector.histograms.items()):
            lines.append(
                f"{stage}: n={hist.count} mean={hist.mean:.3g} "
                f"p50={hist.percentile(50):.3g} p95={hist.percentile(95):.3g} "
                f"p99={hist.percentile(99):.3g} max={hist.max:.3g}"
            )
            lines.extend(f"  {row}" for row in hist.render(width))

        lines.append("")
        lines.append("-- drop sites --")
        lines.append(f"{'stage':<10} {'node':<14} {'outcome':<22} {'drops':>7}")
        sites = self.drop_sites()
        if not sites:
            lines.append("(no drops)")
        for (stage, node, outcome), count in sorted(sites.items()):
            lines.append(f"{stage:<10} {node:<14} {outcome:<22} {count:>7}")

        recovery = self.recovery_sites()
        if recovery:
            lines.append("")
            lines.append("-- recovery sites --")
            lines.append(
                f"{'stage':<10} {'node':<14} {'outcome':<22} {'events':>7}"
            )
            for (stage, node, outcome), count in sorted(recovery.items()):
                lines.append(f"{stage:<10} {node:<14} {outcome:<22} {count:>7}")

        lines.append("")
        lines.append("-- reconciliation per (job, rank) --")
        lines.append(
            f"{'job':>8} {'rank':>5} {'published':>9} {'stored':>7} "
            f"{'dropped':>8} {'spilled':>8} {'in_flight':>9}  exact"
        )
        for r in self.rows:
            lines.append(
                f"{r.job_id:>8} {r.rank:>5} {r.published:>9} {r.stored:>7} "
                f"{r.dropped:>8} {r.in_flight_spill:>8} {r.in_flight:>9}  "
                f"{'yes' if r.exact else 'NO'}"
            )

        if self.snapshots:
            lines.append("")
            lines.append("-- daemon counters --")
            for snap in self.snapshots:
                bus = snap["bus"]
                lines.append(
                    f"{snap['node']}/{snap['name']}: published={bus['published']} "
                    f"delivered={bus['delivered']} "
                    f"no_subscriber={bus['dropped_no_subscriber']} "
                    f"while_failed={snap['dropped_while_failed']}"
                    f"{' FAILED' if snap['failed'] else ''}"
                )
                for fwd in snap["forwards"]:
                    lines.append(
                        f"  -> {fwd['peer']} [{fwd['tag']}]: "
                        f"enqueued={fwd['enqueued']} forwarded={fwd['forwarded']} "
                        f"overflow={fwd['dropped_overflow']} "
                        f"depth={fwd['queue_depth']} (max {fwd['max_queue_depth']})"
                    )
        return "\n".join(lines)

    def to_panels(self) -> list:
        """The report as Grafana panels (histograms + drop/recon tables)."""
        from repro.webservices.grafana import PanelData

        panels = []
        for stage, hist in sorted(self.collector.histograms.items()):
            panels.append(
                PanelData(
                    title=f"latency: {stage}",
                    viz="histogram",
                    payload=hist.to_dict(),
                    rows_queried=hist.count,
                )
            )
        drop_rows = [
            {"stage": stage, "node": node, "outcome": outcome, "drops": count}
            for (stage, node, outcome), count in sorted(self.drop_sites().items())
        ]
        panels.append(
            PanelData(
                title="drop sites", viz="table", payload=drop_rows,
                rows_queried=len(drop_rows),
            )
        )
        recovery_rows = [
            {"stage": stage, "node": node, "outcome": outcome, "events": count}
            for (stage, node, outcome), count in sorted(self.recovery_sites().items())
        ]
        if recovery_rows:
            panels.append(
                PanelData(
                    title="recovery sites", viz="table", payload=recovery_rows,
                    rows_queried=len(recovery_rows),
                )
            )
        recon_rows = [
            {
                "job": r.job_id,
                "rank": r.rank,
                "published": r.published,
                "stored": r.stored,
                "dropped": r.dropped,
                "spilled": r.in_flight_spill,
                "in_flight": r.in_flight,
                "exact": "yes" if r.exact else "NO",
            }
            for r in self.rows
        ]
        panels.append(
            PanelData(
                title="loss reconciliation", viz="table", payload=recon_rows,
                rows_queried=len(recon_rows),
            )
        )
        return panels

    def to_html(self, title: str = "Pipeline health") -> str:
        """Self-contained HTML dashboard of the report."""
        from repro.webservices.html import render_html

        return render_html(title, self.to_panels())
