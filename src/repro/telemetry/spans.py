"""Span trees, critical paths and sampled trace retention.

The hop tracing layer (:mod:`repro.telemetry.trace`) records flat hop
lists; this module is the *drill-down* view on top of them.  Every
:class:`~repro.telemetry.trace.MessageTrace` becomes a
:class:`SpanTree` — an OpenTelemetry-style tree whose root spans the
message's whole publish-begin → terminal life and whose children are
the instrumented stage spans (publish, bus delivery, forward outbox
wait + transfer, peer receive, DSOS ingest) with exact simulated
start/end instants.

On top of the tree:

* :func:`critical_path` — the gating chain of span segments whose
  durations sum **exactly** to the tree's end-to-end latency, plus
  per-span *slack* (time a span ran shadowed by a longer concurrent
  span).  Exactness is not approximate: every simulated timestamp sits
  in ``[EPOCH, 2·EPOCH)``, so by Sterbenz's lemma every pairwise
  difference of timestamps is computed without rounding, and the
  left-fold sum of contiguous segment durations telescopes to
  ``t_end - t_begin`` exactly in IEEE-754 arithmetic.
* :class:`TraceRegistry` — retention under **deterministic head
  sampling** (a pure hash of the trace id against
  ``TelemetryConfig.head_sample_rate``; no RNG, so sampling can never
  perturb a seeded campaign) combined with **tail sampling** that
  always keeps the traces an analyst actually drills into: drops,
  recovery survivors (spill/replay, redelivery, failover, dedup skips)
  and latency-threshold breaches.
* **exemplars** — the registry annotates a
  :class:`~repro.telemetry.histogram.LogHistogram` with one retained
  representative trace id per bucket, so the e2e latency histogram
  links straight to concrete span trees.
* :class:`CriticalPathRollup` — campaign-level aggregation of gating
  seconds per stage, reconciled against
  :class:`~repro.sim.profile.PipelineProfile`'s stage attribution.

Everything here is derived *after the fact* from traces the collector
already holds: building trees, paths or registries schedules nothing,
draws nothing and mutates no pipeline state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from zlib import crc32

from repro.telemetry.trace import RECOVERY_OUTCOMES, STORED, MessageTrace

__all__ = [
    "GAP",
    "CriticalPath",
    "CriticalPathRollup",
    "PathSegment",
    "Span",
    "SpanTree",
    "TelemetryConfig",
    "TraceRegistry",
    "critical_path",
]

#: Pseudo-stage for critical-path segments where no span was running
#: (inter-hop scheduling gaps — the profiler's "unattributed" time).
GAP = "gap"

#: Span id suffix of every tree's root.
_ROOT = "root"

#: Denominator of the head-sampling hash (crc32 is 32-bit).
_HASH_SPACE = float(2**32)


@dataclass(frozen=True)
class TelemetryConfig:
    """Tracing retention policy (``WorldConfig(telemetry=...)``).

    The default keeps every trace — what tests and small campaigns
    want.  Production-scale campaigns dial ``head_sample_rate`` down;
    tail sampling then still retains every trace worth drilling into.
    """

    #: Fraction of traces the deterministic head sampler keeps, decided
    #: per trace id by hash — no RNG, identical across reruns.
    head_sample_rate: float = 1.0
    #: Tail sampling: always retain stored traces at least this slow
    #: (end-to-end seconds).  ``None`` disables the latency criterion;
    #: drop/recovery tail retention is always on.
    tail_latency_s: float | None = None
    #: Annotate histograms with per-bucket exemplar trace ids.
    exemplars: bool = True

    def __post_init__(self):
        if not 0.0 <= self.head_sample_rate <= 1.0:
            raise ValueError("head_sample_rate must be in [0, 1]")
        if self.tail_latency_s is not None and self.tail_latency_s < 0:
            raise ValueError("tail_latency_s must be >= 0")


def _head_keep(trace_id: str, rate: float) -> bool:
    """Deterministic head-sampling decision for one trace id."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return crc32(trace_id.encode()) < rate * _HASH_SPACE


@dataclass(frozen=True)
class Span:
    """One node of a span tree: an exact ``[t_start, t_end]`` interval."""

    span_id: str
    parent_id: str | None
    stage: str
    node: str
    t_start: float
    t_end: float
    outcome: str

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "stage": self.stage,
            "node": self.node,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration_s": self.duration_s,
            "outcome": self.outcome,
        }


@dataclass(frozen=True)
class SpanTree:
    """A message's full journey as a root span plus stage child spans."""

    trace_id: str
    job_id: int
    rank: int
    status: str
    root: Span
    #: Stage spans in hop order (the order the pipeline recorded them).
    children: tuple

    @classmethod
    def from_trace(cls, trace: MessageTrace) -> "SpanTree":
        """Derive the tree; purely a reshaping of recorded hops."""
        t_end = trace.t_begin
        stored_end = None
        for hop in trace.hops:
            if hop.t_out > t_end:
                t_end = hop.t_out
            if hop.outcome == STORED and stored_end is None:
                stored_end = hop.t_out
        # A stored message's root ends at its store instant; duplicate
        # resends closing afterwards are off-tree tails, still rendered
        # as children but never extending the end-to-end span.
        if stored_end is not None:
            t_end = stored_end
        root_id = f"{trace.trace_id}#{_ROOT}"
        root = Span(
            span_id=root_id,
            parent_id=None,
            stage="end_to_end",
            node="",
            t_start=trace.t_begin,
            t_end=t_end,
            outcome=trace.status,
        )
        children = tuple(
            Span(
                span_id=f"{trace.trace_id}#{i}",
                parent_id=root_id,
                stage=hop.stage,
                node=hop.node,
                t_start=hop.t_in,
                t_end=hop.t_out,
                outcome=hop.outcome,
            )
            for i, hop in enumerate(trace.hops)
        )
        return cls(
            trace_id=trace.trace_id,
            job_id=trace.job_id,
            rank=trace.rank,
            status=trace.status,
            root=root,
            children=children,
        )

    # -- derived views -------------------------------------------------

    @property
    def t_begin(self) -> float:
        return self.root.t_start

    @property
    def t_end(self) -> float:
        return self.root.t_end

    @property
    def end_to_end_s(self) -> float | None:
        """Root duration for stored traces; ``None`` otherwise."""
        if self.status != "stored":
            return None
        return self.root.duration_s

    @property
    def has_recovery(self) -> bool:
        return any(s.outcome in RECOVERY_OUTCOMES for s in self.children)

    @property
    def drop_site(self) -> tuple[str, str, str] | None:
        for span in self.children:
            if span.outcome.startswith("drop_"):
                return (span.stage, span.node, span.outcome)
        return None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "job_id": self.job_id,
            "rank": self.rank,
            "status": self.status,
            "root": self.root.to_dict(),
            "spans": [s.to_dict() for s in self.children],
        }


@dataclass(frozen=True)
class PathSegment:
    """One gating stretch of a critical path.

    ``span_id`` is ``None`` for :data:`GAP` segments (no span running —
    simulator scheduling wait between hops).
    """

    t_start: float
    t_end: float
    stage: str
    node: str
    span_id: str | None

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "stage": self.stage,
            "node": self.node,
            "span_id": self.span_id,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class CriticalPath:
    """The gating chain: contiguous segments covering root start → end."""

    trace_id: str
    t_begin: float
    t_end: float
    segments: tuple
    #: span_id -> seconds that span spent gating the path.
    contributions: dict = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        """Left-fold sum of segment durations.

        Equals ``t_end - t_begin`` (and hence, for stored traces, the
        end-to-end latency) *exactly*: segments are contiguous and all
        timestamps lie within a factor of two of each other, so every
        partial sum is itself an exact timestamp difference.
        """
        total = 0.0
        for seg in self.segments:
            total += seg.duration_s
        return total

    @property
    def exact(self) -> bool:
        """The path invariant: Σ segment durations == root duration."""
        return self.total_s == self.t_end - self.t_begin

    def stage_seconds(self) -> dict[str, float]:
        """Gating seconds per stage (:data:`GAP` included)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.stage] = out.get(seg.stage, 0.0) + seg.duration_s
        return out

    @property
    def gating_stage(self) -> str:
        """The stage holding the most path time ('' for empty paths)."""
        stages = self.stage_seconds()
        if not stages:
            return ""
        return max(sorted(stages), key=lambda s: stages[s])

    def slack_s(self, span: Span) -> float:
        """How much of ``span`` ran off the path (shadowed/overlapped).

        Zero for spans that gated for their whole duration; equal to
        the full duration for spans that never gated.
        """
        return span.duration_s - self.contributions.get(span.span_id, 0.0)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "t_begin": self.t_begin,
            "t_end": self.t_end,
            "total_s": self.total_s,
            "exact": self.exact,
            "gating_stage": self.gating_stage,
            "segments": [s.to_dict() for s in self.segments],
        }


def critical_path(tree: SpanTree) -> CriticalPath:
    """The gating chain of ``tree``: which span was in the way, when.

    A forward time sweep from the root's start: at each instant the
    gating span is the already-running child reaching furthest into the
    future (ties broken by hop order, deterministically); where no span
    is running the path records a :data:`GAP` segment up to the next
    span start.  Segments are contiguous and clipped to the root
    interval, so their durations telescope exactly to the end-to-end
    latency (see :class:`CriticalPath.total_s`).
    """
    begin, end = tree.t_begin, tree.t_end
    spans = [
        s for s in tree.children
        if s.t_end > s.t_start and s.t_start < end and s.t_end > begin
    ]
    # Elementary intervals between consecutive span boundaries: within
    # one, the set of covering spans (and hence the gating decision) is
    # constant.  Sweeping boundary-to-boundary matters: a span that
    # starts mid-way through another's run but reaches further takes
    # over the path at its start, not only once the earlier span ends.
    bounds = {begin, end}
    for span in spans:
        if begin < span.t_start < end:
            bounds.add(span.t_start)
        if begin < span.t_end < end:
            bounds.add(span.t_end)
    cuts = sorted(bounds)
    segments: list[PathSegment] = []
    for lo, hi in zip(cuts, cuts[1:]):
        gating = None
        for span in spans:
            if span.t_start <= lo and span.t_end >= hi:
                if gating is None or span.t_end > gating.t_end:
                    gating = span
        if gating is None:
            stage, node, span_id = GAP, "", None
        else:
            stage, node, span_id = gating.stage, gating.node, gating.span_id
        prev = segments[-1] if segments else None
        if prev is not None and prev.span_id == span_id and prev.stage == stage:
            # Same span still gating: extend the segment.  The merged
            # duration stays exact — (b-a)+(c-b) sums to the
            # representable c-a, so IEEE addition returns it exactly.
            segments[-1] = PathSegment(prev.t_start, hi, stage, node, span_id)
        else:
            segments.append(PathSegment(lo, hi, stage, node, span_id))
    contributions: dict[str, float] = {}
    for seg in segments:
        if seg.span_id is not None:
            contributions[seg.span_id] = (
                contributions.get(seg.span_id, 0.0) + seg.duration_s
            )
    return CriticalPath(
        trace_id=tree.trace_id,
        t_begin=begin,
        t_end=end,
        segments=tuple(segments),
        contributions=contributions,
    )


class CriticalPathRollup:
    """Campaign-level critical-path attribution over stored traces.

    Where :class:`~repro.sim.profile.PipelineProfile` charges every
    span's full duration per stage (overlaps double-charged, residual
    explicit), the rollup charges only *gating* time — the two answer
    different questions ("where is work done" vs "where is latency
    actually paid") and must reconcile on the same end-to-end total.
    """

    def __init__(self):
        #: stage -> Σ gating seconds on the critical paths.
        self.path_seconds: dict[str, float] = {}
        #: stage -> Σ slack seconds (span ran, something else gated).
        self.slack_seconds: dict[str, float] = {}
        #: Σ end-to-end latency over the rolled-up stored traces.
        self.end_to_end_s: float = 0.0
        #: Stored traces rolled up.
        self.messages: int = 0
        #: Trees skipped (never stored — no end-to-end span to roll up).
        self.unstored: int = 0

    @classmethod
    def from_trees(cls, trees) -> "CriticalPathRollup":
        rollup = cls()
        for tree in trees:
            rollup.add(tree)
        return rollup

    def add(self, tree: SpanTree) -> CriticalPath | None:
        """Fold one tree in; returns its path (``None`` if unstored)."""
        if tree.status != "stored":
            self.unstored += 1
            return None
        path = critical_path(tree)
        self.messages += 1
        self.end_to_end_s += path.total_s
        for stage, seconds in path.stage_seconds().items():
            self.path_seconds[stage] = (
                self.path_seconds.get(stage, 0.0) + seconds
            )
        for span in tree.children:
            slack = path.slack_s(span)
            if slack > 0.0:
                self.slack_seconds[span.stage] = (
                    self.slack_seconds.get(span.stage, 0.0) + slack
                )
        return path

    # -- reconciliation ------------------------------------------------

    def reconciles_with(self, profile, rel_tol: float = 1e-9) -> bool:
        """Cross-check against a :class:`PipelineProfile` built from the
        same traces: both must attribute the same end-to-end total, and
        no stage can gate longer than it ran.
        """
        if self.messages != profile.messages:
            return False
        if not math.isclose(
            self.end_to_end_s, profile.end_to_end_s,
            rel_tol=rel_tol, abs_tol=1e-12,
        ):
            return False
        for stage, seconds in self.path_seconds.items():
            if stage == GAP:
                continue
            cost = profile.components.get(stage)
            limit = cost.sim_seconds if cost is not None else 0.0
            if seconds > limit * (1 + rel_tol) + 1e-12:
                return False
        return True

    # -- rendering -----------------------------------------------------

    def rows(self) -> list[dict]:
        """Stage rows in pipeline order, shares of the e2e total."""
        from repro.sim.profile import _STAGE_ORDER

        order = [s for s in (*_STAGE_ORDER, GAP) if s != "unattributed"]
        stages = [s for s in order if s in self.path_seconds]
        stages += sorted(set(self.path_seconds) - set(order))
        total = self.end_to_end_s
        return [
            {
                "stage": stage,
                "path_s": self.path_seconds[stage],
                "slack_s": self.slack_seconds.get(stage, 0.0),
                "share": self.path_seconds[stage] / total if total else 0.0,
            }
            for stage in stages
        ]

    def to_dict(self) -> dict:
        return {
            "messages": self.messages,
            "unstored": self.unstored,
            "end_to_end_s": self.end_to_end_s,
            "stages": self.rows(),
        }

    def render_text(self, width: int = 40) -> str:
        """Flamegraph-style aggregate: one bar per stage, path share."""
        lines = [
            "== critical-path rollup ==",
            f"messages={self.messages} unstored={self.unstored} "
            f"end_to_end={self.end_to_end_s:.6f}s",
            f"{'stage':<10} {'path_s':>12} {'slack_s':>12} {'share':>7}",
        ]
        for row in self.rows():
            bar = "#" * max(int(row["share"] * width), 1 if row["path_s"] else 0)
            lines.append(
                f"{row['stage']:<10} {row['path_s']:>12.6f} "
                f"{row['slack_s']:>12.6f} {row['share']:>6.1%} |{bar}"
            )
        return "\n".join(lines)


class TraceRegistry:
    """Retained span trees under head + tail sampling.

    Feed it finished traces (:meth:`offer`, or
    :meth:`from_collector` for everything a collector saw).  Retention
    is decided per trace, deterministically:

    * **head**: keep if ``crc32(trace_id)`` falls under
      ``head_sample_rate`` — a rerun of the same campaign retains the
      same ids;
    * **tail**: keep regardless of the head decision if the trace
      dropped, survived a recovery (replay, redelivery, failover, dedup
      skip), is parked in a spill buffer, or breached
      ``tail_latency_s``.
    """

    def __init__(self, config: TelemetryConfig | None = None):
        self.config = config or TelemetryConfig()
        #: trace_id -> SpanTree, in offer order.
        self.trees: dict[str, SpanTree] = {}
        self.offered = 0
        self.head_kept = 0
        self.tail_kept = 0

    @classmethod
    def from_collector(
        cls, collector, config: TelemetryConfig | None = None
    ) -> "TraceRegistry":
        """Retain from everything ``collector`` recorded (offer order =
        the collector's deterministic insertion order)."""
        registry = cls(config)
        for trace in collector.traces.values():
            registry.offer(trace)
        return registry

    # -- retention -----------------------------------------------------

    def _tail_keep(self, trace: MessageTrace, status: str) -> bool:
        if status in ("dropped", "spilled"):
            return True
        if any(h.outcome in RECOVERY_OUTCOMES for h in trace.hops):
            return True
        threshold = self.config.tail_latency_s
        if threshold is not None and status == "stored":
            e2e = trace.end_to_end_latency_s
            if e2e is not None and e2e >= threshold:
                return True
        return False

    def offer(self, trace: MessageTrace) -> SpanTree | None:
        """Apply the sampling policy; returns the tree iff retained."""
        self.offered += 1
        status = trace.status
        head = _head_keep(trace.trace_id, self.config.head_sample_rate)
        tail = self._tail_keep(trace, status)
        if not head and not tail:
            return None
        if head:
            self.head_kept += 1
        if tail and not head:
            self.tail_kept += 1
        tree = SpanTree.from_trace(trace)
        self.trees[trace.trace_id] = tree
        return tree

    # -- lookup --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.trees)

    def get(self, trace_id: str) -> SpanTree | None:
        return self.trees.get(trace_id)

    def slowest(self, n: int = 5) -> list[SpanTree]:
        """The ``n`` slowest *stored* retained traces, slowest first
        (ties broken by trace id, so the order is reproducible)."""
        stored = [t for t in self.trees.values() if t.status == "stored"]
        stored.sort(key=lambda t: (-t.root.duration_s, t.trace_id))
        return stored[:n]

    def drops(self) -> list[SpanTree]:
        """Every retained dropped trace, in offer order."""
        return [t for t in self.trees.values() if t.status == "dropped"]

    def recovered(self) -> list[SpanTree]:
        """Retained traces that lived through a recovery path."""
        return [t for t in self.trees.values() if t.has_recovery]

    # -- exemplars -----------------------------------------------------

    def exemplars(self, histogram) -> dict[int, str]:
        """Per-bucket exemplar trace ids for an e2e latency histogram.

        The representative of each bucket is the first retained stored
        trace (offer order) whose end-to-end latency bins there — so
        every exemplar id resolves to a tree in this registry.
        """
        out: dict[int, str] = {}
        for tree in self.trees.values():
            e2e = tree.end_to_end_s
            if e2e is None or e2e <= 0:
                continue
            idx = histogram._bin_of(e2e)
            if idx not in out:
                out[idx] = tree.trace_id
        return out

    def annotate(self, histogram) -> dict[int, str]:
        """Attach exemplars onto ``histogram`` (see
        :meth:`LogHistogram.set_exemplar`); returns the mapping."""
        mapping = self.exemplars(histogram)
        for idx, trace_id in sorted(mapping.items()):
            histogram.set_exemplar(idx, trace_id)
        return mapping

    # -- aggregation ---------------------------------------------------

    def rollup(self) -> CriticalPathRollup:
        return CriticalPathRollup.from_trees(self.trees.values())

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "retained": len(self.trees),
            "head_kept": self.head_kept,
            "tail_kept": self.tail_kept,
            "head_sample_rate": self.config.head_sample_rate,
            "tail_latency_s": self.config.tail_latency_s,
        }
