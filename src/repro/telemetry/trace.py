"""Trace primitives: deterministic message trace ids and hop records.

Every connector message gets a trace id derived purely from
``(job_id, rank, seq)`` — no wall clock, no RNG — so stamping traces
cannot perturb a seeded campaign.  As the message moves through the
pipeline (local bus, forwarder outboxes, aggregator relays, DSOS
ingest) each instrumented stage appends a :class:`HopRecord`; the full
hop list for one message is a :class:`MessageTrace`, from which both
the end-to-end latency and — for lost messages — the exact drop site
fall out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HopRecord",
    "MessageTrace",
    "make_trace_id",
    "parse_trace_id",
    "RECOVERY_OUTCOMES",
    "STAGE_BUS",
    "STAGE_FORWARD",
    "STAGE_INGEST",
    "STAGE_PUBLISH",
    "STAGE_RECEIVE",
    "DELIVERED",
    "DROP_DAEMON_FAILED",
    "DROP_DEAD_LETTER",
    "DROP_NO_SUBSCRIBER",
    "DROP_OVERFLOW",
    "DROP_PARSE_ERROR",
    "DROP_STORE_DOWN",
    "DUP_IGNORED",
    "FAILOVER",
    "FORWARDED",
    "PUBLISHED",
    "QUORUM_DEGRADED",
    "REDELIVERED",
    "REPAIR_PULLED",
    "REPLAYED",
    "SPILLED",
    "STORED",
    "WAL_REPLAYED",
]

# -- hop stages (in pipeline order) ----------------------------------------

STAGE_PUBLISH = "publish"  # app rank -> local ldmsd (publish cost charged)
STAGE_BUS = "bus"  # delivery on one daemon's StreamsBus
STAGE_FORWARD = "forward"  # outbox wait + batched network transfer
STAGE_RECEIVE = "receive"  # arrival at a peer daemon
STAGE_INGEST = "ingest"  # terminal store plugin (DSOS)

# -- hop outcomes ----------------------------------------------------------

PUBLISHED = "published"
DELIVERED = "delivered"
FORWARDED = "forwarded"
STORED = "stored"
#: Drop outcomes all share the ``drop_`` prefix; :meth:`HopRecord.is_drop`
#: keys off it so new drop sites are accounted automatically.
DROP_NO_SUBSCRIBER = "drop_no_subscriber"
DROP_OVERFLOW = "drop_overflow"
DROP_DAEMON_FAILED = "drop_daemon_failed"
DROP_PARSE_ERROR = "drop_parse_error"
#: Undeliverable after the fabric gave up: retries exhausted, or a
#: flaky-transport loss with no retry policy to recover it.
DROP_DEAD_LETTER = "drop_dead_letter"
#: The message reached ingest but its shard had no live replica — the
#: store rejected the write outright (every copy target was down).
DROP_STORE_DOWN = "drop_store_down"

# -- recovery outcomes -------------------------------------------------------
#
# Self-healing stages stamp these when a message survives a fault: the
# connector spilling to (and later replaying from) its Darshan-log
# buffer, a forwarder redelivering after retry/backoff, or delivery
# failing over to a standby aggregator.  ``SPILLED`` is the only
# non-terminal one of the set — a message whose latest spill has no
# matching replay is *in the spill buffer*, neither stored nor lost,
# and reconciliation accounts it separately (``in_flight_spill``).

SPILLED = "spilled"
REPLAYED = "replayed"
REDELIVERED = "redelivered"
FAILOVER = "failover"
#: A replay/failover duplicate the idempotent ingest skipped — the
#: message is already stored; this hop just records the dedup.
DUP_IGNORED = "dup_ignored"

# Store-resilience recovery (the replicated DSOS layer).  All three are
# non-terminal annotations on an otherwise-stored message: the write
# landed below quorum (repair owes copies), or a restarted daemon
# re-earned the object from its WAL / a peer replica.

#: Stored with fewer than ``write_quorum`` replica acks.
QUORUM_DEGRADED = "quorum_degraded"
#: Re-applied from the daemon's own write-ahead log on restart.
WAL_REPLAYED = "wal_replayed"
#: Pulled from a peer replica by anti-entropy repair.
REPAIR_PULLED = "repair_pulled"

#: Outcomes the recovery-site ledger counts (dedup skips included:
#: a skipped duplicate is evidence a recovery path re-sent the message).
RECOVERY_OUTCOMES = frozenset({
    REPLAYED, REDELIVERED, FAILOVER, DUP_IGNORED,
    QUORUM_DEGRADED, WAL_REPLAYED, REPAIR_PULLED,
})


def make_trace_id(job_id: int, rank: int, seq: int) -> str:
    """Deterministic trace id for the ``seq``-th message of a rank.

    Components must be non-negative integers — a job id carrying the
    ``:`` separator (or a negative rank smuggling a ``-``) would make
    the id ambiguous to parse, so it is rejected here rather than
    surfacing later as a mis-grouped reconciliation row.
    """
    for name, value in (("job_id", job_id), ("rank", rank), ("seq", seq)):
        # bool is an int subclass; reject it — True is not a rank.
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(
                f"trace id {name} must be an int, got {value!r}"
            )
        if value < 0:
            raise ValueError(
                f"trace id {name} must be non-negative, got {value}"
            )
    return f"{job_id}:{rank}:{seq}"


def parse_trace_id(
    trace_id: str, strict: bool = False
) -> tuple[int, int, int] | None:
    """Inverse of :func:`make_trace_id`.

    Malformed ids return ``None`` (callers on the hot path treat
    foreign ids as unattributable, not fatal); with ``strict=True``
    they raise a :class:`ValueError` naming the offending id instead.
    """
    parts = trace_id.split(":") if isinstance(trace_id, str) else None
    if parts is not None and len(parts) == 3:
        # Pure ASCII digits only: ``int()`` alone would also accept
        # whitespace, ``+``, ``_`` separators and unicode digits, none
        # of which :func:`make_trace_id` can emit — ids must round-trip.
        if all(p.isascii() and p.isdigit() for p in parts):
            job_id, rank, seq = (int(p) for p in parts)
            return job_id, rank, seq
    if strict:
        raise ValueError(
            f"malformed trace id {trace_id!r}: expected "
            "'<job_id>:<rank>:<seq>' with non-negative integers"
        )
    return None


@dataclass(frozen=True)
class HopRecord:
    """One stage's view of one message's journey."""

    stage: str
    node: str
    t_in: float
    t_out: float
    outcome: str

    @property
    def latency_s(self) -> float:
        return self.t_out - self.t_in

    @property
    def is_drop(self) -> bool:
        return self.outcome.startswith("drop_")

    @property
    def site(self) -> tuple[str, str, str]:
        """The ``(stage, node, outcome)`` key drop ledgers group by."""
        return (self.stage, self.node, self.outcome)


@dataclass
class MessageTrace:
    """All hops one message took, from publish to store (or drop)."""

    trace_id: str
    job_id: int
    rank: int
    t_begin: float
    hops: list = field(default_factory=list)

    # Terminal-state resolution.  Single-path topologies produce exactly
    # one terminal hop; if a message somehow both reached a store and was
    # dropped on a side branch, reaching storage wins.

    @property
    def status(self) -> str:
        """``"stored"`` | ``"dropped"`` | ``"spilled"`` | ``"in_flight"``.

        A message is *spilled* when its latest spill has no matching
        replay: it sits in the connector's fallback buffer, not lost but
        not yet back on the wire.  Each replay cancels one spill (a
        daemon can crash again mid-replay, re-spilling the same
        message), so the comparison is count-based, not positional.
        """
        dropped = False
        spills = 0
        replays = 0
        for hop in self.hops:
            outcome = hop.outcome
            if outcome == STORED:
                return "stored"
            if hop.is_drop:
                dropped = True
            elif outcome == SPILLED:
                spills += 1
            elif outcome == REPLAYED:
                replays += 1
        if dropped:
            return "dropped"
        return "spilled" if spills > replays else "in_flight"

    @property
    def drop_site(self) -> tuple[str, str, str] | None:
        """``(stage, node, outcome)`` of the first drop hop, if any."""
        for hop in self.hops:
            if hop.is_drop:
                return hop.site
        return None

    @property
    def end_to_end_latency_s(self) -> float | None:
        """Publish-begin to store time; ``None`` unless stored."""
        for hop in self.hops:
            if hop.outcome == STORED:
                return hop.t_out - self.t_begin
        return None
