"""HPC Web Services: analysis + visualization infrastructure.

The paper's front end is Grafana with Python analysis modules behind it
("queried data is converted into a pandas dataframe to allow for easier
application of complex calculations").  We reproduce the stack
headlessly:

* :mod:`repro.webservices.dataframe` — a small column-store DataFrame
  on NumPy arrays (pandas is not available offline; only the operations
  the analyses need are implemented);
* :mod:`repro.webservices.analysis` — the Python analysis modules that
  generate Figures 5–9 from DSOS query results;
* :mod:`repro.webservices.grafana` — dashboards/panels with a DSOS data
  source, rendering to data series (and ASCII, for terminal viewing).
"""

from repro.webservices.dataframe import DataFrame, DataFrameError
from repro.webservices.analysis import (
    count_write_phases,
    detect_anomalous_jobs,
    duration_stats_per_job,
    op_counts_with_ci,
    ops_per_node,
    rows_to_dataframe,
    throughput_series,
    timeline,
    timeline_from_dxt,
)
from repro.webservices.variability import op_dispersion, variability_report
from repro.webservices.correlation import (
    bucket_series,
    correlate_durations_with_metric,
)
from repro.webservices.console import FleetConsole
from repro.webservices.grafana import (
    Dashboard,
    DsosDataSource,
    Panel,
    PanelData,
    render_ascii,
)
from repro.webservices.html import render_html
from repro.webservices.live import LiveDashboard
from repro.webservices.tracing import (
    flame_panel,
    render_trace_panels,
    render_waterfall,
    trace_panels,
    waterfall_panel,
)
from repro.webservices.signatures import (
    classify_workload,
    compare_signatures,
    io_signature,
)

__all__ = [
    "DataFrame",
    "DataFrameError",
    "Dashboard",
    "DsosDataSource",
    "FleetConsole",
    "LiveDashboard",
    "Panel",
    "PanelData",
    "bucket_series",
    "classify_workload",
    "compare_signatures",
    "correlate_durations_with_metric",
    "count_write_phases",
    "io_signature",
    "op_dispersion",
    "detect_anomalous_jobs",
    "duration_stats_per_job",
    "flame_panel",
    "op_counts_with_ci",
    "ops_per_node",
    "render_ascii",
    "render_html",
    "render_trace_panels",
    "render_waterfall",
    "trace_panels",
    "waterfall_panel",
    "rows_to_dataframe",
    "throughput_series",
    "timeline",
    "timeline_from_dxt",
    "variability_report",
]
