"""The Python analysis modules behind the paper's figures.

Each function takes a :class:`~repro.webservices.dataframe.DataFrame`
of ``darshan_data`` rows (the DSOS query result) and returns plain data
structures — the series a Grafana panel would plot.

Figure map:

* :func:`op_counts_with_ci`   — Fig 5: mean op occurrences per config
  over repeated jobs with 95 % CIs;
* :func:`ops_per_node`        — Fig 6: open/close requests per node per job;
* :func:`duration_stats_per_job` — Fig 7: read/write duration
  distributions per job (exposes the job-2 anomaly);
* :func:`timeline`            — Fig 8: op durations over execution time;
* :func:`throughput_series`   — Fig 9: op counts and bytes per time
  bucket, aggregated across ranks.
"""

from __future__ import annotations

import numpy as np

from repro.core.overhead import mean_confidence_interval
from repro.webservices.dataframe import DataFrame, DataFrameError

__all__ = [
    "count_write_phases",
    "detect_anomalous_jobs",
    "duration_stats_per_job",
    "op_counts_with_ci",
    "ops_per_node",
    "rows_to_dataframe",
    "throughput_series",
    "timeline",
    "timeline_from_dxt",
]


def rows_to_dataframe(rows: list[dict]) -> DataFrame:
    """DSOS rows → DataFrame (convenience for query results)."""
    if not rows:
        raise DataFrameError("query returned no rows")
    return DataFrame.from_records(rows)


def op_counts_with_ci(df: DataFrame, confidence: float = 0.95) -> dict:
    """Figure 5: per-op mean occurrence count across jobs, with CI.

    Returns ``{op: {"mean": m, "ci": half_width, "per_job": {...}}}``.
    """
    per_job_op = df.groupby("job_id", "op").size()
    jobs = sorted(set(per_job_op["job_id"].tolist()))
    ops = sorted(set(per_job_op["op"].tolist()))
    lookup = {
        (j, o): n
        for j, o, n in zip(
            per_job_op["job_id"], per_job_op["op"], per_job_op["n"]
        )
    }
    out = {}
    for op in ops:
        counts = [int(lookup.get((j, op), 0)) for j in jobs]
        mean, half = mean_confidence_interval(counts, confidence)
        out[op] = {
            "mean": mean,
            "ci": half,
            "per_job": {int(j): int(lookup.get((j, op), 0)) for j in jobs},
        }
    return out


def ops_per_node(df: DataFrame, ops: tuple = ("open", "close")) -> dict:
    """Figure 6: request counts per node per op, split by job.

    Returns ``{job_id: {node_name: {op: count}}}``.
    """
    mask = np.isin(df.col("op"), list(ops))
    sub = df.filter(mask)
    counted = sub.groupby("job_id", "ProducerName", "op").size()
    out: dict = {}
    for j, node, op, n in zip(
        counted["job_id"], counted["ProducerName"], counted["op"], counted["n"]
    ):
        out.setdefault(int(j), {}).setdefault(str(node), {})[str(op)] = int(n)
    return out


def duration_stats_per_job(df: DataFrame) -> dict:
    """Figure 7: per-job read/write duration statistics.

    Returns ``{job_id: {op: {"mean", "median", "max", "count", "durations"}}}``.
    """
    mask = np.isin(df.col("op"), ["read", "write"])
    sub = df.filter(mask)
    out: dict = {}
    grouped = sub.groupby("job_id", "op")
    for (job_id, op), idx in grouped.groups().items():
        durations = sub.col("seg_dur")[idx].astype(float)
        out.setdefault(int(job_id), {})[str(op)] = {
            "mean": float(durations.mean()),
            "median": float(np.median(durations)),
            "max": float(durations.max()),
            "count": int(len(durations)),
            "durations": durations,
        }
    return out


def detect_anomalous_jobs(stats: dict, op: str = "read", factor: float = 10.0) -> list:
    """Jobs whose mean duration for ``op`` exceeds ``factor`` × the
    median of the other jobs' means (how one finds "job 2")."""
    means = {
        job: per_op[op]["mean"] for job, per_op in stats.items() if op in per_op
    }
    if len(means) < 2:
        return []
    out = []
    for job, mean in means.items():
        others = [m for j, m in means.items() if j != job]
        baseline = float(np.median(others))
        if baseline > 0 and mean > factor * baseline:
            out.append(job)
    return sorted(out)


def timeline(df: DataFrame, job_id: int) -> dict:
    """Figure 8: (time-into-job, duration, op) triples for one job.

    Returns ``{"t": array, "duration": array, "op": array, "t0": job_start}``.
    """
    sub = df.filter(df.col("job_id") == job_id)
    if len(sub) == 0:
        raise DataFrameError(f"no rows for job {job_id}")
    mask = np.isin(sub.col("op"), ["read", "write"])
    sub = sub.filter(mask)
    stamps = sub.col("timestamp").astype(float)
    t0 = float(stamps.min()) if len(sub) else 0.0
    return {
        "t": stamps - t0,
        "duration": sub.col("seg_dur").astype(float),
        "op": sub.col("op"),
        "t0": t0,
    }


def count_write_phases(tl: dict, gap_s: float = 2.0) -> int:
    """Phases in a Figure-8 timeline: maximal runs of write activity
    separated by > ``gap_s`` of write silence."""
    mask = tl["op"] == "write"
    times = np.sort(tl["t"][mask])
    if len(times) == 0:
        return 0
    gaps = np.diff(times)
    return int(1 + (gaps > gap_s).sum())


def timeline_from_dxt(log, module: str = "POSIX") -> dict:
    """Figure-8-style timeline from a Darshan *log* (post-mortem path).

    Vanilla Darshan users get temporal structure only this way — from
    DXT segments after the job ends, with job-relative times.  Returns
    the same structure as :func:`timeline` (``t`` relative to the first
    op, plus ``t0`` = absolute job start) so the two paths compare
    directly.
    """
    ops, ts, durations = [], [], []
    for (mod, _rank, _rid), segments in log.dxt_segments.items():
        if mod != module:
            continue
        for seg in segments:
            ops.append(seg.op)
            ts.append(seg.end)
            durations.append(seg.duration)
    if not ts:
        raise DataFrameError(f"log has no DXT segments for module {module!r}")
    t = np.asarray(ts, dtype=float)
    first = float(t.min())
    return {
        "t": t - first,
        "duration": np.asarray(durations, dtype=float),
        "op": np.asarray(ops, dtype=object),
        "t0": log.start_time + first,
    }


def throughput_series(df: DataFrame, job_id: int, bucket_s: float = 10.0) -> dict:
    """Figure 9: per-bucket op counts and bytes, aggregated across ranks.

    Returns ``{"edges": bucket_edges, op: {"count": arr, "bytes": arr}}``.
    """
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    sub = df.filter(df.col("job_id") == job_id)
    if len(sub) == 0:
        raise DataFrameError(f"no rows for job {job_id}")
    mask = np.isin(sub.col("op"), ["read", "write"])
    sub = sub.filter(mask)
    stamps = sub.col("timestamp").astype(float)
    t0 = float(stamps.min())
    t1 = float(stamps.max())
    n_buckets = max(int(np.ceil((t1 - t0) / bucket_s)), 1)
    edges = t0 + np.arange(n_buckets + 1) * bucket_s
    out = {"edges": edges}
    for op in ("read", "write"):
        op_mask = sub.col("op") == op
        ts = stamps[op_mask]
        sizes = sub.col("seg_len")[op_mask].astype(float)
        idx = np.clip(((ts - t0) / bucket_s).astype(int), 0, n_buckets - 1)
        counts = np.bincount(idx, minlength=n_buckets)
        bytes_per = np.bincount(idx, weights=sizes, minlength=n_buckets)
        out[op] = {"count": counts, "bytes": bytes_per}
    return out
