"""The fleet console: multi-cluster operations view over a fleet scan.

Where :class:`~repro.webservices.live.LiveDashboard` renders one
engine's live state, :class:`FleetConsole` renders a whole
:class:`~repro.fleet.FleetReport` — the fleet overview (one scorecard
row per cluster), a per-cluster drill-down (scorecard breakdown, probe
table, incident log, and — when the scan carries one — the bottleneck
verdict panel), and the signal catalog page — all as the same
:class:`~repro.webservices.grafana.PanelData` the rest of the stack
uses, so every page drops into
:func:`~repro.webservices.grafana.render_ascii` and the HTML renderer
unchanged.
"""

from __future__ import annotations

from repro.webservices.grafana import PanelData, render_ascii

__all__ = ["FleetConsole"]


class FleetConsole:
    """Panel pages over one fleet scan report."""

    def __init__(self, report, catalog=None):
        from repro.diagnosis.signals import default_catalog

        self.report = report
        self.catalog = catalog or default_catalog()

    # -- pages ---------------------------------------------------------

    def overview_panels(self) -> list[PanelData]:
        """The fleet page: one scorecard row per cluster."""
        rows = [
            {
                "cluster": c.name,
                "score": c.score.score,
                "grade": c.score.grade,
                "ready": "yes" if c.score.ready else "NO",
                "probes": f"-{c.score.component('probes').deduction}",
                "alerts": f"-{c.score.component('alerts').deduction}",
                "ledger": f"-{c.score.component('ledger').deduction}",
                "backlog": f"-{c.score.component('backlog').deduction}",
                "store": f"-{c.score.component('store').deduction}",
            }
            for c in self.report
        ]
        return [
            PanelData(
                title="fleet readiness",
                viz="table",
                payload=rows,
                rows_queried=len(rows),
            )
        ]

    def cluster_panels(self, name: str) -> list[PanelData]:
        """One cluster's drill-down: breakdown, probes, incidents."""
        cluster = self._cluster(name)
        score_rows = cluster.score.to_rows()
        probe_rows = cluster.probe_report.to_rows()
        epoch_incidents = [
            {
                "rule": a.rule,
                "severity": a.severity,
                "state": a.state,
                "value": f"{a.peak_value:.4g}",
                "detail": a.detail,
            }
            for a in cluster.incidents
        ]
        panels = [
            PanelData(
                title=f"{name}: scorecard ({cluster.score.score}/100, "
                      f"grade {cluster.score.grade})",
                viz="table",
                payload=score_rows,
                rows_queried=len(score_rows),
            ),
            PanelData(
                title=f"{name}: probe scan",
                viz="table",
                payload=probe_rows,
                rows_queried=len(probe_rows),
            ),
            PanelData(
                title=f"{name}: incidents",
                viz="table",
                payload=epoch_incidents,
                rows_queried=len(epoch_incidents),
            ),
        ]
        explain = getattr(cluster, "explain", None)
        if explain:
            verdict_rows = [
                {
                    "class": v["class"],
                    "score": f"{v['score']:.3g}",
                    "strategy": v["strategy"],
                }
                for v in explain["verdicts"]
            ]
            panels.append(PanelData(
                title=f"{name}: bottleneck verdicts "
                      f"(job {explain['job_id']}, "
                      f"primary {explain['primary']})",
                viz="table",
                payload=verdict_rows,
                rows_queried=len(verdict_rows),
            ))
        return panels

    def catalog_panels(self) -> list[PanelData]:
        """The signal catalog page (with the completeness verdict)."""
        rows = self.catalog.to_rows()
        missing = self.catalog.missing()
        title = (
            f"signal catalog ({len(rows)} signals, "
            + ("complete)" if not missing else f"MISSING {len(missing)})")
        )
        panels = [
            PanelData(title=title, viz="table", payload=rows,
                      rows_queried=len(rows)),
        ]
        if missing:
            missing_rows = [{"missing": name} for name in missing]
            panels.append(PanelData(
                title="uncatalogued signals", viz="table",
                payload=missing_rows, rows_queried=len(missing_rows),
            ))
        return panels

    def panels(self) -> list[PanelData]:
        """Every page, in console order: overview, drill-downs, catalog."""
        panels = self.overview_panels()
        for cluster in self.report:
            panels.extend(self.cluster_panels(cluster.name))
        panels.extend(self.catalog_panels())
        return panels

    # -- rendering -----------------------------------------------------

    def render_text(self, width: int = 72) -> str:
        return "\n\n".join(
            render_ascii(panel, width=width) for panel in self.panels()
        )

    def to_html(self, title: str = "Fleet console") -> str:
        from repro.webservices.html import render_html

        return render_html(title, self.panels())

    # -- helpers -------------------------------------------------------

    def _cluster(self, name: str):
        for cluster in self.report:
            if cluster.name == name:
                return cluster
        raise KeyError(f"no scanned cluster {name!r}")
