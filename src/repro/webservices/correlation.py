"""Correlating application I/O with system behaviour.

The paper's promise: with absolute timestamps on both the application's
I/O events (connector) and the system's telemetry (LDMS samplers), a
user can *explain* I/O variability instead of merely observing it.
:func:`correlate_durations_with_metric` joins the two time series on
time buckets and reports the Pearson correlation between mean op
duration and the system metric (e.g. the file-system load factor).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _stats

from repro.webservices.dataframe import DataFrame, DataFrameError

__all__ = ["correlate_durations_with_metric", "bucket_series"]


def bucket_series(
    times: np.ndarray, values: np.ndarray, edges: np.ndarray
) -> np.ndarray:
    """Mean of ``values`` per ``[edges[i], edges[i+1])`` bucket (NaN when
    a bucket is empty)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    n_buckets = len(edges) - 1
    if n_buckets < 1:
        raise ValueError("need at least one bucket")
    idx = np.searchsorted(edges, times, side="right") - 1
    valid = (idx >= 0) & (idx < n_buckets)
    sums = np.bincount(idx[valid], weights=values[valid], minlength=n_buckets)
    counts = np.bincount(idx[valid], minlength=n_buckets)
    with np.errstate(invalid="ignore"):
        means = sums / counts
    return means


def correlate_durations_with_metric(
    io_df: DataFrame,
    metric_rows: list[dict],
    *,
    metric: str = "load_factor",
    ops: tuple = ("read", "write"),
    bucket_s: float = 10.0,
) -> dict:
    """Pearson correlation between bucketed op durations and a metric.

    ``io_df`` — connector events (needs ``timestamp``/``seg_dur``/``op``);
    ``metric_rows`` — ``ldms_metrics`` query rows.

    Returns ``{"pearson_r", "p_value", "n_buckets", "edges",
    "mean_duration", "mean_metric", "degenerate"}``.  When either
    bucketed series is constant the correlation is undefined; instead
    of propagating NaN the result is pinned to ``r=0.0, p=1.0`` and
    flagged ``degenerate=True`` so callers can tell "no correlation"
    from "no information".
    """
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    mask = np.isin(io_df.col("op"), list(ops))
    sub = io_df.filter(mask)
    if len(sub) == 0:
        raise DataFrameError("no I/O events for the requested ops")
    m_rows = [r for r in metric_rows if r["metric"] == metric]
    if not m_rows:
        raise DataFrameError(f"no samples for metric {metric!r}")

    io_t = sub.col("timestamp").astype(float)
    io_d = sub.col("seg_dur").astype(float)
    m_t = np.asarray([r["timestamp"] for r in m_rows], dtype=float)
    m_v = np.asarray([r["value"] for r in m_rows], dtype=float)

    t0 = min(io_t.min(), m_t.min())
    t1 = max(io_t.max(), m_t.max())
    n_buckets = max(int(np.ceil((t1 - t0) / bucket_s)), 1)
    edges = t0 + np.arange(n_buckets + 1) * bucket_s

    dur_series = bucket_series(io_t, io_d, edges)
    met_series = bucket_series(m_t, m_v, edges)
    joint = ~np.isnan(dur_series) & ~np.isnan(met_series)
    if joint.sum() < 3:
        raise DataFrameError(
            f"only {int(joint.sum())} joint buckets; need >= 3 for a correlation"
        )
    x, y = met_series[joint], dur_series[joint]
    degenerate = bool(np.allclose(x, x[0]) or np.allclose(y, y[0]))
    if degenerate:
        r, p = 0.0, 1.0  # a constant series carries no correlation
    else:
        r, p = _stats.pearsonr(x, y)
    return {
        "pearson_r": float(r),
        "p_value": float(p),
        "n_buckets": int(joint.sum()),
        "edges": edges,
        "mean_duration": dur_series,
        "mean_metric": met_series,
        "degenerate": degenerate,
    }
