"""A small column-store DataFrame on NumPy arrays.

The paper's analysis modules lean on pandas; this module provides the
subset they actually use — construction from records, boolean filtering,
column math, sort, group-by aggregation and joins-by-membership — with
columnar NumPy storage so the figure analyses stay vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DataFrame", "DataFrameError"]


class DataFrameError(ValueError):
    """Invalid DataFrame construction or operation."""


_AGG_FUNCS = {
    "sum": np.sum,
    "mean": np.mean,
    "min": np.min,
    "max": np.max,
    "count": len,
    "median": np.median,
    "std": lambda a: np.std(a, ddof=1) if len(a) > 1 else 0.0,
}


class DataFrame:
    """Immutable-ish columnar table."""

    def __init__(self, columns: dict):
        if not columns:
            raise DataFrameError("a DataFrame needs at least one column")
        self._cols: dict[str, np.ndarray] = {}
        length = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise DataFrameError(f"column {name!r} must be 1-d, got shape {arr.shape}")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise DataFrameError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            self._cols[name] = arr
        self._length = length or 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: list[dict]) -> "DataFrame":
        """Build from a list of homogeneous dicts (DSOS query rows)."""
        if not records:
            raise DataFrameError("cannot build a DataFrame from zero records")
        names = list(records[0].keys())
        columns = {}
        for name in names:
            values = [r[name] for r in records]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
                try:
                    columns[name] = np.asarray(values, dtype=float if any(
                        isinstance(v, float) for v in values
                    ) else int)
                except OverflowError:
                    # Values beyond int64 (e.g. unsigned hashes) stay
                    # as Python objects rather than losing precision.
                    columns[name] = np.asarray(values, dtype=object)
            else:
                columns[name] = np.asarray(values, dtype=object)
        return cls(columns)

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def columns(self) -> list[str]:
        return list(self._cols)

    def col(self, name: str) -> np.ndarray:
        """The column's array (a view; do not mutate)."""
        try:
            return self._cols[name]
        except KeyError:
            raise DataFrameError(
                f"no column {name!r}; available: {self.columns}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.col(name)

    def to_records(self) -> list[dict]:
        return [
            {name: self._cols[name][i].item() if hasattr(self._cols[name][i], "item")
             else self._cols[name][i] for name in self._cols}
            for i in range(self._length)
        ]

    # -- transforms ------------------------------------------------------------

    def filter(self, mask) -> "DataFrame":
        """Rows where ``mask`` (bool array or row-predicate) holds."""
        if callable(mask):
            mask = np.asarray([mask(row) for row in self.to_records()], dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise DataFrameError(
                f"mask length {len(mask)} != frame length {self._length}"
            )
        return DataFrame({n: a[mask] for n, a in self._cols.items()})

    def select(self, *names: str) -> "DataFrame":
        return DataFrame({n: self.col(n) for n in names})

    def assign(self, name: str, values) -> "DataFrame":
        out = dict(self._cols)
        arr = np.asarray(values)
        if len(arr) != self._length:
            raise DataFrameError("assigned column has wrong length")
        out[name] = arr
        return DataFrame(out)

    def sort_by(self, *names: str, reverse: bool = False) -> "DataFrame":
        """Stable multi-key sort (last key least significant... no:
        first name is the primary key, as in pandas)."""
        order = np.arange(self._length)
        # lexsort's last key is primary, so feed keys reversed.
        keys = [self.col(n) for n in reversed(names)]
        order = np.lexsort(keys)
        if reverse:
            order = order[::-1]
        return DataFrame({n: a[order] for n, a in self._cols.items()})

    def unique(self, name: str) -> np.ndarray:
        return np.unique(self.col(name))

    def head(self, n: int) -> "DataFrame":
        return DataFrame({name: a[:n] for name, a in self._cols.items()})

    # -- group-by -----------------------------------------------------------------

    def groupby(self, *names: str) -> "GroupBy":
        if not names:
            raise DataFrameError("groupby needs at least one key column")
        return GroupBy(self, names)


class GroupBy:
    """Grouped view produced by :meth:`DataFrame.groupby`."""

    def __init__(self, frame: DataFrame, keys: tuple):
        self.frame = frame
        self.keys = keys
        # Group rows by key tuples, preserving first-seen order.
        self._groups: dict[tuple, list[int]] = {}
        key_cols = [frame.col(k) for k in keys]
        for i in range(len(frame)):
            key = tuple(c[i] for c in key_cols)
            self._groups.setdefault(key, []).append(i)

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> dict[tuple, np.ndarray]:
        return {k: np.asarray(v) for k, v in self._groups.items()}

    def agg(self, spec: dict) -> DataFrame:
        """``spec`` maps column → agg name ("sum", "mean", ...) or callable.

        Output columns: the key columns plus ``<col>_<agg>``.
        """
        out: dict[str, list] = {k: [] for k in self.keys}
        agg_cols: dict[str, list] = {}
        resolved = {}
        for col, how in spec.items():
            fn = _AGG_FUNCS.get(how) if isinstance(how, str) else how
            if fn is None:
                raise DataFrameError(
                    f"unknown aggregation {how!r}; use {sorted(_AGG_FUNCS)} or a callable"
                )
            label = f"{col}_{how if isinstance(how, str) else how.__name__}"
            resolved[label] = (col, fn)
            agg_cols[label] = []
        for key, idx in self._groups.items():
            idx = np.asarray(idx)
            for k_name, k_val in zip(self.keys, key):
                out[k_name].append(k_val)
            for label, (col, fn) in resolved.items():
                agg_cols[label].append(fn(self.frame.col(col)[idx]))
        out.update(agg_cols)
        return DataFrame({n: np.asarray(v) for n, v in out.items()})

    def size(self) -> DataFrame:
        """Group sizes, as column ``n``."""
        out: dict[str, list] = {k: [] for k in self.keys}
        sizes = []
        for key, idx in self._groups.items():
            for k_name, k_val in zip(self.keys, key):
                out[k_name].append(k_val)
            sizes.append(len(idx))
        out["n"] = sizes
        return DataFrame({n: np.asarray(v) for n, v in out.items()})

    def apply(self, fn) -> dict:
        """``{key_tuple: fn(sub_frame)}`` for free-form per-group work."""
        out = {}
        for key, idx in self._groups.items():
            idx = np.asarray(idx)
            sub = DataFrame({n: a[idx] for n, a in self.frame._cols.items()})
            out[key] = fn(sub)
        return out
