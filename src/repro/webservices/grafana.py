"""Grafana, headless: dashboards, panels, a DSOS data source.

The real front end queries DSOS through a storage plugin, pipes rows
through a named Python analysis module, and renders the result.  Here a
:class:`Panel` binds a query spec to an analysis callable; rendering a
:class:`Dashboard` executes every panel against the data source and
returns :class:`PanelData` (the series Grafana would draw).
:func:`render_ascii` draws a panel in the terminal so examples have
something to show.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.dsos.client import DsosClient
from repro.webservices.analysis import rows_to_dataframe
from repro.webservices.dataframe import DataFrame

__all__ = ["Dashboard", "DsosDataSource", "Panel", "PanelData", "render_ascii"]


class DsosDataSource:
    """The DSOS storage plugin the paper implemented for Grafana."""

    def __init__(self, client: DsosClient, schema_name: str = "darshan_data"):
        self.client = client
        self.schema_name = schema_name

    def query(
        self,
        index: str = "job_rank_time",
        prefix: tuple | None = None,
        begin: tuple | None = None,
        end: tuple | None = None,
        where: list | None = None,
    ) -> DataFrame:
        """Run the query and hand back a DataFrame (the pandas step)."""
        result = self.client.query(
            self.schema_name, index, prefix=prefix, begin=begin, end=end, where=where
        )
        return rows_to_dataframe(result.rows)


@dataclass(frozen=True)
class Panel:
    """One dashboard cell: a query plus an analysis module."""

    title: str
    query: dict
    #: ``analysis(df) -> payload`` — one of repro.webservices.analysis
    #: functions (possibly partially applied).
    analysis: object
    viz: str = "timeseries"  # timeseries | bars | scatter | table


@dataclass
class PanelData:
    """Rendered panel payload."""

    title: str
    viz: str
    payload: object
    rows_queried: int = 0


@dataclass
class Dashboard:
    """A named collection of panels."""

    title: str
    panels: list = field(default_factory=list)

    def add_panel(self, panel: Panel) -> None:
        self.panels.append(panel)

    def render(self, source: DsosDataSource) -> list[PanelData]:
        """Execute every panel's query + analysis."""
        out = []
        for panel in self.panels:
            df = source.query(**panel.query)
            payload = panel.analysis(df)
            out.append(
                PanelData(
                    title=panel.title,
                    viz=panel.viz,
                    payload=payload,
                    rows_queried=len(df),
                )
            )
        return out


def _finite(value) -> bool:
    """True for real numbers a bar can be drawn from (rejects None,
    NaN, ±inf and bools-as-numbers are fine)."""
    return isinstance(value, (int, float)) and math.isfinite(value)


def render_ascii(data: PanelData, width: int = 64, height: int = 12) -> str:
    """Terminal rendering for bar/series/histogram/table payloads.

    Supports payloads shaped like Figure 5 (``{label: {"mean": ...}}``),
    Figure 9 (``{"edges": ..., op: {"bytes"/"count": array}}``), the
    telemetry log-histogram (``{"bin_edges": ..., "counts": ...}``) and
    plain row tables (``[{col: value, ...}, ...]``).
    """
    lines = [f"== {data.title} =="]
    payload = data.payload
    if isinstance(payload, (list, dict)) and not payload:
        lines.append("(no rows)")
        return "\n".join(lines)
    if isinstance(payload, dict) and "bin_edges" in payload and "counts" in payload:
        edges, counts = payload["bin_edges"], payload["counts"]
        top = max(counts) if any(counts) else 1
        for lo, hi, c in zip(edges, edges[1:], counts):
            if c == 0:
                continue
            bar = "#" * max(int(c / top * width), 1)
            lines.append(f"[{lo:8.1e}, {hi:8.1e}) |{bar} {c}")
        if len(lines) == 1:
            lines.append("(empty)")
        return "\n".join(lines)
    if isinstance(payload, list) and payload and all(
        isinstance(r, dict) for r in payload
    ):
        cols = list(payload[0])
        widths = {
            c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in payload))
            for c in cols
        }
        lines.append("  ".join(f"{c:<{widths[c]}}" for c in cols))
        for r in payload:
            lines.append("  ".join(f"{str(r.get(c, '')):<{widths[c]}}" for c in cols))
        return "\n".join(lines)
    if isinstance(payload, dict) and payload and all(
        isinstance(v, dict) and "mean" in v for v in payload.values()
    ):
        finite = [
            v["mean"] for v in payload.values() if _finite(v.get("mean"))
        ]
        top = max(finite, default=0.0) or 1.0
        for label, v in sorted(payload.items()):
            mean = v.get("mean")
            if not _finite(mean):
                lines.append(f"{label:>10} | (no data)")
                continue
            ci = v.get("ci", 0)
            bar = "#" * max(int(mean / top * width), 1)
            lines.append(
                f"{label:>10} | {bar} {mean:.1f} "
                f"±{ci if _finite(ci) else 0.0:.1f}"
            )
        return "\n".join(lines)
    if isinstance(payload, dict) and "edges" in payload:
        series = {
            k: v["bytes"] for k, v in payload.items() if isinstance(v, dict) and "bytes" in v
        }
        top = max((s.max() for s in series.values() if len(s)), default=1.0) or 1.0
        for name, s in sorted(series.items()):
            lines.append(f"-- {name} (bytes/bucket) --")
            n = min(len(s), width)
            resampled = s[: n]
            row = "".join(
                "▁▂▃▄▅▆▇█"[min(int(v / top * 7.999), 7)] if v > 0 else " "
                for v in resampled
            )
            lines.append(row)
        return "\n".join(lines)
    lines.append(repr(payload))
    return "\n".join(lines)
